//! The telemetry plane's two load-bearing guarantees:
//!
//! * **Observation never perturbs the run.**  For every placement policy
//!   and balancer, a traced run and an untraced run of the same seed
//!   produce bit-identical `FleetResult`s — steps, jobs and events.  The
//!   trace is a read-only shadow of the decision stream, never an input
//!   to it.
//! * **The trace itself is deterministic.**  Two traced runs of the same
//!   seed render byte-identical JSONL documents, so traces can be diffed
//!   across machines and commits.

use proptest::prelude::*;

use heracles::autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet};
use heracles::colo::ColoConfig;
use heracles::fleet::{
    BalancerKind, FleetConfig, FleetResult, FleetSim, GenerationMix, JobStreamConfig, PolicyKind,
    Telemetry, TelemetryConfig,
};
use heracles::hw::ServerConfig;
use heracles::telemetry::{validate_metrics_json, validate_trace_jsonl};
use heracles::workloads::ServiceMix;

fn base_config(seed: u64, balancer: BalancerKind) -> FleetConfig {
    FleetConfig {
        servers: 4,
        steps: 6,
        windows_per_step: 2,
        seed,
        mix: GenerationMix::mixed_datacenter(),
        services: ServiceMix::mixed_frontend(),
        balancer,
        colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
        jobs: JobStreamConfig { arrivals_per_step: 1.5, ..JobStreamConfig::default() },
        ..FleetConfig::fast_services()
    }
}

/// Runs to the horizon with telemetry enabled, returning both the result
/// and the collected telemetry.
fn traced_run(cfg: FleetConfig, policy: PolicyKind) -> (FleetResult, Telemetry) {
    let cfg = FleetConfig { telemetry: TelemetryConfig::enabled(), ..cfg };
    let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), policy);
    for _ in 0..cfg.steps {
        sim.step_once();
    }
    let telemetry = sim.take_telemetry().expect("telemetry was enabled");
    (sim.into_result(), telemetry)
}

proptest! {
    /// Telemetry on vs off is invisible to the simulation: for every
    /// policy × balancer pair, the traced run's steps, jobs and events are
    /// bit-identical to the untraced run's.
    #[test]
    fn telemetry_never_perturbs_the_simulation(
        seed in 0u64..100,
        policy_idx in 0usize..4,
        balancer_idx in 0usize..2,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let cfg = base_config(seed, BalancerKind::all()[balancer_idx]);

        let untraced =
            FleetSim::new(cfg, ServerConfig::default_haswell(), policy).run();
        let (traced, telemetry) = traced_run(cfg, policy);

        prop_assert_eq!(&untraced.steps, &traced.steps);
        prop_assert_eq!(&untraced.jobs, &traced.jobs);
        prop_assert_eq!(&untraced.events, &traced.events);
        prop_assert_eq!(&untraced.server_cores, &traced.server_cores);
        prop_assert!(!telemetry.recorder.is_empty(), "traced run recorded nothing");
    }

    /// Two traced runs of the same seed render byte-identical JSONL trace
    /// documents and pass the schema validator.
    #[test]
    fn identical_seeds_give_byte_identical_traces(
        seed in 0u64..50,
        balancer_idx in 0usize..2,
    ) {
        let cfg = base_config(seed, BalancerKind::all()[balancer_idx]);
        let header = [("policy", "least-loaded".to_string()), ("seed", seed.to_string())];

        let (_, a) = traced_run(cfg, PolicyKind::LeastLoaded);
        let (_, b) = traced_run(cfg, PolicyKind::LeastLoaded);

        let doc_a = a.trace_jsonl(&header);
        let doc_b = b.trace_jsonl(&header);
        prop_assert!(doc_a == doc_b, "traces of identical seeds diverged");
        validate_trace_jsonl(&doc_a).expect("trace failed schema validation");
        validate_metrics_json(&a.metrics_json()).expect("metrics failed schema validation");
        prop_assert_eq!(a.metrics.counter("fleet.jobs_placed"),
                        b.metrics.counter("fleet.jobs_placed"));
    }
}

/// Elastic (autoscaled) runs share the guarantee: the same churny run with
/// telemetry on and off yields bit-identical fleet results, and the traced
/// run records autoscale decision events alongside fleet ones.
#[test]
fn elastic_runs_are_unperturbed_and_trace_autoscale_decisions() {
    let mut config = AutoscaleConfig::fast_test();
    config.fleet.steps = 10;
    config.fleet.jobs.arrivals_per_step = 6.0;
    let off = ElasticFleet::new(
        config,
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        AutoscaleKind::Reactive,
    )
    .run();

    let mut traced_cfg = config;
    traced_cfg.fleet.telemetry = TelemetryConfig::enabled();
    let mut fleet = ElasticFleet::new(
        traced_cfg,
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        AutoscaleKind::Reactive,
    );
    for _ in 0..traced_cfg.fleet.steps {
        fleet.step_once();
    }
    let telemetry = fleet.take_telemetry().expect("telemetry was enabled");
    let on = fleet.finish();

    assert_eq!(off.fleet.steps, on.fleet.steps);
    assert_eq!(off.fleet.jobs, on.fleet.jobs);
    assert_eq!(off.fleet.events, on.fleet.events);
    assert_eq!(off.events, on.events);

    let kinds: std::collections::BTreeSet<&str> =
        telemetry.recorder.iter().map(|e| e.kind()).collect();
    for required in ["signals", "decide", "step"] {
        assert!(kinds.contains(required), "no {required:?} event in {kinds:?}");
    }
    validate_trace_jsonl(&telemetry.trace_jsonl(&[])).expect("elastic trace fails schema");
}
