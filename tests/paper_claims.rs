//! Tests that check the paper's headline claims hold in this reproduction
//! (in shape, not in absolute numbers): the characterization patterns of
//! Figure 1, the convexity of Figure 3, the EMU gains of Figure 5, and the
//! TCO arithmetic of §5.3.

use heracles_cluster::TcoModel;
use heracles_colo::{characterize_cell, max_load_under_slo, ColoConfig};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn setup() -> (ServerConfig, ColoConfig) {
    (ServerConfig::default_haswell(), ColoConfig::fast_test())
}

#[test]
fn figure1_dram_interference_hurts_at_low_load_not_high_load() {
    let (server, colo) = setup();
    let ws = LcWorkload::websearch();
    let dram = BeWorkload::stream_dram();
    let low = characterize_cell(&ws, &dram, 0.15, &server, &colo);
    let high = characterize_cell(&ws, &dram, 0.95, &server, &colo);
    assert!(low.normalized_latency > 2.0, "low load: {:.2}", low.normalized_latency);
    assert!(high.normalized_latency < 1.2, "high load: {:.2}", high.normalized_latency);
    assert!(low.normalized_latency > high.normalized_latency);
}

#[test]
fn figure1_small_llc_antagonist_is_harmless_for_websearch_but_not_big() {
    // At low load the antagonist holds most of the machine's cores, which is
    // where the paper's LLC(big) row shows its worst violations.
    let (server, colo) = setup();
    let ws = LcWorkload::websearch();
    let small = characterize_cell(&ws, &BeWorkload::llc_small(), 0.15, &server, &colo);
    let big = characterize_cell(&ws, &BeWorkload::llc_big(), 0.15, &server, &colo);
    assert!(small.normalized_latency < 1.0, "small: {:.2}", small.normalized_latency);
    assert!(
        big.normalized_latency > 1.0 && big.normalized_latency > 1.3 * small.normalized_latency,
        "big: {:.2} vs small {:.2}",
        big.normalized_latency,
        small.normalized_latency
    );
}

#[test]
fn figure1_network_antagonist_only_hurts_the_network_bound_workload() {
    let (server, colo) = setup();
    let iperf = BeWorkload::iperf();
    let kv = characterize_cell(&LcWorkload::memkeyval(), &iperf, 0.6, &server, &colo);
    let ws = characterize_cell(&LcWorkload::websearch(), &iperf, 0.6, &server, &colo);
    let ml = characterize_cell(&LcWorkload::ml_cluster(), &iperf, 0.6, &server, &colo);
    assert!(kv.normalized_latency > 3.0, "memkeyval: {:.2}", kv.normalized_latency);
    assert!(ws.normalized_latency < 1.0, "websearch: {:.2}", ws.normalized_latency);
    assert!(ml.normalized_latency < 1.0, "ml_cluster: {:.2}", ml.normalized_latency);
}

#[test]
fn figure1_power_virus_hurts_more_at_low_load() {
    let (server, colo) = setup();
    let ws = LcWorkload::websearch();
    let pwr = BeWorkload::cpu_pwr();
    let low = characterize_cell(&ws, &pwr, 0.1, &server, &colo);
    let high = characterize_cell(&ws, &pwr, 0.9, &server, &colo);
    assert!(
        low.normalized_latency > high.normalized_latency,
        "low {:.2} should exceed high {:.2}",
        low.normalized_latency,
        high.normalized_latency
    );
}

#[test]
fn figure1_os_isolation_with_brain_violates_every_workload() {
    let (server, colo) = setup();
    let brain = BeWorkload::brain();
    for lc in LcWorkload::all() {
        let cell = characterize_cell(&lc, &brain, 0.5, &server, &colo);
        assert!(
            cell.normalized_latency > 1.2,
            "{} with brain under CFS only reached {:.2}",
            lc.name(),
            cell.normalized_latency
        );
    }
}

#[test]
fn figure3_max_load_is_monotone_in_cores_and_cache() {
    let (server, colo) = setup();
    let ws = LcWorkload::websearch();
    // More cores never reduce the achievable load; same for more cache.
    let quarter = max_load_under_slo(&ws, 0.25, 0.5, &server, &colo);
    let half = max_load_under_slo(&ws, 0.5, 0.5, &server, &colo);
    let full = max_load_under_slo(&ws, 1.0, 0.5, &server, &colo);
    assert!(quarter <= half + 0.05 && half <= full + 0.05, "{quarter:.2} {half:.2} {full:.2}");
    let tiny_cache = max_load_under_slo(&ws, 1.0, 0.05, &server, &colo);
    assert!(tiny_cache <= full + 0.05);
    // And the surface spans a wide range (it is not flat).
    assert!(full - quarter > 0.3);
}

#[test]
fn tco_claims_from_section_5_3() {
    let tco = TcoModel::paper_case_study();
    let high_util_gain = tco.throughput_per_tco_improvement(0.75, 0.90);
    let low_util_gain = tco.throughput_per_tco_improvement(0.20, 0.90);
    // Paper: 15% and ~300%.
    assert!((0.10..=0.25).contains(&high_util_gain), "{high_util_gain:.2}");
    assert!((2.0..=4.5).contains(&low_util_gain), "{low_util_gain:.2}");
    // Energy proportionality alone is an order of magnitude less effective.
    assert!(tco.energy_proportionality_improvement(0.75, 0.35) < high_util_gain / 2.0);
    assert!(tco.energy_proportionality_improvement(0.20, 0.35) < low_util_gain / 10.0);
}
