//! End-to-end assertions for the elastic fleet controller on the
//! deterministic `--fast` elastic scenario (the `fast_test` fleet
//! compressed onto one full diurnal cycle):
//!
//! * the reactive autoscaler completes at least 95% of the static fleet's
//!   BE core·seconds at *strictly lower* amortized TCO — the paper's
//!   economic claim made dynamic,
//! * draining live-migrates (not requeues) every resident job, preserving
//!   its remaining demand plus the priced migration surcharge,
//! * the predictive policy is no worse than the reactive one on
//!   SLO-violation server-steps, and on this scenario serves more work at
//!   a better TCO per core·second,
//! * the whole closed loop is a pure function of the seed.

use heracles::autoscale::{AutoscaleConfig, AutoscaleKind, AutoscaleResult, ElasticFleet};
use heracles::fleet::PolicyKind;
use heracles::hw::ServerConfig;

fn run(kind: AutoscaleKind) -> AutoscaleResult {
    ElasticFleet::new(
        AutoscaleConfig::fast_test(),
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        kind,
    )
    .run()
}

#[test]
fn reactive_matches_static_work_at_strictly_lower_tco() {
    let fixed = run(AutoscaleKind::Static);
    let elastic = run(AutoscaleKind::Reactive);

    // Both fleets scheduled the identical seeded job stream.
    assert_eq!(fixed.fleet.jobs.len(), elastic.fleet.jobs.len());
    for (a, b) in fixed.fleet.jobs.iter().zip(&elastic.fleet.jobs) {
        assert_eq!(a.demand_core_s, b.demand_core_s, "job {} demand diverged", a.id);
    }

    // The static baseline never scales; the reactive controller actually
    // worked the fleet in both directions.
    assert!(fixed.events.is_empty(), "the static policy scaled: {:?}", fixed.events);
    assert!(elastic.scale_ins() > 0, "reactive never shed a server");
    assert!(elastic.scale_outs() > 0, "reactive never bought a server");
    assert!(
        elastic.fleet.mean_in_service_servers() < fixed.fleet.mean_in_service_servers(),
        "the elastic fleet was not smaller on average"
    );

    // The acceptance bar: >= 95% of the static fleet's completed BE
    // core·seconds at strictly lower amortized TCO.
    let work_ratio = elastic.fleet.be_core_s_served() / fixed.fleet.be_core_s_served();
    assert!(work_ratio >= 0.95, "reactive served only {:.1}% of static's work", work_ratio * 100.0);
    assert!(
        elastic.fleet.total_tco_dollars() < fixed.fleet.total_tco_dollars(),
        "reactive TCO {:.2} not strictly below static {:.2}",
        elastic.fleet.total_tco_dollars(),
        fixed.fleet.total_tco_dollars()
    );
    // And therefore strictly better TCO per unit of useful work.
    assert!(elastic.fleet.tco_per_be_core_s() < fixed.fleet.tco_per_be_core_s());

    // Under the conserving traffic plane, scale-in is no longer free: the
    // re-routed LC share is real load, and a reactive policy — which only
    // *observes* overload — pays a bounded handful of violation
    // server-steps re-buying capacity into the climb.  The bound pins that
    // the SLO-risk pricing keeps the damage marginal (the predictive
    // policy avoids it entirely; see `predictive_is_no_worse_than_reactive`
    // and the aggressive-vs-priced comparison in `fleet_traffic.rs`).
    assert!(
        elastic.fleet.violation_server_steps() <= fixed.fleet.violation_server_steps() + 4,
        "reactive elasticity cost {} violation server-steps (static: {})",
        elastic.fleet.violation_server_steps(),
        fixed.fleet.violation_server_steps()
    );
}

#[test]
fn draining_migrates_resident_jobs_with_demand_preserved() {
    let elastic = run(AutoscaleKind::Reactive);

    // Drains migrated — the pricer never fell back to a requeue on this
    // scenario (every drained resident had more work left than the
    // migration overhead).
    assert!(elastic.drain_migrations() > 0, "no drain ever live-migrated a job");
    assert_eq!(elastic.drain_requeues(), 0, "a drain requeued instead of migrating");
    assert_eq!(elastic.drain_migrations(), elastic.fleet.migrations());

    // Remaining demand is preserved across migrations: the job ledger's
    // drawdown (demand plus migration surcharge minus what is left)
    // accounts for every served core·second, so a migration neither wiped
    // nor duplicated work.
    let drawdown: f64 = elastic
        .fleet
        .jobs
        .iter()
        .map(|j| j.demand_core_s + j.migration_overhead_core_s - j.remaining_core_s)
        .sum();
    let served = elastic.fleet.be_core_s_served();
    assert!((served - drawdown).abs() < 1e-6 * (1.0 + served), "{served} != {drawdown}");

    // Each migrated job paid exactly the configured surcharge per move.
    let cost = AutoscaleConfig::fast_test().migration_cost_core_s;
    for job in elastic.fleet.jobs.iter().filter(|j| j.migrations > 0) {
        assert!(
            (job.migration_overhead_core_s - cost * job.migrations as f64).abs() < 1e-9,
            "job {} overhead {} for {} migrations",
            job.id,
            job.migration_overhead_core_s,
            job.migrations
        );
    }

    // A retired server is gone for good: no placement or migration ever
    // targets it afterwards (the drain protocol's other half).
    use heracles::autoscale::ScaleEventKind;
    use heracles::fleet::FleetEventKind;
    for event in &elastic.events {
        if let ScaleEventKind::Retired { server } = event.kind {
            let landed_later = elastic.fleet.events.iter().any(|e| {
                e.server == server
                    && e.step >= event.step
                    && matches!(e.kind, FleetEventKind::Placed | FleetEventKind::Migrated)
            });
            assert!(!landed_later, "work landed on retired server {server}");
        }
    }
}

#[test]
fn predictive_is_no_worse_than_reactive() {
    let reactive = run(AutoscaleKind::Reactive);
    let predictive = run(AutoscaleKind::Predictive);

    // The pinned ordering: pre-provisioning ahead of the peak must not
    // cost SLO compliance...
    assert!(
        predictive.fleet.violation_server_steps() <= reactive.fleet.violation_server_steps(),
        "predictive violated more ({}) than reactive ({})",
        predictive.fleet.violation_server_steps(),
        reactive.fleet.violation_server_steps()
    );
    // ...and on this scenario the pre-provisioned capacity absorbs the
    // post-peak backlog sooner: more work served at a better price per
    // core·second.
    assert!(predictive.fleet.be_core_s_served() >= reactive.fleet.be_core_s_served());
    assert!(predictive.fleet.tco_per_be_core_s() <= reactive.fleet.tco_per_be_core_s());
}

#[test]
fn elastic_runs_are_pure_functions_of_the_seed() {
    let a = run(AutoscaleKind::Reactive);
    let b = run(AutoscaleKind::Reactive);
    assert_eq!(a.events, b.events, "scale-action sequences diverged");
    assert_eq!(a.fleet.steps, b.fleet.steps);
    assert_eq!(a.fleet.events, b.fleet.events);
    assert_eq!(a.fleet.jobs, b.fleet.jobs);
}
