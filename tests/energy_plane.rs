//! The energy plane's load-bearing guarantees:
//!
//! * **Metering never perturbs the run.**  For every placement policy,
//!   balancer and sim core, a run with the energy meter installed produces
//!   a bit-identical `FleetResult` to the same seed with the meter off —
//!   the ledgers are a pure read-only shadow of joules the simulation
//!   already computes.
//! * **Both cores bill the same joules.**  The stepped oracle and the
//!   event-driven core agree bit-for-bit on every step's energy, dollars
//!   and peak watts.
//! * **Ledgers conserve and reproduce.**  Fleet joules equal the sum over
//!   pools and the sum over leaves; identical seeds produce identical
//!   meters; the step records sum to the meter's fleet total.
//! * **A watt budget is a hard ceiling.**  Under `EnergyConfig::capped`
//!   no step's fleet peak power exceeds the budget.
//! * **Energy-aware autoscaling pays off.**  Under a peak/off-peak tariff
//!   it serves BE work at no more joules per core·second than reactive,
//!   with no SLO regression; under a flat tariff it degenerates to
//!   exactly the reactive policy.

use proptest::prelude::*;

use heracles::autoscale::{
    AutoscaleConfig, AutoscaleKind, AutoscaleResult, ElasticFleet, GenerationMarket,
};
use heracles::colo::ColoConfig;
use heracles::fleet::{
    BalancerKind, EnergyConfig, EnergyMeter, EnergyPriceSchedule, FleetConfig, FleetResult,
    FleetSim, GenerationMix, InterferenceModel, JobStreamConfig, PolicyKind, SimCore,
    TelemetryConfig,
};
use heracles::hw::ServerConfig;
use heracles::workloads::ServiceMix;

fn base_config(seed: u64, balancer: BalancerKind, core: SimCore) -> FleetConfig {
    FleetConfig {
        servers: 4,
        steps: 6,
        windows_per_step: 2,
        seed,
        mix: GenerationMix::mixed_datacenter(),
        services: ServiceMix::mixed_frontend(),
        balancer,
        sim_core: core,
        colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
        jobs: JobStreamConfig { arrivals_per_step: 1.5, ..JobStreamConfig::default() },
        ..FleetConfig::fast_services()
    }
}

/// Runs to the horizon with the meter installed, returning the result and
/// the meter's final ledgers.
fn metered_run(cfg: FleetConfig, policy: PolicyKind) -> (FleetResult, EnergyMeter) {
    let cfg = FleetConfig { energy: EnergyConfig { metering: true, ..cfg.energy }, ..cfg };
    let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), policy);
    for _ in 0..cfg.steps {
        sim.step_once();
    }
    let meter = sim.take_meter().expect("metering was enabled");
    (sim.into_result(), meter)
}

/// Runs the deterministic diurnal elastic scenario under one autoscaler,
/// with the generation market priced at the scenario's energy tariff.
fn elastic_run(scenario: AutoscaleConfig, kind: AutoscaleKind) -> AutoscaleResult {
    let server = ServerConfig::default_haswell();
    ElasticFleet::new(scenario, server.clone(), PolicyKind::LeastLoaded, kind)
        .with_market(
            GenerationMarket::new(&scenario.fleet, &server, InterferenceModel::from_scores([]))
                .with_energy_config(&scenario.fleet.energy),
        )
        .run()
}

proptest! {
    /// Metering on vs off is invisible to the simulation, for every
    /// policy × balancer × sim core — and the energy columns themselves
    /// are computed either way (the knob only installs ledgers).
    #[test]
    fn metering_never_perturbs_the_simulation(
        seed in 0u64..50,
        policy_idx in 0usize..4,
        balancer_idx in 0usize..2,
        core_idx in 0usize..2,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let core = [SimCore::Stepped, SimCore::EventDriven][core_idx];
        let cfg = base_config(seed, BalancerKind::all()[balancer_idx], core);

        let unmetered = FleetSim::new(cfg, ServerConfig::default_haswell(), policy).run();
        let (metered, meter) = metered_run(cfg, policy);

        prop_assert_eq!(&unmetered.steps, &metered.steps);
        prop_assert_eq!(&unmetered.jobs, &metered.jobs);
        prop_assert_eq!(&unmetered.events, &metered.events);
        prop_assert_eq!(&unmetered.server_cores, &metered.server_cores);
        prop_assert!(meter.observations() > 0, "meter observed nothing");
        prop_assert!(meter.fleet().joules > 0.0, "a running fleet burned no energy");
        prop_assert!(unmetered.total_energy_joules() > 0.0);
    }

    /// The stepped oracle and the event-driven core bill bit-identical
    /// joules, dollars and peak watts on every step.
    #[test]
    fn both_cores_bill_identical_joules(
        seed in 0u64..30,
        policy_idx in 0usize..4,
        balancer_idx in 0usize..2,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let balancer = BalancerKind::all()[balancer_idx];
        let (stepped, sm) = metered_run(base_config(seed, balancer, SimCore::Stepped), policy);
        let (event, em) = metered_run(base_config(seed, balancer, SimCore::EventDriven), policy);

        prop_assert_eq!(stepped.steps.len(), event.steps.len());
        for (a, b) in stepped.steps.iter().zip(&event.steps) {
            prop_assert_eq!(a.energy_joules.to_bits(), b.energy_joules.to_bits());
            prop_assert_eq!(a.energy_dollars.to_bits(), b.energy_dollars.to_bits());
            prop_assert_eq!(a.peak_power_w.to_bits(), b.peak_power_w.to_bits());
        }
        prop_assert_eq!(sm, em);
    }

    /// Fleet joules equal the pool sum and the leaf sum; the step records
    /// sum to the meter's fleet total; identical seeds give identical
    /// ledgers.
    #[test]
    fn ledgers_conserve_and_reproduce(
        seed in 0u64..30,
        policy_idx in 0usize..4,
        core_idx in 0usize..2,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let core = [SimCore::Stepped, SimCore::EventDriven][core_idx];
        let cfg = base_config(seed, BalancerKind::all()[0], core);

        let (result, meter) = metered_run(cfg, policy);
        let fleet = meter.fleet();
        prop_assert!(
            meter.conservation_error() <= 1e-9 * fleet.joules.max(1.0),
            "fleet != sum(pools) or sum(leaves): residual {}",
            meter.conservation_error()
        );
        let step_sum: f64 = result.steps.iter().map(|s| s.energy_joules).sum();
        prop_assert!(
            (step_sum - fleet.joules).abs() <= 1e-9 * fleet.joules.max(1.0),
            "steps sum {} != meter fleet {}",
            step_sum,
            fleet.joules
        );

        let (again, meter_again) = metered_run(cfg, policy);
        prop_assert_eq!(meter, meter_again);
        prop_assert_eq!(result.steps, again.steps);
    }

    /// Under `EnergyConfig::capped` no step's fleet peak power exceeds the
    /// budget — the coordinator's per-leaf shares divided by the overshoot
    /// allowance make the ceiling hard, however tight the budget.
    #[test]
    fn capped_runs_never_exceed_the_budget(
        seed in 0u64..30,
        budget_w in 200.0f64..4000.0,
        core_idx in 0usize..2,
    ) {
        let core = [SimCore::Stepped, SimCore::EventDriven][core_idx];
        let cfg = FleetConfig {
            energy: EnergyConfig::capped(budget_w),
            ..base_config(seed, BalancerKind::all()[0], core)
        };
        let result =
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run();
        for (i, step) in result.steps.iter().enumerate() {
            prop_assert!(
                step.peak_power_w <= budget_w + 1e-9,
                "step {i} peaked at {} W over the {budget_w} W budget",
                step.peak_power_w
            );
        }
        prop_assert_eq!(result.max_peak_power_w(), result
            .steps
            .iter()
            .map(|s| s.peak_power_w)
            .fold(0.0, f64::max));
    }
}

/// A binding budget actually throttles: the capped fleet's peak sits under
/// both the budget and the uncapped fleet's peak, and the run still
/// completes work.
#[test]
fn a_tight_budget_binds_without_stopping_the_fleet() {
    let base = base_config(7, BalancerKind::all()[0], SimCore::EventDriven);
    let uncapped = FleetSim::new(
        FleetConfig { energy: EnergyConfig::metered(), ..base },
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
    )
    .run();
    let budget_w = 0.5 * uncapped.max_peak_power_w();
    let capped = FleetSim::new(
        FleetConfig { energy: EnergyConfig::capped(budget_w), ..base },
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
    )
    .run();
    assert!(capped.max_peak_power_w() <= budget_w + 1e-9);
    assert!(capped.max_peak_power_w() < uncapped.max_peak_power_w());
    assert!(capped.total_energy_joules() < uncapped.total_energy_joules());
    // At half the uncapped peak the BE-admission throttle engages (shave BE
    // first), but the LC service keeps running: every step still burns
    // energy and the capped run shaves joules, not correctness.
    assert!(capped.steps.iter().all(|s| s.energy_joules > 0.0), "a step burned no energy");
    assert_eq!(capped.steps.len(), uncapped.steps.len());
}

/// Under the business peak/off-peak tariff the energy-aware autoscaler
/// serves BE work at no more joules per core·second than reactive, with
/// no SLO regression — the ISSUE's headline acceptance pin.
#[test]
fn energy_aware_beats_reactive_under_peak_pricing() {
    let scenario = AutoscaleConfig::diurnal(FleetConfig {
        energy: EnergyConfig {
            metering: true,
            price: EnergyPriceSchedule::business_peak(),
            ..EnergyConfig::default()
        },
        ..FleetConfig::fast_test()
    });
    let reactive = elastic_run(scenario, AutoscaleKind::Reactive);
    let aware = elastic_run(scenario, AutoscaleKind::EnergyAware);

    assert!(reactive.fleet.be_core_s_served() > 0.0);
    assert!(aware.fleet.be_core_s_served() > 0.0);
    assert!(
        aware.fleet.joules_per_be_core_s() <= reactive.fleet.joules_per_be_core_s(),
        "energy-aware burned more per core·s: {} vs reactive {}",
        aware.fleet.joules_per_be_core_s(),
        reactive.fleet.joules_per_be_core_s()
    );
    assert!(
        aware.fleet.violation_server_steps() <= reactive.fleet.violation_server_steps(),
        "energy-aware regressed SLOs: {} vs reactive {}",
        aware.fleet.violation_server_steps(),
        reactive.fleet.violation_server_steps()
    );
}

/// Under the default flat tariff the price ratio is pinned at 1, so the
/// energy-aware policy makes exactly the reactive policy's decisions.
#[test]
fn flat_pricing_degenerates_energy_aware_to_reactive() {
    let scenario = AutoscaleConfig::diurnal(FleetConfig {
        energy: EnergyConfig::metered(),
        ..FleetConfig::fast_test()
    });
    let reactive = elastic_run(scenario, AutoscaleKind::Reactive);
    let aware = elastic_run(scenario, AutoscaleKind::EnergyAware);
    assert_eq!(reactive.fleet, aware.fleet);
    assert_eq!(reactive.events, aware.events);
}

/// The energy summary events and the doctor report parse back out of the
/// artifacts, and the joules-vs-∫watts conservation cross-check passes —
/// the end-to-end path CI smokes via the binaries.
#[test]
fn doctor_report_parses_an_energy_run() {
    let cfg = FleetConfig {
        steps: 24,
        sim_core: SimCore::EventDriven,
        energy: EnergyConfig::metered(),
        telemetry: TelemetryConfig::enabled(),
        ..FleetConfig::fast_test()
    };
    let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
    for _ in 0..cfg.steps {
        sim.step_once();
    }
    sim.emit_energy_summary();
    let telemetry = sim.take_telemetry().expect("telemetry was enabled");
    let trace = telemetry.trace_jsonl(&[("energy", "on".to_string())]);
    let report = heracles::bench::fleet_doctor::DoctorReport::from_artifacts(&trace, None)
        .expect("artifacts parse");
    assert!(report.energy_summary.is_some(), "no energy summary event in the trace");
    let conservation = report.energy_conservation().expect("energy columns were present");
    assert!(conservation.ok(), "conservation broke: {conservation:?}");
    assert!(report.energy_ok());
    assert!(report.render().contains("energy plane"));
}
