//! Smoke tests for the `examples/` directory.
//!
//! `examples_all_compile` rebuilds every example target of the workspace (the
//! CI workflow also runs `cargo build --examples` directly), and
//! `quickstart_scenario_reaches_steady_state` mirrors `examples/quickstart.rs`
//! at test speed so the scenario the README points newcomers at is itself
//! asserted, not just compiled.

use std::process::Command;

use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

/// Every example target in the workspace must compile.
///
/// Ignored by default because it invokes a nested `cargo build` (slow, and it
/// competes for the target-dir lock under `cargo test`); CI runs the
/// equivalent `cargo build --examples` as its own step, and
/// `cargo test -- --ignored` runs it locally.
#[test]
#[ignore = "nested cargo build; CI runs `cargo build --examples` directly"]
fn examples_all_compile() {
    let status = Command::new(env!("CARGO"))
        .args(["build", "--examples"])
        .status()
        .expect("cargo is runnable");
    assert!(status.success(), "cargo build --examples failed");
}

/// The quickstart scenario: Heracles colocates `brain` with websearch at 40%
/// load, grows the best-effort share, and keeps the tail latency inside the
/// SLO.  Mirrors `examples/quickstart.rs` with the fast test configuration.
#[test]
fn quickstart_scenario_reaches_steady_state() {
    let server = ServerConfig::default_haswell();
    let websearch = LcWorkload::websearch();
    let brain = BeWorkload::brain();

    let dram_model = OfflineDramModel::profile(&websearch, &server);
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::fast(), websearch.slo(), dram_model));
    let mut runner =
        ColoRunner::new(server, websearch, Some(brain), policy, ColoConfig::fast_test());

    runner.run_steady(0.40, 60);

    let last = runner.history().last().expect("windows were recorded");
    assert!(last.be_cores >= 4, "BE share did not grow: {} cores", last.be_cores);

    let steady = runner.summary_of_last(30);
    assert_eq!(
        steady.slo_violation_fraction, 0.0,
        "quickstart scenario violated the SLO: {steady:?}"
    );
    assert!(steady.mean_emu > 0.5, "EMU only {:.2}", steady.mean_emu);
    assert!(steady.worst_normalized_latency <= 1.0, "{steady:?}");
}
