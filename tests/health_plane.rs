//! The health plane's load-bearing guarantees:
//!
//! * **Observation never perturbs the run.**  For every placement policy,
//!   balancer and sim core, a run with the health plane on produces a
//!   bit-identical `FleetResult` to the same seed with telemetry off
//!   entirely — sketches and the alert engine are a read-only shadow.
//! * **Alerts are deterministic.**  Two health-on runs of the same seed
//!   emit byte-identical alert event streams.
//! * **The sketch honors its documented bound.**  Every quantile estimate
//!   lands within `RELATIVE_ERROR` of the exact nearest-rank quantile,
//!   and merging shard sketches is exactly equivalent to sketching the
//!   concatenated stream.

use proptest::prelude::*;

use heracles::colo::ColoConfig;
use heracles::fleet::{
    BalancerKind, FleetConfig, FleetSim, GenerationMix, JobStreamConfig, PolicyKind, SimCore,
    Telemetry, TelemetryConfig,
};
use heracles::hw::ServerConfig;
use heracles::telemetry::{QuantileSketch, RELATIVE_ERROR};
use heracles::workloads::ServiceMix;

fn base_config(seed: u64, balancer: BalancerKind, core: SimCore) -> FleetConfig {
    FleetConfig {
        servers: 4,
        steps: 6,
        windows_per_step: 2,
        seed,
        mix: GenerationMix::mixed_datacenter(),
        services: ServiceMix::mixed_frontend(),
        balancer,
        sim_core: core,
        colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
        jobs: JobStreamConfig { arrivals_per_step: 1.5, ..JobStreamConfig::default() },
        ..FleetConfig::fast_services()
    }
}

/// Runs to the horizon with the health plane on, returning the result and
/// the telemetry bundle (health summary emitted).
fn health_run(cfg: FleetConfig, policy: PolicyKind) -> (heracles::fleet::FleetResult, Telemetry) {
    let cfg = FleetConfig { telemetry: TelemetryConfig::with_health(), ..cfg };
    let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), policy);
    for _ in 0..cfg.steps {
        sim.step_once();
    }
    sim.emit_health_summary();
    let telemetry = sim.take_telemetry().expect("telemetry was enabled");
    (sim.into_result(), telemetry)
}

/// The alert lines of a rendered trace document, in order.
fn alert_stream(telemetry: &Telemetry) -> String {
    telemetry
        .trace_jsonl(&[])
        .lines()
        .filter(|l| l.contains("\"scope\":\"alert\""))
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    /// Health plane on vs telemetry off entirely is invisible to the
    /// simulation, for every policy × balancer × sim core.
    #[test]
    fn health_plane_never_perturbs_the_simulation(
        seed in 0u64..50,
        policy_idx in 0usize..4,
        balancer_idx in 0usize..2,
        core_idx in 0usize..2,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let core = [SimCore::Stepped, SimCore::EventDriven][core_idx];
        let cfg = base_config(seed, BalancerKind::all()[balancer_idx], core);

        let untraced = FleetSim::new(cfg, ServerConfig::default_haswell(), policy).run();
        let (observed, telemetry) = health_run(cfg, policy);

        prop_assert_eq!(&untraced.steps, &observed.steps);
        prop_assert_eq!(&untraced.jobs, &observed.jobs);
        prop_assert_eq!(&untraced.events, &observed.events);
        prop_assert_eq!(&untraced.server_cores, &observed.server_cores);
        let health = telemetry.health.as_ref().expect("health plane was on");
        prop_assert!(health.cells().count() > 0, "health plane observed no cells");
    }

    /// Identical seeds give byte-identical alert streams (and identical
    /// whole trace documents, alerts included).
    #[test]
    fn identical_seeds_give_byte_identical_alert_streams(
        seed in 0u64..30,
        policy_idx in 0usize..4,
    ) {
        let policy = PolicyKind::all()[policy_idx];
        let cfg = base_config(seed, BalancerKind::all()[0], SimCore::EventDriven);
        let (_, a) = health_run(cfg, policy);
        let (_, b) = health_run(cfg, policy);
        prop_assert_eq!(alert_stream(&a), alert_stream(&b));
        prop_assert_eq!(a.trace_jsonl(&[]), b.trace_jsonl(&[]));
    }

    /// Every sketch quantile lands within the documented relative-error
    /// bound of the exact nearest-rank quantile.
    #[test]
    fn sketch_quantiles_honor_the_relative_error_bound(
        values in proptest::collection::vec(1e-6f64..1e6, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = sketch.quantile(q);
        prop_assert!(
            (estimate - exact).abs() <= RELATIVE_ERROR * exact + 1e-12,
            "q={q}: estimate {estimate} vs exact {exact} breaks the {RELATIVE_ERROR} bound"
        );
    }

    /// Merging shard sketches is exactly the sketch of the concatenated
    /// stream — bit-for-bit, not just approximately.
    #[test]
    fn merged_shards_equal_the_concatenated_stream(
        a in proptest::collection::vec(1e-6f64..1e6, 0..200),
        b in proptest::collection::vec(1e-6f64..1e6, 0..200),
    ) {
        let mut sa = QuantileSketch::new();
        for &v in &a {
            sa.observe(v);
        }
        let mut sb = QuantileSketch::new();
        for &v in &b {
            sb.observe(v);
        }
        let mut concat = QuantileSketch::new();
        for &v in a.iter().chain(&b) {
            concat.observe(v);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa, concat);
    }
}

/// An event-core fleet whose wake fraction stays high fires the wake-storm
/// alert: the burn-rate engine produces real transitions on a real run,
/// and the trace carries them.
#[test]
fn overloaded_event_fleet_fires_an_alert() {
    let cfg = FleetConfig { steps: 40, sim_core: SimCore::EventDriven, ..FleetConfig::fast_test() };
    let (_, telemetry) = health_run(cfg, PolicyKind::LeastLoaded);
    let alerts = alert_stream(&telemetry);
    assert!(
        alerts.contains("\"kind\":\"firing\""),
        "no alert fired on a fleet that wakes every leaf every step: {alerts:?}"
    );
    let health = telemetry.health.as_ref().unwrap();
    assert!(health.engine.firing_count() > 0, "engine disagrees with its own trace");
}

/// The health plane's summary events and the doctor report parse back out
/// of the artifacts — the end-to-end path CI smokes via the binaries.
#[test]
fn doctor_report_parses_a_health_run() {
    let cfg = FleetConfig { steps: 24, sim_core: SimCore::EventDriven, ..FleetConfig::fast_test() };
    let (_, telemetry) = health_run(cfg, PolicyKind::LeastLoaded);
    let trace = telemetry.trace_jsonl(&[("health", "on".to_string())]);
    let metrics = telemetry.metrics_json();
    let report =
        heracles::bench::fleet_doctor::DoctorReport::from_artifacts(&trace, Some(&metrics))
            .expect("artifacts parse");
    assert!(!report.attainment.is_empty());
    assert!(!report.leaves.is_empty());
    assert_eq!(report.step_latencies.len(), 24);
    assert!(report.cross_checks_ok(), "sketch broke its bound on a real run");
}
