//! End-to-end assertions for the fleet scheduler: the `--fast`
//! `fleet_scale` configuration must reproduce the policy ordering the
//! subsystem is built to demonstrate, deterministically — on the
//! homogeneous Haswell fleet and on the mixed-generation datacenter.
//!
//! * Interference-aware placement recovers at least as much fleet EMU as
//!   least-loaded, which in turn beats random placement (the informed
//!   policies route jobs where the per-server controllers will actually
//!   let them run, and weigh each server's capacity).
//! * The fleet-level scheduler must not cost SLO compliance: its violation
//!   fraction stays at or below the single-server Heracles baseline on the
//!   same trace, and going heterogeneous must not cost compliance either —
//!   each policy's mixed-fleet violations stay at or below its homogeneous
//!   ones.

use heracles_fleet::{
    single_server_baseline_violations, FleetConfig, FleetEventKind, FleetResult, FleetSim,
    PolicyKind,
};
use heracles_hw::ServerConfig;

fn run(config: FleetConfig, policy: PolicyKind) -> FleetResult {
    FleetSim::new(config, ServerConfig::default_haswell(), policy).run()
}

#[test]
fn informed_placement_beats_naive_placement_without_costing_slo() {
    let config = FleetConfig::fast_test();
    let random = run(config, PolicyKind::Random);
    let least_loaded = run(config, PolicyKind::LeastLoaded);
    let interference = run(config, PolicyKind::InterferenceAware);

    // All three policies scheduled the identical seeded job stream.
    assert_eq!(random.jobs.len(), least_loaded.jobs.len());
    assert_eq!(random.jobs.len(), interference.jobs.len());

    let (r, l, i) =
        (random.mean_fleet_emu(), least_loaded.mean_fleet_emu(), interference.mean_fleet_emu());
    assert!(i >= l, "interference-aware EMU {i:.3} below least-loaded {l:.3}");
    assert!(l >= r, "least-loaded EMU {l:.3} below random {r:.3}");
    // The gap over random is real machine recovery, not rounding.
    assert!(i > r + 0.01, "interference-aware {i:.3} barely beats random {r:.3}");

    // Colocation recovered utilization beyond what the LC fleet uses alone.
    assert!(i > interference.mean_lc_load() + 0.10, "EMU {i:.3} adds little over LC load");

    // Fleet-level scheduling must not regress SLO compliance below the
    // paper's single-server deployment on the same diurnal trace.
    let baseline = single_server_baseline_violations(&config, &ServerConfig::default_haswell());
    for result in [&random, &least_loaded, &interference] {
        assert!(
            result.slo_violation_fraction() <= baseline + 1e-12,
            "{} violates more ({:.4}) than the single-server baseline ({:.4})",
            result.policy,
            result.slo_violation_fraction(),
            baseline
        );
    }
}

#[test]
fn mixed_generation_fleet_keeps_the_policy_ordering_and_slo() {
    let homogeneous = FleetConfig::fast_test();
    let mixed = FleetConfig::fast_mixed();

    let policies = [PolicyKind::Random, PolicyKind::LeastLoaded, PolicyKind::InterferenceAware];
    let mut mixed_emu = Vec::new();
    for policy in policies {
        let homog = run(homogeneous, policy);
        let hetero = run(mixed, policy);
        mixed_emu.push(hetero.mean_fleet_emu());

        // Capacity threads through: the mixed fleet really is mixed, with
        // the same diurnal service offered everywhere.
        assert!(hetero.server_cores.contains(&16), "no older generation in the mix");
        assert!(hetero.server_cores.contains(&48), "no newer generation in the mix");
        assert!(homog.server_cores.iter().all(|&c| c == 36));

        // Going heterogeneous must not cost SLO compliance: each policy's
        // mixed-fleet violation fraction stays at or below its homogeneous
        // one (the informed policies hold both at zero on this config).
        assert!(
            hetero.slo_violation_fraction() <= homog.slo_violation_fraction() + 1e-12,
            "{} violates more on the mixed fleet ({:.4}) than on the homogeneous one ({:.4})",
            hetero.policy,
            hetero.slo_violation_fraction(),
            homog.slo_violation_fraction()
        );
    }

    // Capacity-aware placement earns its keep on the mixed fleet: the
    // interference-aware policy leads, least-loaded (ranking by absolute
    // headroom, not load fraction) still beats random.
    let (r, l, i) = (mixed_emu[0], mixed_emu[1], mixed_emu[2]);
    assert!(i >= l, "mixed fleet: interference-aware EMU {i:.3} below least-loaded {l:.3}");
    assert!(l >= r, "mixed fleet: least-loaded EMU {l:.3} below random {r:.3}");
}

#[test]
fn fleet_lifecycle_is_consistent() {
    let result = run(FleetConfig::fast_mixed(), PolicyKind::InterferenceAware);

    // Every completed job was placed at least once, finished after it
    // arrived, and served its full demand.
    for job in result.jobs.iter().filter(|j| j.completion.is_some()) {
        let start = job.first_start.expect("completed jobs must have started");
        let done = job.completion.unwrap();
        assert!(start >= job.arrival);
        // Placement and completion are both stamped at step end, so a small
        // job served within its placement step completes at its start time.
        assert!(done >= start);
        assert!(job.remaining_core_s <= 0.0);
    }

    // The event log tells the same story: each job's events are ordered
    // placed → (preempted → placed)* → completed.
    for job in &result.jobs {
        let kinds: Vec<FleetEventKind> =
            result.events.iter().filter(|e| e.job == job.id).map(|e| e.kind).collect();
        if let Some(first) = kinds.first() {
            assert_eq!(*first, FleetEventKind::Placed, "job {} started unplaced", job.id);
        }
        let preemptions = kinds.iter().filter(|k| **k == FleetEventKind::Preempted).count();
        assert_eq!(preemptions, job.preemptions, "job {} preemption mismatch", job.id);
        let completions = kinds.iter().filter(|k| **k == FleetEventKind::Completed).count();
        assert_eq!(completions, usize::from(job.completion.is_some()));
    }

    // Queue accounting: at every step, jobs are either queued, running or
    // completed — and the queueing-delay summary accounts for every job.
    let total = result.jobs.len();
    for step in &result.steps {
        assert!(step.queued_jobs + step.running_jobs + step.completed_jobs <= total);
    }
    let delay = result.queueing_delay();
    assert_eq!(delay.started + delay.censored, total);
    assert!(delay.censored_accrued_wait_s >= 0.0);
}
