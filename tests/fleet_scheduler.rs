//! End-to-end assertions for the fleet scheduler: the `--fast`
//! mixed-service configuration must reproduce the policy ordering the
//! subsystem is built to demonstrate, deterministically — on the
//! homogeneous Haswell fleet and on the mixed-generation datacenter.
//!
//! Under the traffic plane, LC demand belongs to the *service catalog*
//! (three services, phase-spread across the diurnal cycle) and the
//! balancer divides it across each service's leaves — so the load
//! diversity placement policies exploit comes from services peaking at
//! different times, and the conservation audit (routed == offered) must
//! hold on every configuration the sweep runs.
//!
//! * Interference-aware placement recovers at least as much fleet EMU as
//!   least-loaded, which in turn beats random placement (the informed
//!   policies route jobs where the per-server controllers will actually
//!   let them run, and weigh each server's capacity).
//! * The fleet-level scheduler must not cost SLO compliance: on the
//!   websearch-only catalog — where every leaf faces exactly the traffic
//!   the paper's single-server deployment faces — its violation fraction
//!   stays at or below the single-server Heracles baseline.

use heracles_fleet::{
    single_server_baseline_violations, FleetConfig, FleetEventKind, FleetResult, FleetSim,
    PolicyKind,
};
use heracles_hw::ServerConfig;
use heracles_workloads::ServiceMix;

fn run(config: FleetConfig, policy: PolicyKind) -> FleetResult {
    FleetSim::new(config, ServerConfig::default_haswell(), policy).run()
}

#[test]
fn informed_placement_beats_naive_placement_on_the_service_catalog() {
    let config = FleetConfig::fast_services();
    let random = run(config, PolicyKind::Random);
    let least_loaded = run(config, PolicyKind::LeastLoaded);
    let interference = run(config, PolicyKind::InterferenceAware);

    // All three policies scheduled the identical seeded job stream.
    assert_eq!(random.jobs.len(), least_loaded.jobs.len());
    assert_eq!(random.jobs.len(), interference.jobs.len());

    let (r, l, i) =
        (random.mean_fleet_emu(), least_loaded.mean_fleet_emu(), interference.mean_fleet_emu());
    assert!(i >= l, "interference-aware EMU {i:.3} below least-loaded {l:.3}");
    assert!(l >= r, "least-loaded EMU {l:.3} below random {r:.3}");
    // The gap over random is real machine recovery, not rounding.
    assert!(i > r + 0.01, "interference-aware {i:.3} barely beats random {r:.3}");

    // Colocation recovered utilization beyond what the LC fleet uses alone.
    assert!(i > interference.mean_lc_load() + 0.10, "EMU {i:.3} adds little over LC load");

    // Knowing which (hardware, service) cell a job lands on must not cost
    // latency either: the informed policy's violation server-steps stay at
    // or below both naive baselines', within the ±2-count granularity a
    // compressed 45-step run can resolve (totals here are single digits, so
    // one unlucky p99 window would otherwise decide the comparison).
    assert!(
        interference.violation_server_steps() <= least_loaded.violation_server_steps() + 2,
        "interference-aware violated more ({}) than least-loaded ({})",
        interference.violation_server_steps(),
        least_loaded.violation_server_steps()
    );
    assert!(
        interference.violation_server_steps() <= random.violation_server_steps() + 2,
        "interference-aware violated more ({}) than random ({})",
        interference.violation_server_steps(),
        random.violation_server_steps()
    );

    // The traffic plane's contract held on every run: demand was routed,
    // never dropped.
    for result in [&random, &least_loaded, &interference] {
        assert!(
            result.max_routing_imbalance() < 1e-9,
            "{} failed conservation: {}",
            result.policy,
            result.max_routing_imbalance()
        );
    }
}

#[test]
fn mixed_generation_fleet_keeps_capacity_and_interference_signals() {
    let homogeneous = FleetConfig::fast_services();
    let mixed =
        FleetConfig { mix: heracles_fleet::GenerationMix::mixed_datacenter(), ..homogeneous };

    let policies = [PolicyKind::Random, PolicyKind::LeastLoaded, PolicyKind::InterferenceAware];
    let mut results = Vec::new();
    for policy in policies {
        let homog = run(homogeneous, policy);
        let hetero = run(mixed, policy);

        // Capacity threads through: the mixed fleet really is mixed, every
        // server a (generation × service) cell.
        assert!(hetero.server_cores.contains(&16), "no older generation in the mix");
        assert!(hetero.server_cores.contains(&48), "no newer generation in the mix");
        assert!(homog.server_cores.iter().all(|&c| c == 36));
        let services: std::collections::HashSet<usize> =
            hetero.server_services.iter().copied().collect();
        assert_eq!(services.len(), 3, "a service is missing from the mixed fleet");

        // Conservation holds on heterogeneous pools too (leaves of one
        // service differ in capacity; the balancer weights by peak QPS).
        assert!(hetero.max_routing_imbalance() < 1e-9);
        results.push(hetero);
    }

    // The informed policies still beat random on EMU, and the
    // characterization-guided policy keeps the lowest violation count —
    // on a mixed fleet the same antagonist is benign on one generation
    // and devastating on another, which is exactly what its
    // (generation, service) hostility key encodes.  As above, the
    // violation comparisons carry the ±2-count granularity of the
    // compressed run's single-digit totals.
    let (r, l, i) = (&results[0], &results[1], &results[2]);
    assert!(l.mean_fleet_emu() >= r.mean_fleet_emu(), "least-loaded lost to random");
    assert!(i.mean_fleet_emu() >= r.mean_fleet_emu(), "interference-aware lost to random");
    assert!(
        i.violation_server_steps() <= l.violation_server_steps() + 2,
        "interference-aware violated more ({}) than least-loaded ({})",
        i.violation_server_steps(),
        l.violation_server_steps()
    );
    assert!(
        i.violation_server_steps() <= r.violation_server_steps() + 2,
        "interference-aware violated more ({}) than random ({})",
        i.violation_server_steps(),
        r.violation_server_steps()
    );
}

#[test]
fn websearch_fleet_stays_near_the_single_server_baseline() {
    // On the websearch-only catalog every leaf faces exactly the diurnal
    // curve the paper's single-server Heracles deployment faces.  The
    // fleet cannot quite *match* that baseline: the baseline colocates one
    // BE task for the whole run, while the fleet's leaves see job churn —
    // an attachment swap re-initialises the leaf controller (the modeled
    // cost of restarting a BE container), and doing so while the
    // compressed trace climbs through the latency knee costs an occasional
    // window.  What must hold is that the regression is a bounded knee
    // transient, not a scheduling failure: the violation fraction stays
    // within a few percent of the baseline, and every violating step sits
    // in the knee band — the scheduler never strands a leaf over its SLO
    // in the healthy regime where its admission checks operate.
    let config =
        FleetConfig { services: ServiceMix::websearch_only(), ..FleetConfig::fast_services() };
    let baseline = single_server_baseline_violations(&config, &ServerConfig::default_haswell());
    for policy in [PolicyKind::Random, PolicyKind::LeastLoaded, PolicyKind::InterferenceAware] {
        let result = run(config, policy);
        assert!(
            result.slo_violation_fraction() <= baseline + 0.03,
            "{} violates far more ({:.4}) than the single-server baseline ({:.4})",
            result.policy,
            result.slo_violation_fraction(),
            baseline
        );
        for step in result.steps.iter().filter(|s| s.violating_servers > 0) {
            assert!(
                step.service_load[0] > 0.75,
                "{} violated at {:.2} load — outside the knee band",
                result.policy,
                step.service_load[0]
            );
        }
    }
}

#[test]
fn fleet_lifecycle_is_consistent() {
    let result = run(
        FleetConfig {
            mix: heracles_fleet::GenerationMix::mixed_datacenter(),
            ..FleetConfig::fast_services()
        },
        PolicyKind::InterferenceAware,
    );

    // Every completed job was placed at least once, finished after it
    // arrived, and served its full demand.
    for job in result.jobs.iter().filter(|j| j.completion.is_some()) {
        let start = job.first_start.expect("completed jobs must have started");
        let done = job.completion.unwrap();
        assert!(start >= job.arrival);
        // Placement and completion are both stamped at step end, so a small
        // job served within its placement step completes at its start time.
        assert!(done >= start);
        assert!(job.remaining_core_s <= 0.0);
    }

    // The event log tells the same story: each job's events are ordered
    // placed → (preempted → placed)* → completed.
    for job in &result.jobs {
        let kinds: Vec<FleetEventKind> =
            result.events.iter().filter(|e| e.job == job.id).map(|e| e.kind).collect();
        if let Some(first) = kinds.first() {
            assert_eq!(*first, FleetEventKind::Placed, "job {} started unplaced", job.id);
        }
        let preemptions = kinds.iter().filter(|k| **k == FleetEventKind::Preempted).count();
        assert_eq!(preemptions, job.preemptions, "job {} preemption mismatch", job.id);
        let completions = kinds.iter().filter(|k| **k == FleetEventKind::Completed).count();
        assert_eq!(completions, usize::from(job.completion.is_some()));
    }

    // Queue accounting: at every step, jobs are either queued, running or
    // completed — and the queueing-delay summary accounts for every job.
    let total = result.jobs.len();
    for step in &result.steps {
        assert!(step.queued_jobs + step.running_jobs + step.completed_jobs <= total);
    }
    let delay = result.queueing_delay();
    assert_eq!(delay.started + delay.censored, total);
    assert!(delay.censored_accrued_wait_s >= 0.0);

    // Per-service accounting is internally consistent: service violation
    // counts sum to the fleet count, and every step's routed QPS matches
    // its offered QPS.
    for step in &result.steps {
        assert_eq!(
            step.violating_by_service.iter().sum::<usize>(),
            step.violating_servers,
            "per-service violations do not sum to the fleet count"
        );
    }
    assert!(result.max_routing_imbalance() < 1e-9);
}
