//! End-to-end assertions for the fleet scheduler: the `--fast`
//! `fleet_scale` configuration must reproduce the policy ordering the
//! subsystem is built to demonstrate, deterministically.
//!
//! * Interference-aware placement recovers at least as much fleet EMU as
//!   first-fit, which in turn beats random placement (the informed policies
//!   route jobs where the per-server controllers will actually let them
//!   run).
//! * The fleet-level scheduler must not cost SLO compliance: its violation
//!   fraction stays at or below the single-server Heracles baseline on the
//!   same trace.

use heracles_fleet::{
    single_server_baseline_violations, FleetConfig, FleetEventKind, FleetSim, PolicyKind,
};
use heracles_hw::ServerConfig;

fn run(policy: PolicyKind) -> heracles_fleet::FleetResult {
    FleetSim::new(FleetConfig::fast_test(), ServerConfig::default_haswell(), policy).run()
}

#[test]
fn informed_placement_beats_naive_placement_without_costing_slo() {
    let random = run(PolicyKind::Random);
    let first_fit = run(PolicyKind::FirstFit);
    let interference = run(PolicyKind::InterferenceAware);

    // All three policies scheduled the identical seeded job stream.
    assert_eq!(random.jobs.len(), first_fit.jobs.len());
    assert_eq!(random.jobs.len(), interference.jobs.len());

    let (r, f, i) =
        (random.mean_fleet_emu(), first_fit.mean_fleet_emu(), interference.mean_fleet_emu());
    assert!(i >= f, "interference-aware EMU {i:.3} below first-fit {f:.3}");
    assert!(f >= r, "first-fit EMU {f:.3} below random {r:.3}");
    // The gap over random is real machine recovery, not rounding.
    assert!(i > r + 0.01, "interference-aware {i:.3} barely beats random {r:.3}");

    // Colocation recovered utilization beyond what the LC fleet uses alone.
    assert!(i > interference.mean_lc_load() + 0.10, "EMU {i:.3} adds little over LC load");

    // Fleet-level scheduling must not regress SLO compliance below the
    // paper's single-server deployment on the same diurnal trace.
    let baseline = single_server_baseline_violations(
        &FleetConfig::fast_test(),
        &ServerConfig::default_haswell(),
    );
    for result in [&random, &first_fit, &interference] {
        assert!(
            result.slo_violation_fraction() <= baseline + 1e-12,
            "{} violates more ({:.4}) than the single-server baseline ({:.4})",
            result.policy,
            result.slo_violation_fraction(),
            baseline
        );
    }
}

#[test]
fn fleet_lifecycle_is_consistent() {
    let result = run(PolicyKind::InterferenceAware);

    // Every completed job was placed at least once, finished after it
    // arrived, and served its full demand.
    for job in result.jobs.iter().filter(|j| j.completion.is_some()) {
        let start = job.first_start.expect("completed jobs must have started");
        let done = job.completion.unwrap();
        assert!(start >= job.arrival);
        // Placement and completion are both stamped at step end, so a small
        // job served within its placement step completes at its start time.
        assert!(done >= start);
        assert!(job.remaining_core_s <= 0.0);
    }

    // The event log tells the same story: each job's events are ordered
    // placed → (preempted → placed)* → completed.
    for job in &result.jobs {
        let kinds: Vec<FleetEventKind> =
            result.events.iter().filter(|e| e.job == job.id).map(|e| e.kind).collect();
        if let Some(first) = kinds.first() {
            assert_eq!(*first, FleetEventKind::Placed, "job {} started unplaced", job.id);
        }
        let preemptions = kinds.iter().filter(|k| **k == FleetEventKind::Preempted).count();
        assert_eq!(preemptions, job.preemptions, "job {} preemption mismatch", job.id);
        let completions = kinds.iter().filter(|k| **k == FleetEventKind::Completed).count();
        assert_eq!(completions, usize::from(job.completion.is_some()));
    }

    // Queue accounting: at every step, jobs are either queued, running or
    // completed.
    let total = result.jobs.len();
    for step in &result.steps {
        assert!(step.queued_jobs + step.running_jobs + step.completed_jobs <= total);
    }
}
