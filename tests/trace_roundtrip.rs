//! Round-trip property: any trace the writer can render, the report-side
//! scanner can read back.
//!
//! Arbitrary `TraceEvent`s are rendered through the flight recorder's
//! JSONL sink and recovered with the `trace_report` field scanners.
//! Scope, kind, string, integer and boolean fields round-trip exactly
//! (strings through every escape the writer emits); timestamps round-trip
//! exactly at the sink's microsecond precision; float fields round-trip
//! to the sink's six rendered decimals.

use proptest::prelude::*;

use heracles::bench::trace_report::{field_f64, field_raw, field_str, field_u64};
use heracles::sim::SimTime;
use heracles::telemetry::{FlightRecorder, TraceEvent, TraceValue};

/// Field keys by slot — distinct, and distinct from the envelope keys
/// (`t`, `scope`, `kind`), so every field is recoverable by name.
const KEYS: [&str; 6] = ["ka", "kb", "kc", "kd", "ke", "kf"];
const SCOPES: [&str; 4] = ["fleet", "core", "alert", "health"];
const KINDS: [&str; 4] = ["step", "firing", "summary", "be_state"];

/// Characters string fields draw from — every escape class the writer
/// handles (quotes, backslashes, whitespace escapes, raw control
/// characters, multi-byte unicode) plus JSON-structural characters that
/// must NOT confuse the scanner when they appear unescaped inside a
/// value.
const CHAR_POOL: [char; 19] = [
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'é', 'λ', '𝄞', '/', '{',
    '}', ':', ',',
];

fn value_strategy() -> impl Strategy<Value = TraceValue> {
    (
        0usize..5,
        0u64..u64::MAX,
        -1e6f64..1e6,
        proptest::collection::vec(0usize..CHAR_POOL.len(), 0..12),
    )
        .prop_map(|(variant, bits, float, chars)| match variant {
            0 => TraceValue::U64(bits),
            1 => TraceValue::I64(bits as i64),
            2 => TraceValue::F64(float),
            3 => TraceValue::Str(chars.into_iter().map(|i| CHAR_POOL[i]).collect()),
            _ => TraceValue::Bool(bits & 1 == 0),
        })
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        // Whole microseconds: the sink renders seconds to six decimals, so
        // sub-microsecond timestamps cannot survive any JSONL round trip.
        0u64..1_000_000_000_000,
        0usize..SCOPES.len() * KINDS.len(),
        proptest::collection::vec(value_strategy(), 0..KEYS.len() + 1),
    )
        .prop_map(|(micros, envelope, values)| {
            let mut event = TraceEvent::new(
                SimTime::from_nanos(micros * 1_000),
                SCOPES[envelope % SCOPES.len()],
                KINDS[envelope / SCOPES.len()],
            );
            for (slot, value) in values.into_iter().enumerate() {
                let key = KEYS[slot];
                event = match value {
                    TraceValue::U64(v) => event.u64(key, v),
                    TraceValue::I64(v) => event.i64(key, v),
                    TraceValue::F64(v) => event.f64(key, v),
                    TraceValue::Str(v) => event.str(key, &v),
                    TraceValue::Bool(v) => event.bool(key, v),
                };
            }
            event
        })
}

proptest! {
    #[test]
    fn any_written_trace_parses_back(
        events in proptest::collection::vec(event_strategy(), 1..16),
    ) {
        let mut recorder = FlightRecorder::new(64);
        recorder.extend(events.iter().cloned());
        let doc = recorder.to_jsonl(&[("seed", "7".to_string())]);

        let mut lines = doc.lines();
        let header = lines.next().expect("header line");
        prop_assert_eq!(field_u64(header, "events"), Some(events.len() as u64));
        prop_assert_eq!(field_str(header, "seed").as_deref(), Some("7"));

        for (event, line) in events.iter().zip(lines) {
            let t = field_f64(line, "t").expect("t field");
            prop_assert_eq!(SimTime::from_secs_f64(t), event.time(), "time drifted: {}", line);
            prop_assert_eq!(field_str(line, "scope").as_deref(), Some(event.scope()));
            prop_assert_eq!(field_str(line, "kind").as_deref(), Some(event.kind()));
            for (key, value) in event.fields() {
                match value {
                    TraceValue::U64(v) => {
                        prop_assert_eq!(field_u64(line, key), Some(*v), "u64 {}: {}", key, line);
                    }
                    TraceValue::I64(v) => {
                        let raw = field_raw(line, key).expect("i64 field");
                        prop_assert_eq!(raw.parse::<i64>().ok(), Some(*v), "i64 {}: {}", key, line);
                    }
                    TraceValue::F64(v) => {
                        let parsed = field_f64(line, key).expect("f64 field");
                        // Six rendered decimals: |decimal rounding| <= 5e-7
                        // plus re-parse noise.
                        prop_assert!(
                            (parsed - v).abs() <= 6e-7,
                            "f64 {key}: parsed {parsed} vs written {v} in {line}"
                        );
                    }
                    TraceValue::Str(v) => {
                        prop_assert_eq!(
                            field_str(line, key).as_deref(),
                            Some(v.as_str()),
                            "str {} failed to round-trip: {}", key, line
                        );
                    }
                    TraceValue::Bool(v) => {
                        let expect = if *v { "true" } else { "false" };
                        prop_assert_eq!(field_raw(line, key), Some(expect), "bool {}: {}", key, line);
                    }
                }
            }
        }
    }
}
