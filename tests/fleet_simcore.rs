//! Cross-core equivalence property tests for the server plane.
//!
//! The event-driven core ([`SimCore::EventDriven`]) is a pure wall-clock
//! optimization: steady leaves satisfy their measurement windows through
//! the `ColoRunner` fast path instead of re-simulating them, and a wake
//! scheduler attributes why each woken leaf stepped.  None of that may
//! change a single bit of the simulation's output — the stepped core is
//! kept as the oracle, and these tests pin the contract:
//!
//! * bit-identical `FleetResult`s (steps, jobs, events) across every
//!   placement policy and both load balancers,
//! * bit-identical results and scale-event logs under the elastic
//!   controller (drains, migrations, retirements all re-wake leaves),
//! * on a held-demand steady scenario the event core actually quiesces:
//!   fast-forwarded windows and quiescent leaf-steps are nonzero, while
//!   the stepped oracle reports every window as full.

use heracles::colo::ColoConfig;
use heracles::fleet::{
    BalancerKind, FleetConfig, FleetResult, FleetSim, JobStreamConfig, PolicyKind,
    ServerPlaneProfile, SimCore,
};
use heracles::hw::ServerConfig;

fn base(balancer: BalancerKind, core: SimCore) -> FleetConfig {
    FleetConfig {
        servers: 5,
        steps: 12,
        windows_per_step: 2,
        balancer,
        sim_core: core,
        demand_hold_steps: 5,
        colo: ColoConfig { requests_per_window: 500, ..ColoConfig::fast_test() },
        jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
        ..FleetConfig::fast_test()
    }
}

fn run_static(
    policy: PolicyKind,
    balancer: BalancerKind,
    core: SimCore,
) -> (FleetResult, ServerPlaneProfile) {
    let cfg = base(balancer, core);
    let steps = cfg.steps;
    let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), policy);
    for _ in 0..steps {
        sim.step_once();
    }
    let profile = *sim.server_plane_profile();
    (sim.into_result(), profile)
}

fn assert_results_identical(a: &FleetResult, b: &FleetResult, label: &str) {
    assert_eq!(a.server_cores, b.server_cores, "{label}: server cores diverged");
    assert_eq!(a.steps, b.steps, "{label}: step records diverged");
    assert_eq!(a.jobs, b.jobs, "{label}: job ledgers diverged");
    assert_eq!(a.events, b.events, "{label}: event logs diverged");
}

#[test]
fn event_core_matches_stepped_oracle_across_policies_and_balancers() {
    let policies = [
        PolicyKind::Random,
        PolicyKind::FirstFit,
        PolicyKind::LeastLoaded,
        PolicyKind::InterferenceAware,
    ];
    let balancers = [BalancerKind::CapacityWeighted, BalancerKind::SlackAware];
    for policy in policies {
        for balancer in balancers {
            let (stepped, stepped_profile) = run_static(policy, balancer, SimCore::Stepped);
            let (event, event_profile) = run_static(policy, balancer, SimCore::EventDriven);
            let label = format!("{policy:?}/{balancer:?}");
            assert_results_identical(&stepped, &event, &label);
            // The oracle never fast-forwards; the event core never loses a
            // window — every window is accounted full or fast, and the
            // totals agree.
            assert_eq!(stepped_profile.fast_windows, 0, "{label}: oracle fast-forwarded");
            assert_eq!(
                stepped_profile.full_windows,
                event_profile.full_windows + event_profile.fast_windows,
                "{label}: the cores disagree on total windows simulated"
            );
        }
    }
}

#[test]
fn event_core_matches_stepped_oracle_under_elasticity() {
    use heracles::autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet};

    let run = |core: SimCore| {
        let fleet =
            FleetConfig { steps: 14, demand_hold_steps: 3, ..base(BalancerKind::SlackAware, core) };
        let cfg = AutoscaleConfig::diurnal(fleet);
        let steps = cfg.fleet.steps;
        let mut elastic = ElasticFleet::new(
            cfg,
            ServerConfig::default_haswell(),
            PolicyKind::LeastLoaded,
            AutoscaleKind::Reactive,
        );
        for _ in 0..steps {
            elastic.step_once();
        }
        let profile = elastic.server_plane_profile();
        (elastic.finish(), profile)
    };

    let (stepped, stepped_profile) = run(SimCore::Stepped);
    let (event, event_profile) = run(SimCore::EventDriven);
    assert_results_identical(&stepped.fleet, &event.fleet, "elastic reactive");
    assert_eq!(stepped.events, event.events, "elastic reactive: scale-event logs diverged");
    assert_eq!(stepped_profile.fast_windows, 0, "oracle fast-forwarded under elasticity");
    assert_eq!(
        stepped_profile.full_windows,
        event_profile.full_windows + event_profile.fast_windows,
        "the cores disagree on total windows under elasticity"
    );
}

#[test]
fn a_held_steady_fleet_actually_quiesces_on_the_event_core() {
    // Pure LC leaves under one held demand sample for the whole run: after
    // the SLO deque warms and the controller settles (which takes ~30
    // steps — the leaf controller keeps nudging allocations while it
    // converges, and every nudge is a legitimate wake), every remaining
    // window is provably unchanged and must go through the fast path.
    let quiet = |core: SimCore| FleetConfig {
        steps: 48,
        demand_hold_steps: 48,
        jobs: JobStreamConfig { arrivals_per_step: 0.0, ..JobStreamConfig::default() },
        ..base(BalancerKind::CapacityWeighted, core)
    };
    let run = |core: SimCore| {
        let cfg = quiet(core);
        let steps = cfg.steps;
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::FirstFit);
        for _ in 0..steps {
            sim.step_once();
        }
        let profile = *sim.server_plane_profile();
        (sim.into_result(), profile)
    };

    let (stepped, stepped_profile) = run(SimCore::Stepped);
    let (event, event_profile) = run(SimCore::EventDriven);
    assert_results_identical(&stepped, &event, "quiet fleet");

    assert_eq!(event_profile.steps, 48);
    assert!(event_profile.fast_windows > 0, "no window was ever fast-forwarded");
    assert!(
        event_profile.quiescent_leaf_steps > 0,
        "no leaf-step ever quiesced: {event_profile:?}"
    );
    assert!(event_profile.woken_per_step() < 5.0, "every leaf woke every step: {event_profile:?}");
    // The oracle simulated everything in full, and both cores agree on the
    // total amount of simulated time.
    assert_eq!(stepped_profile.fast_windows, 0);
    assert_eq!(stepped_profile.quiescent_leaf_steps, 0);
    assert_eq!(
        stepped_profile.full_windows,
        event_profile.full_windows + event_profile.fast_windows
    );
}
