//! Integration tests spanning the whole workspace: hardware model, isolation
//! mechanisms, workload models, the Heracles controller, the baselines and
//! the colocation harness working together.

use heracles_baselines::{LcOnly, OsOnly, StaticPartition};
use heracles_colo::{ColoConfig, ColoRunner, ColoSummary};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn heracles(lc: &LcWorkload, server: &ServerConfig) -> Box<dyn ColocationPolicy> {
    Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), OfflineDramModel::profile(lc, server)))
}

fn run(
    lc: LcWorkload,
    be: Option<BeWorkload>,
    policy: Box<dyn ColocationPolicy>,
    load: f64,
    windows: usize,
) -> (ColoSummary, ColoRunner) {
    let server = ServerConfig::default_haswell();
    let mut runner = ColoRunner::new(server, lc, be, policy, ColoConfig::fast_test());
    runner.run_steady(load, windows);
    (runner.summary_of_last(windows / 2), runner)
}

#[test]
fn heracles_colocates_every_lc_with_every_production_be_without_violations() {
    let server = ServerConfig::default_haswell();
    for lc in LcWorkload::all() {
        for be in BeWorkload::production_set() {
            let policy = heracles(&lc, &server);
            let (summary, _) = run(lc.clone(), Some(be.clone()), policy, 0.5, 70);
            assert_eq!(
                summary.slo_violation_fraction,
                0.0,
                "{} + {} violated the SLO: {:?}",
                lc.name(),
                be.name(),
                summary
            );
            assert!(
                summary.mean_emu > 0.55,
                "{} + {}: EMU only {:.2}",
                lc.name(),
                be.name(),
                summary.mean_emu
            );
        }
    }
}

#[test]
fn heracles_beats_a_conservative_static_partition_on_utilization_at_low_load() {
    // The paper's argument (§3.3): a static partition conservative enough to
    // protect the SLO across all loads leaves utilization on the table.
    let server = ServerConfig::default_haswell();
    let lc = LcWorkload::websearch();
    let be = BeWorkload::brain();
    let (heracles_summary, _) = run(lc.clone(), Some(be.clone()), heracles(&lc, &server), 0.2, 140);
    let (static_summary, _) =
        run(lc.clone(), Some(be), Box::new(StaticPartition::conservative()), 0.2, 140);
    assert!(
        heracles_summary.mean_emu > static_summary.mean_emu,
        "heracles {:.2} <= static {:.2}",
        heracles_summary.mean_emu,
        static_summary.mean_emu
    );
}

#[test]
fn os_only_isolation_is_insufficient_for_colocation() {
    let lc = LcWorkload::memkeyval();
    let (summary, _) = run(lc, Some(BeWorkload::brain()), Box::new(OsOnly::new()), 0.5, 20);
    assert!(
        summary.worst_normalized_latency > 1.5,
        "expected large SLO violations, got {:.2}",
        summary.worst_normalized_latency
    );
}

#[test]
fn lc_only_baseline_meets_slo_at_every_load_for_every_workload() {
    for lc in LcWorkload::all() {
        for load in [0.1, 0.5, 0.9] {
            let (summary, _) = run(lc.clone(), None, Box::new(LcOnly::new()), load, 20);
            assert_eq!(
                summary.slo_violation_fraction,
                0.0,
                "{} at load {load} violated its SLO",
                lc.name()
            );
        }
    }
}

#[test]
fn heracles_disables_colocation_at_high_load_and_resumes_at_low_load() {
    let server = ServerConfig::default_haswell();
    let lc = LcWorkload::websearch();
    let policy = heracles(&lc, &server);
    let mut runner = ColoRunner::new(
        server,
        lc,
        Some(BeWorkload::streetview()),
        policy,
        ColoConfig::fast_test(),
    );
    // Converge at moderate load.
    runner.run_steady(0.4, 50);
    assert!(runner.history().last().unwrap().be_cores > 2);
    // Spike to 95% load: BE must be disabled within a poll period.
    runner.run_steady(0.95, 25);
    assert_eq!(
        runner.history().last().unwrap().be_cores,
        0,
        "BE tasks must be evicted at 95% load"
    );
    // Return to low load: colocation resumes once any cooldown expires
    // (the fast configuration uses a 60 s cooldown).
    runner.run_steady(0.3, 90);
    assert!(
        runner.history().last().unwrap().be_cores > 0,
        "BE tasks should come back once load drops"
    );
}

#[test]
fn heracles_protects_memkeyval_from_network_antagonist() {
    let server = ServerConfig::default_haswell();
    let lc = LcWorkload::memkeyval();
    let (summary, runner) =
        run(lc.clone(), Some(BeWorkload::iperf()), heracles(&lc, &server), 0.6, 60);
    assert_eq!(
        summary.slo_violation_fraction, 0.0,
        "memkeyval + iperf under Heracles violated the SLO: {summary:?}"
    );
    // The network sub-controller must have installed an egress ceiling.
    assert!(runner.server().allocations().be_net_ceil_gbps().is_some());
}

#[test]
fn offline_model_error_does_not_break_the_controller() {
    // The paper notes Heracles tolerated a stale DRAM model; emulate a 30%
    // profiling error and check the SLO still holds.
    let server = ServerConfig::default_haswell();
    let lc = LcWorkload::websearch();
    let model = OfflineDramModel::profile(&lc, &server).perturbed(0.7);
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), model));
    let (summary, _) = run(lc, Some(BeWorkload::streetview()), policy, 0.5, 70);
    assert_eq!(summary.slo_violation_fraction, 0.0, "{summary:?}");
}
