//! End-to-end assertions for the traffic plane: LC demand is first-class
//! and conserved, mixed-service fleets are real, and scale-in carries the
//! SLO risk the old per-server-trace API hid.
//!
//! * On a mixed websearch+memkeyval fleet scheduling the evaluation job
//!   set (which includes the iperf network antagonist memkeyval cannot
//!   tolerate), slack-aware balancing plus interference-aware placement
//!   beats capacity-weighted plus least-loaded on violation server-steps
//!   at equal BE throughput — the (hardware, service) interference key and
//!   the balancer's divert-from-distress both pulling the same direction.
//! * Aggressive scale-in (no SLO-risk pricing — exactly the behaviour the
//!   old API silently modelled, since a retired leaf's traffic used to
//!   evaporate) now measurably buys SLO violations, while the predictive
//!   autoscaler — which prices the re-routed share before shedding and
//!   re-buys ahead of the forecast — avoids them entirely.
//! * Demand conservation is auditable end to end: every step of every run,
//!   routed QPS equals offered QPS to floating-point tolerance.

use heracles::autoscale::{
    AutoscaleConfig, AutoscaleKind, AutoscaleResult, ElasticFleet, ReactiveConfig, ReactivePolicy,
};
use heracles::fleet::{BalancerKind, FleetConfig, FleetResult, FleetSim, JobMix, PolicyKind};
use heracles::hw::ServerConfig;
use heracles::workloads::{LcKind, ServiceMix};

/// The mixed websearch+memkeyval scenario: an evaluation job stream (which
/// includes the iperf network antagonist) over a two-service fleet, hot
/// enough that placement and balancing decisions show up in the violation
/// ledger.
fn mixed_lc_config(balancer: BalancerKind) -> FleetConfig {
    FleetConfig {
        services: ServiceMix { websearch: 0.5, ml_cluster: 0.0, memkeyval: 0.5 },
        balancer,
        jobs: heracles::fleet::JobStreamConfig {
            mix: JobMix::Evaluation,
            arrivals_per_step: 2.0,
            ..heracles::fleet::JobStreamConfig::default()
        },
        ..FleetConfig::fast_services()
    }
}

fn run(config: FleetConfig, policy: PolicyKind) -> FleetResult {
    FleetSim::new(config, ServerConfig::default_haswell(), policy).run()
}

#[test]
fn mixed_service_fleet_conserves_demand_and_serves_both_services() {
    let result = run(mixed_lc_config(BalancerKind::CapacityWeighted), PolicyKind::LeastLoaded);

    // Both services got leaves, and both pools carried traffic every step.
    let ws = LcKind::Websearch.index();
    let kv = LcKind::Memkeyval.index();
    for step in &result.steps {
        assert_eq!(step.in_service_by_service[ws], 4);
        assert_eq!(step.in_service_by_service[kv], 4);
        assert!(step.offered_qps[ws] > 0.0 && step.offered_qps[kv] > 0.0);
        assert_eq!(step.offered_qps[LcKind::MlCluster.index()], 0.0);
        // memkeyval's pool moves hundreds of thousands of QPS, websearch's
        // thousands — per-service accounting keeps them apart.
        assert!(step.offered_qps[kv] > 10.0 * step.offered_qps[ws]);
    }

    // The conservation audit: routed == offered on every step, for every
    // service — a leaf leaving or joining a pool re-divides traffic, it
    // never creates or destroys it.
    assert!(
        result.max_routing_imbalance() < 1e-9,
        "demand was not conserved: {}",
        result.max_routing_imbalance()
    );

    // Jobs actually ran on both services' leaves.
    let placed_services: std::collections::HashSet<usize> = result
        .events
        .iter()
        .filter(|e| e.kind == heracles::fleet::FleetEventKind::Placed)
        .map(|e| result.server_services[e.server])
        .collect();
    assert!(placed_services.contains(&ws), "no job ever placed on a websearch leaf");
    assert!(placed_services.contains(&kv), "no job ever placed on a memkeyval leaf");
}

#[test]
fn slack_aware_plus_interference_aware_beats_capacity_weighted_plus_least_loaded() {
    let naive = run(mixed_lc_config(BalancerKind::CapacityWeighted), PolicyKind::LeastLoaded);
    let informed = run(mixed_lc_config(BalancerKind::SlackAware), PolicyKind::InterferenceAware);

    // Fewer violation server-steps...
    assert!(
        informed.violation_server_steps() < naive.violation_server_steps(),
        "informed stack violated {} vs naive {}",
        informed.violation_server_steps(),
        naive.violation_server_steps()
    );
    // ...concentrated where the mechanism says: the per-(hardware, service)
    // interference key keeps network antagonists off the network-bound
    // memkeyval leaves.
    let kv = LcKind::Memkeyval.index();
    assert!(
        informed.violation_server_steps_by_service()[kv]
            <= naive.violation_server_steps_by_service()[kv],
        "informed stack hurt memkeyval more"
    );
    // ...at equal BE throughput: the latency win is not bought by idling
    // the batch tier.
    let ratio = informed.be_core_s_served() / naive.be_core_s_served();
    assert!(ratio >= 0.97, "informed stack served only {:.1}% of naive's work", ratio * 100.0);
}

/// Runs the canonical fast elastic scenario with a sparse BE stream — so
/// sparse that LC overload produces no stranded-job evidence, which is
/// precisely the regime where queue-driven autoscaling is blind to the
/// damage its sheds cause.
fn sparse_elastic(kind: AutoscaleKind) -> AutoscaleResult {
    let mut scenario = AutoscaleConfig::fast_test();
    scenario.fleet.jobs.arrivals_per_step = 0.2;
    ElasticFleet::new(scenario, ServerConfig::default_haswell(), PolicyKind::LeastLoaded, kind)
        .run()
}

#[test]
fn aggressive_scale_in_buys_violations_the_predictive_policy_avoids() {
    let fixed = sparse_elastic(AutoscaleKind::Static);
    let priced = sparse_elastic(AutoscaleKind::Reactive);
    let predictive = sparse_elastic(AutoscaleKind::Predictive);
    let mut scenario = AutoscaleConfig::fast_test();
    scenario.fleet.jobs.arrivals_per_step = 0.2;
    let aggressive = ElasticFleet::new(
        scenario,
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        AutoscaleKind::Reactive,
    )
    .with_autoscaler(Box::new(ReactivePolicy::new(ReactiveConfig::aggressive())))
    .run();

    // The static fleet never violates: the natural diurnal peak fits the
    // provisioned pool.  Every violation below is *induced by scale-in
    // re-routing* — the risk the old per-server-trace API structurally hid.
    assert_eq!(fixed.fleet.violation_server_steps(), 0, "static fleet violated");

    // Aggressive consolidation (no SLO-risk pricing, no load-evidence
    // re-buy — the old API's implicit model) sheds deep into the valley
    // and runs the survivors far past their knee on the climb.
    assert!(aggressive.scale_ins() > 0);
    assert!(
        aggressive.fleet.violation_server_steps() >= 10,
        "aggressive scale-in caused only {} violation server-steps — the re-routed \
         share no longer hurts?",
        aggressive.fleet.violation_server_steps()
    );

    // The priced reactive policy keeps the damage to a small transient —
    // it refuses sheds whose re-routed share is projected past the knee,
    // and buys back on load evidence — but it still *observes* the
    // overload before acting, so a handful of server-steps slip through.
    assert!(
        priced.fleet.violation_server_steps() < aggressive.fleet.violation_server_steps() / 2,
        "pricing did not reduce the violations ({} vs {})",
        priced.fleet.violation_server_steps(),
        aggressive.fleet.violation_server_steps()
    );

    // The predictive policy — shedding against the forecast and re-buying
    // ahead of the peak — avoids the re-route-induced violations entirely.
    assert_eq!(
        predictive.fleet.violation_server_steps(),
        0,
        "the predictive autoscaler did not avoid the re-route-induced violations"
    );
    assert!(predictive.scale_ins() > 0, "predictive never shed — the comparison is vacuous");

    // Demand conservation held throughout every elastic run: retiring and
    // purchasing leaves re-divides each service's traffic, never loses it.
    for result in [&fixed, &priced, &predictive, &aggressive] {
        assert!(result.fleet.max_routing_imbalance() < 1e-9);
    }
}
