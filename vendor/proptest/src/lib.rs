//! Vendored stand-in for `proptest`.
//!
//! Crates.io is unreachable in the build environment, so this crate
//! implements the subset of proptest used by the workspace's property tests:
//!
//! * the [`proptest!`] macro wrapping `#[test] fn name(arg in strategy, ...)`,
//! * range strategies over `f64`/integers (exclusive and inclusive),
//!   tuples of strategies, [`Strategy::prop_map`] and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped onto the std asserts).
//!
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map
//!
//! Each test body runs [`CASES`] times with inputs drawn from a generator
//! seeded deterministically from the test's name, so failures are exactly
//! reproducible run-to-run.  There is no shrinking: a failing case reports
//! the assert message with the concrete inputs left to the assert text.

#![forbid(unsafe_code)]

/// Number of random cases each property runs.
pub const CASES: usize = 64;

/// Deterministic input generation for property tests.
pub mod test_runner {
    /// SplitMix64 generator used to drive strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator as a pure function of the test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: deterministic samplers of test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of values of one type, sampled from a [`TestRng`].
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` of this strategy's values.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map: f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual one-stop import for property tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Wraps property functions into `#[test]` functions that sample each
/// argument from its strategy [`CASES`](crate::CASES) times.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for __proptest_case in 0..$crate::CASES {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                )+
                { $body }
            }
        }
    )*};
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    // `proptest!` / `prop_assert!` are `#[macro_export]` macros defined above,
    // already in textual scope inside the defining crate.
    proptest! {
        /// The macro machinery itself: ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 0.5f64..2.0, n in 3usize..9) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        /// Vec strategy respects element and size bounds.
        #[test]
        fn vec_in_bounds(v in crate::collection::vec(-1.0f64..1.0, 1..50)) {
            prop_assert!((1..50).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        /// Tuples, inclusive ranges and prop_map compose.
        #[test]
        fn mapped_tuples_sample(
            pair in (0.0..=1.0f64, 3usize..9),
            scaled in crate::strategy::Strategy::prop_map(0.0..=1.0f64, |x| x * 10.0),
        ) {
            prop_assert!((0.0..=1.0).contains(&pair.0));
            prop_assert!((3..9).contains(&pair.1));
            prop_assert!((0.0..=10.0).contains(&scaled));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
