//! Vendored stand-in for the `rand` crate (0.8-style API surface).
//!
//! Crates.io is unreachable in the build environment, so this crate
//! implements the small subset of `rand` the workspace needs: a seedable,
//! clonable [`rngs::StdRng`] plus the [`Rng`] / [`SeedableRng`] traits with
//! `gen`, `gen_range` and `gen_bool`.  The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, fast, and of ample quality for the
//! simulation workloads here.  It intentionally does *not* promise the same
//! value stream as the real `StdRng` (ChaCha12); the workspace only relies on
//! determinism, not on a particular stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an [`RngCore`] (stand-in for
/// sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo reduction: bias is negligible for the span sizes the
                // simulation uses and determinism is all that matters here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (for `f64`: in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn unit_mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
