//! Vendored stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and the workspace only
//! uses `#[derive(Serialize, Deserialize)]` as forward-looking annotations —
//! nothing serializes through serde yet.  These derives therefore accept the
//! attribute (including `#[serde(...)]` helper attributes) and expand to an
//! empty token stream.  If real serialization is ever needed, replace the
//! `vendor/serde*` crates with the real ones.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
