//! Vendored stand-in for `criterion`.
//!
//! Crates.io is unreachable in the build environment, so this crate provides
//! the subset of criterion's API the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by plain
//! `std::time::Instant` timing with a median-of-samples summary line.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! binaries) each bench body runs exactly once as a smoke test, so the bench
//! targets stay compiled and exercised without slowing the test suite.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine input: large batches.
    SmallInput,
    /// Large routine input: smaller batches.
    LargeInput,
    /// Fresh setup per iteration.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `f`, recording `sample_count` samples of `iters_per_sample` calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_secs_f64() / self.iters_per_sample as f64);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let mut total = 0.0;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed().as_secs_f64();
            }
            self.samples.push(total / self.iters_per_sample as f64);
        }
    }
}

/// Benchmark driver: registers and times named benchmark functions.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` from
        // `cargo test` so benches double as smoke tests.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, test_mode }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let (sample_count, iters) = if self.test_mode { (1, 1) } else { (self.sample_size, 3) };
        let mut bencher = Bencher { samples: &mut samples, iters_per_sample: iters, sample_count };
        f(&mut bencher);
        if self.test_mode {
            println!("{id}: ok (smoke)");
        } else {
            samples.sort_by(|a, b| a.total_cmp(b));
            let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
            let (lo, hi) =
                (samples.first().copied().unwrap_or(0.0), samples.last().copied().unwrap_or(0.0));
            println!(
                "{id}: median {:.3} ms/iter (min {:.3}, max {:.3}, {} samples)",
                median * 1e3,
                lo * 1e3,
                hi * 1e3,
                samples.len()
            );
        }
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
