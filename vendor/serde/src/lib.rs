//! Vendored stand-in for `serde`.
//!
//! Crates.io is unreachable in the build environment.  The workspace uses
//! serde only as `#[derive(Serialize, Deserialize)]` annotations on model
//! structs; nothing constrains on the traits or serializes data yet.  This
//! crate supplies the two trait names plus the (no-op) derive macros so the
//! annotations compile.  Swap in the real serde when serialization lands.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The vendored derive does not implement it; it exists so code can name the
/// trait in bounds or `dyn` positions without pulling in real serde.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
