//! Single-resource interference characterization (a miniature of Figure 1).
//!
//! Pins each latency-critical workload to "enough cores for its SLO" at a few
//! load points and runs one antagonist on the remaining cores, printing tail
//! latency as a percentage of the SLO.  Values above 100% are SLO violations;
//! values above 300% are printed as ">300%" like the paper's figure.
//!
//! Run with: `cargo run --release --example characterize_interference`

use heracles_colo::{characterize_cell, ColoConfig};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn main() {
    let server = ServerConfig::default_haswell();
    let colo = ColoConfig::default();
    let loads = [0.10, 0.30, 0.50, 0.70, 0.90];

    for lc in LcWorkload::all() {
        println!("{}", lc.name());
        print!("{:<14}", "antagonist");
        for load in loads {
            print!("{:>9.0}%", load * 100.0);
        }
        println!();
        for antagonist in BeWorkload::characterization_antagonists() {
            print!("{:<14}", antagonist.name());
            for &load in &loads {
                let cell = characterize_cell(&lc, &antagonist, load, &server, &colo);
                print!("{:>10}", cell.formatted());
            }
            println!();
        }
        println!();
    }
}
