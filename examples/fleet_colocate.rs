//! Fleet colocation: sweep the placement policies across fleet sizes,
//! generation mixes and LC service catalogs.
//!
//! Runs the fleet scheduler (a stream of BE jobs placed over a diurnally
//! loaded LC fleet, each server defended by its own Heracles controller)
//! for every placement policy at a few fleet sizes — first on the
//! homogeneous Haswell fleet, then on a mixed-generation datacenter
//! (Sandy-Bridge-class, Haswell and Skylake-class boxes) — and prints the
//! recovered utilization and the throughput/TCO gain over the uncolocated
//! fleet.  Utilization is core-weighted: on a mixed fleet a 48-core box's
//! windows represent three times the machine time of a 16-core box's.
//!
//! A final block swaps the websearch-only catalog for the mixed front end
//! (websearch + ml_cluster + memkeyval, phase-spread across the diurnal
//! cycle) routed by each of the traffic plane's balancers — the
//! conservation audit (routed == offered) is printed with each row.
//!
//! Run with: `cargo run --release --example fleet_colocate`

use heracles::cluster::TcoModel;
use heracles::fleet::{
    BalancerKind, FleetConfig, FleetSim, GenerationMix, JobStreamConfig, PolicyKind,
};
use heracles::hw::ServerConfig;
use heracles::workloads::ServiceMix;

fn main() {
    let server = ServerConfig::default_haswell();
    let tco = TcoModel::paper_case_study();

    println!("Fleet colocation: policies × fleet sizes × generation mixes");
    println!();
    println!(
        "{:>8} {:<12} {:<20} {:>6} {:>9} {:>9} {:>7} {:>7} {:>10}",
        "servers", "mix", "policy", "cores", "LC load", "EMU", "viol%", "jobs", "TCO gain"
    );

    for mix in [GenerationMix::homogeneous(), GenerationMix::mixed_datacenter()] {
        for servers in [8usize, 16] {
            let config = FleetConfig {
                servers,
                mix,
                // Scale the job stream with the fleet so each size is
                // similarly saturated.
                jobs: JobStreamConfig {
                    arrivals_per_step: 0.15 * servers as f64,
                    ..JobStreamConfig::default()
                },
                ..FleetConfig::fast_test()
            };
            for kind in PolicyKind::all() {
                let result = FleetSim::new(config, server.clone(), kind).run();
                println!(
                    "{:>8} {:<12} {:<20} {:>6} {:>8.1}% {:>8.1}% {:>6.1}% {:>7} {:>9.1}%",
                    servers,
                    mix.to_string(),
                    result.policy,
                    result.total_cores(),
                    result.mean_lc_load() * 100.0,
                    result.mean_fleet_emu() * 100.0,
                    result.slo_violation_fraction() * 100.0,
                    result.jobs_completed(),
                    result.tco_improvement(&tco) * 100.0
                );
            }
            println!();
        }
    }
    println!("Mixed LC service catalog (websearch + ml_cluster + memkeyval), per balancer:");
    println!();
    for balancer in BalancerKind::all() {
        let config = FleetConfig {
            services: ServiceMix::mixed_frontend(),
            balancer,
            jobs: JobStreamConfig { arrivals_per_step: 1.2, ..JobStreamConfig::default() },
            ..FleetConfig::fast_services()
        };
        for kind in [PolicyKind::LeastLoaded, PolicyKind::InterferenceAware] {
            let result = FleetSim::new(config, server.clone(), kind).run();
            let by = result.violation_server_steps_by_service();
            println!(
                "{:>8} {:<18} {:<20} EMU {:>5.1}%  viol ws/ml/kv {}/{}/{}  imbalance {:.1e}",
                config.servers,
                balancer.name(),
                result.policy,
                result.mean_fleet_emu() * 100.0,
                by[0],
                by[1],
                by[2],
                result.max_routing_imbalance()
            );
        }
    }
    println!();
    println!("(EMU − LC load is the machine time the scheduler recovered for batch work;");
    println!(" the TCO column converts it with the paper's cost model, both core-weighted.)");
}
