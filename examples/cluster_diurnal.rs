//! Websearch cluster over a diurnal load trace (a miniature of Figure 8).
//!
//! Runs a small websearch cluster twice — once without colocation and once
//! with per-leaf Heracles instances colocating brain and streetview — over a
//! compressed diurnal trace, and prints root latency (relative to the cluster
//! SLO) and Effective Machine Utilization side by side.
//!
//! Run with: `cargo run --release --example cluster_diurnal`

use heracles_cluster::cluster::ClusterPolicy;
use heracles_cluster::{ClusterConfig, WebsearchCluster};
use heracles_colo::ColoConfig;
use heracles_hw::ServerConfig;

fn main() {
    let server = ServerConfig::default_haswell();
    // A compressed trace: 48 steps of 10 windows each.
    let base = ClusterConfig {
        leaves: 8,
        steps: 48,
        windows_per_step: 10,
        colo: ColoConfig { requests_per_window: 1_500, ..ColoConfig::default() },
        ..ClusterConfig::default()
    };

    let baseline = WebsearchCluster::new(
        ClusterConfig { policy: ClusterPolicy::Baseline, ..base },
        server.clone(),
    )
    .run();
    let heracles =
        WebsearchCluster::new(ClusterConfig { policy: ClusterPolicy::Heracles, ..base }, server)
            .run();

    println!(
        "{:>6} {:>6} | {:>16} {:>9} | {:>16} {:>9}",
        "step", "load", "baseline lat/SLO", "base EMU", "heracles lat/SLO", "her EMU"
    );
    for (b, h) in baseline.steps.iter().zip(&heracles.steps) {
        println!(
            "{:>6} {:>5.0}% | {:>15.0}% {:>8.0}% | {:>15.0}% {:>8.0}%",
            b.time,
            b.load * 100.0,
            b.normalized_root_latency * 100.0,
            b.emu * 100.0,
            h.normalized_root_latency * 100.0,
            h.emu * 100.0
        );
    }
    println!();
    println!(
        "baseline: mean EMU {:.0}%, SLO violations {:.0}%",
        baseline.mean_emu() * 100.0,
        baseline.violation_fraction() * 100.0
    );
    println!(
        "heracles: mean EMU {:.0}%, min EMU {:.0}%, SLO violations {:.0}%",
        heracles.mean_emu() * 100.0,
        heracles.min_emu() * 100.0,
        heracles.violation_fraction() * 100.0
    );
}
