//! Elastic fleet sweep: the three autoscaling policies against the static
//! baseline, across initial fleet sizes and generation mixes.
//!
//! Each run wraps the fleet scheduler in the closed-loop elastic controller
//! on the canonical diurnal scenario (the run compressed onto one full
//! 12-hour cycle, a phase-coherent fleet, a job stream sized to ~60% of
//! static capacity): the reactive policy scales on stranded-job evidence,
//! the predictive one additionally pre-provisions ahead of the load peak.
//! Scale-out buys the generation with the best marginal BE throughput per
//! TCO dollar; scale-in drains servers by live-migrating their residents.
//! The last column is the figure of merit: amortized TCO per 1000 completed
//! BE core·seconds, relative to the static fleet.
//!
//! Run with: `cargo run --release --example fleet_autoscale`

use heracles::autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet};
use heracles::fleet::{FleetConfig, GenerationMix, PolicyKind};
use heracles::hw::ServerConfig;

fn main() {
    let server = ServerConfig::default_haswell();

    println!("Elastic fleet: autoscalers × fleet sizes × generation mixes");
    println!();
    println!(
        "{:>8} {:<12} {:<12} {:>8} {:>7} {:>7} {:>9} {:>10} {:>9} {:>10}",
        "servers",
        "mix",
        "autoscaler",
        "mean",
        "bought",
        "drained",
        "migrated",
        "core.s",
        "TCO $",
        "vs static"
    );

    for mix in [GenerationMix::homogeneous(), GenerationMix::mixed_datacenter()] {
        for servers in [8usize, 12] {
            let scenario =
                AutoscaleConfig::diurnal(FleetConfig { servers, mix, ..FleetConfig::fast_test() });
            let mut static_per_kcs = None;
            for kind in AutoscaleKind::all() {
                let result =
                    ElasticFleet::new(scenario, server.clone(), PolicyKind::LeastLoaded, kind)
                        .run();
                let per_kcs = result.fleet.tco_per_be_core_s() * 1_000.0;
                if kind == AutoscaleKind::Static {
                    static_per_kcs = Some(per_kcs);
                }
                let delta = static_per_kcs
                    .map(|s| format!("{:+.1}%", (per_kcs / s - 1.0) * 100.0))
                    .unwrap_or_default();
                println!(
                    "{:>8} {:<12} {:<12} {:>8.1} {:>7} {:>7} {:>9} {:>10.0} {:>9.2} {:>10}",
                    servers,
                    mix.to_string(),
                    result.autoscaler,
                    result.fleet.mean_in_service_servers(),
                    result.scale_outs(),
                    result.scale_ins(),
                    result.drain_migrations(),
                    result.fleet.be_core_s_served(),
                    result.fleet.total_tco_dollars(),
                    delta
                );
            }
            println!();
        }
    }
    println!("(identical seeded job stream per block; \"vs static\" compares amortized TCO per");
    println!(" completed core·second — negative means the elastic fleet does the same work");
    println!(" for fewer dollars.)");
}
