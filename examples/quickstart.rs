//! Quickstart: colocate a best-effort job with websearch under Heracles.
//!
//! Builds a simulated dual-socket server, profiles websearch's DRAM bandwidth
//! offline, starts a per-server Heracles controller, and colocates the
//! `brain` batch job with websearch at 40% load.  Prints how the controller
//! grows the best-effort share while keeping the tail latency inside the SLO.
//!
//! Run with: `cargo run --release --example quickstart`

use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn main() {
    let server = ServerConfig::default_haswell();
    let websearch = LcWorkload::websearch();
    let brain = BeWorkload::brain();

    // Offline step: profile the LC workload's DRAM bandwidth needs.
    let dram_model = OfflineDramModel::profile(&websearch, &server);

    // Online step: run Heracles on the server.
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::default(), websearch.slo(), dram_model));
    let mut runner = ColoRunner::new(server, websearch, Some(brain), policy, ColoConfig::default());

    println!("colocating brain with websearch at 40% load under Heracles");
    println!(
        "{:>6} {:>9} {:>9} {:>12} {:>8} {:>8}",
        "time", "lc_cores", "be_cores", "latency/SLO", "EMU", "DRAM"
    );
    for minute in 0..3 {
        for _ in 0..60 {
            runner.step(0.40);
        }
        let r = runner.history().last().expect("at least one window").clone();
        println!(
            "{:>5}s {:>9} {:>9} {:>11.0}% {:>7.0}% {:>7.0}%",
            (minute + 1) * 60,
            r.lc_cores,
            r.be_cores,
            r.normalized_latency * 100.0,
            r.emu * 100.0,
            r.counters.dram_utilization() * 100.0
        );
    }

    let summary = runner.summary_of_last(120);
    println!();
    println!("steady state over the last 2 minutes:");
    println!("  worst latency: {:.0}% of SLO", summary.worst_normalized_latency * 100.0);
    println!("  SLO violations: {:.0}% of windows", summary.slo_violation_fraction * 100.0);
    println!("  effective machine utilization: {:.0}%", summary.mean_emu * 100.0);
    println!(
        "  best-effort throughput: {:.0}% of running alone",
        summary.mean_be_throughput * 100.0
    );
}
