//! Compare colocation policies: Heracles vs OS-only isolation vs a static
//! partition, across the load range.
//!
//! For each policy the example colocates `streetview` (a DRAM-hungry batch
//! job) with websearch at several load points and reports worst-case latency
//! and Effective Machine Utilization, reproducing in miniature the trade-off
//! the paper's Figures 4 and 5 illustrate.
//!
//! Run with: `cargo run --release --example colocate_websearch`

use heracles_baselines::{OsOnly, StaticPartition};
use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn policy(name: &str, lc: &LcWorkload, server: &ServerConfig) -> Box<dyn ColocationPolicy> {
    match name {
        "heracles" => Box::new(Heracles::new(
            HeraclesConfig::default(),
            lc.slo(),
            OfflineDramModel::profile(lc, server),
        )),
        "os-only" => Box::new(OsOnly::new()),
        "static" => Box::new(StaticPartition::half_and_half()),
        other => panic!("unknown policy {other}"),
    }
}

fn main() {
    let server = ServerConfig::default_haswell();
    let websearch = LcWorkload::websearch();
    let streetview = BeWorkload::streetview();
    let loads = [0.2, 0.4, 0.6, 0.8];

    println!("websearch + streetview, 90 s per load point");
    println!(
        "{:<10} {:>6} {:>14} {:>10} {:>14}",
        "policy", "load", "worst latency", "EMU", "SLO violations"
    );
    for name in ["heracles", "os-only", "static"] {
        for &load in &loads {
            let mut runner = ColoRunner::new(
                server.clone(),
                websearch.clone(),
                Some(streetview.clone()),
                policy(name, &websearch, &server),
                ColoConfig::default(),
            );
            runner.run_steady(load, 90);
            // Report steady state (skip the first 45 s of convergence).
            let summary = runner.summary_of_last(45);
            println!(
                "{:<10} {:>5.0}% {:>13.0}% {:>9.0}% {:>13.0}%",
                name,
                load * 100.0,
                summary.worst_normalized_latency * 100.0,
                summary.mean_emu * 100.0,
                summary.slo_violation_fraction * 100.0
            );
        }
    }
    println!();
    println!("Heracles keeps the worst-case latency under the SLO while raising EMU;");
    println!("OS-only isolation violates the SLO, and the static partition leaves");
    println!("utilization on the table at low load while still risking violations at high load.");
}
