//! Criterion micro-benchmarks of the Heracles controller itself: the cost of
//! one control decision, of building the offline DRAM model, and of a full
//! convergence from BE-disabled to steady state.  The paper reports a typical
//! convergence time of ~30 s of wall-clock (controller) time; the benchmark
//! measures how much *computation* that takes, which is what matters for
//! running one controller instance per server.

use criterion::{criterion_group, criterion_main, Criterion};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, Measurements, OfflineDramModel};
use heracles_hw::{CounterSnapshot, Server, ServerConfig};
use heracles_sim::SimTime;
use heracles_workloads::LcWorkload;

fn healthy_measurements() -> Measurements {
    Measurements {
        tail_latency_s: 0.012,
        load: 0.4,
        be_progress: 5.0,
        counters: CounterSnapshot {
            dram_total_gbps: 45.0,
            dram_be_gbps: 15.0,
            dram_peak_gbps: 120.0,
            lc_freq_ghz: 2.5,
            be_freq_ghz: 2.2,
            package_power_w: 220.0,
            tdp_w: 290.0,
            cpu_utilization: 0.6,
            lc_cpu_utilization: 0.6,
            nic_lc_gbps: 0.3,
            nic_be_gbps: 0.1,
            nic_link_gbps: 10.0,
        },
    }
}

fn bench_controller_tick(c: &mut Criterion) {
    let config = ServerConfig::default_haswell();
    let websearch = LcWorkload::websearch();
    let model = OfflineDramModel::profile(&websearch, &config);
    c.bench_function("heracles_single_tick", |b| {
        let mut server = Server::new(config.clone());
        let mut heracles = Heracles::new(HeraclesConfig::default(), websearch.slo(), model.clone());
        heracles.init(&mut server);
        let m = healthy_measurements();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            heracles.tick(SimTime::from_secs(t), &mut server, &m);
        });
    });
}

fn bench_offline_profile(c: &mut Criterion) {
    let config = ServerConfig::default_haswell();
    c.bench_function("offline_dram_model_profile", |b| {
        b.iter(|| OfflineDramModel::profile(&LcWorkload::websearch(), &config));
    });
}

fn bench_convergence(c: &mut Criterion) {
    let config = ServerConfig::default_haswell();
    let websearch = LcWorkload::websearch();
    let model = OfflineDramModel::profile(&websearch, &config);
    c.bench_function("heracles_45s_convergence", |b| {
        b.iter(|| {
            let mut server = Server::new(config.clone());
            let mut heracles =
                Heracles::new(HeraclesConfig::default(), websearch.slo(), model.clone());
            heracles.init(&mut server);
            let m = healthy_measurements();
            for t in 1..=45 {
                heracles.tick(SimTime::from_secs(t), &mut server, &m);
            }
            server.allocations().be_cores()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_controller_tick, bench_offline_profile, bench_convergence
}
criterion_main!(benches);
