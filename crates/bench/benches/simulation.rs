//! Criterion micro-benchmarks of the simulation substrate: the cost of one
//! hardware-model evaluation, one measurement window of the queueing
//! simulation, and one full characterization cell.  These bound how long the
//! figure-reproduction binaries take.

use criterion::{criterion_group, criterion_main, Criterion};
use heracles_baselines::LcOnly;
use heracles_colo::{characterize_cell, ColoConfig, ColoRunner};
use heracles_hw::{ResourceDemand, Server, ServerConfig};
use heracles_workloads::{BeWorkload, LcWorkload};

fn bench_server_evaluate(c: &mut Criterion) {
    let mut server = Server::new(ServerConfig::default_haswell());
    server.allocations_mut().set_lc_cores(20);
    server.allocations_mut().set_be_cores(16);
    let demand = ResourceDemand {
        lc_active_cores: 14.0,
        lc_compute_activity: 0.9,
        lc_dram_gbps: 25.0,
        lc_llc_footprint_mb: 30.0,
        lc_net_gbps: 0.3,
        be_active_cores: 16.0,
        be_compute_activity: 1.0,
        be_dram_gbps_per_core: 2.0,
        be_llc_footprint_mb: 120.0,
        be_net_offered_gbps: 0.1,
        smt_antagonist_intensity: 0.0,
    };
    c.bench_function("server_evaluate", |b| b.iter(|| server.evaluate(&demand)));
}

fn bench_measurement_window(c: &mut Criterion) {
    c.bench_function("one_measurement_window_3000_requests", |b| {
        b.iter_batched(
            || {
                ColoRunner::new(
                    ServerConfig::default_haswell(),
                    LcWorkload::websearch(),
                    None,
                    Box::new(LcOnly::new()),
                    ColoConfig::default(),
                )
            },
            |mut runner| runner.step(0.5),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_characterization_cell(c: &mut Criterion) {
    let server = ServerConfig::default_haswell();
    let colo = ColoConfig::fast_test();
    c.bench_function("characterization_cell", |b| {
        b.iter(|| {
            characterize_cell(
                &LcWorkload::ml_cluster(),
                &BeWorkload::llc_medium(),
                0.5,
                &server,
                &colo,
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_server_evaluate, bench_measurement_window, bench_characterization_cell
}
criterion_main!(benches);
