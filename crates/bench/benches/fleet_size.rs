//! Fleet-size benchmark: per-step control-plane cost of the sharded store +
//! batched dispatch scheduler vs the legacy flat-store per-job scanner,
//! and per-step server-plane cost of the event-driven core vs the stepped
//! oracle on a steady fleet, swept over 100 / 1 000 / 10 000-leaf fleets.
//! Results land in `BENCH_fleet.json` at the workspace root so the numbers
//! are tracked in version control alongside the code that produced them.
//! Full-mode sweeps (and `--check` on the committed artifact) must hold
//! the server-plane speedup gate at the largest point.
//!
//! Modes:
//!
//! * default (`cargo bench -p heracles_bench --bench fleet_size`) — the
//!   full 100/1k/10k sweep; writes `BENCH_fleet.json`,
//! * `-- --fast` — the same sizes with fewer steps per point, for CI-grade
//!   machines; also writes `BENCH_fleet.json`,
//! * `-- --smoke` (or the `--test` flag `cargo test` passes to bench
//!   targets) — a tiny sweep validated against the schema in memory,
//!   nothing written,
//! * `-- --check` — validates the committed `BENCH_fleet.json` against the
//!   schema without running anything (the CI guard against artifact drift).
//!
//! Every sweep point runs both arms on the identical scenario and asserts
//! the schedules match, so the benchmark doubles as a large-fleet
//! equivalence check on top of the property tests.

use criterion::Criterion;
use heracles_bench::fleet_bench::{
    bench_fleet, bench_report_json, check_metering_overhead_gate, check_server_plane_gate,
    measure_fleet_size, validate_bench_json, FleetSizePoint,
};
use heracles_fleet::ShardingMode;

/// `(initial servers, steps per arm)` sweep points.
const FULL_SWEEP: [(usize, usize); 3] = [(100, 24), (1_000, 10), (10_000, 4)];
const FAST_SWEEP: [(usize, usize); 3] = [(100, 8), (1_000, 4), (10_000, 2)];

fn print_point(p: &FleetSizePoint) {
    println!(
        "{:>6} servers ({} steps): step {:.3} ms, control plane {:.3} ms \
         (routing {:.3} + dispatch {:.3} + signals {:.3}) — legacy {:.3} ms, speedup {:.1}x",
        p.servers,
        p.steps,
        p.step_ms,
        p.control_plane_ms,
        p.routing_ms,
        p.dispatch_ms,
        p.signals_ms,
        p.legacy_control_plane_ms,
        p.control_plane_speedup,
    );
    println!(
        "{:>6} server plane (steady): event {:.3} ms vs stepped {:.3} ms per step — \
         speedup {:.1}x, {:.1} leaves woken/step",
        "",
        p.server_plane_ms,
        p.stepped_server_plane_ms,
        p.server_plane_speedup,
        p.woken_leaves_per_step,
    );
    println!(
        "{:>6} energy meter: {:.3} ms metered vs {:.3} ms unmetered per step — {:.3}x overhead",
        "", p.metered_step_ms, p.unmetered_step_ms, p.metering_overhead,
    );
}

const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let smoke = has("--test") || has("--smoke");
    let fast = has("--fast");

    if has("--check") {
        let doc = std::fs::read_to_string(ARTIFACT).expect("BENCH_fleet.json must exist");
        validate_bench_json(&doc).expect("committed BENCH_fleet.json must match the schema");
        check_server_plane_gate(&doc)
            .expect("committed BENCH_fleet.json must hold the server-plane speedup gate");
        check_metering_overhead_gate(&doc)
            .expect("committed BENCH_fleet.json must hold the metering overhead gate");
        println!("{ARTIFACT}: schema ok, server-plane gate ok, metering gate ok");
        return;
    }

    // A conventional criterion timing of one whole fleet step at the
    // smallest sweep size (the fleet persists across iterations, so later
    // samples step a later point of the diurnal curve — same as production).
    let mut criterion = Criterion::default().sample_size(10);
    let mut fleet = bench_fleet(100, 32, ShardingMode::PerPool, true);
    criterion.bench_function("fleet_step/100_servers", |b| b.iter(|| fleet.step_once()));

    if smoke {
        let points = vec![measure_fleet_size(32, 3)];
        let doc = bench_report_json("smoke", &points);
        validate_bench_json(&doc).expect("smoke bench report must validate");
        println!("fleet_size sweep: ok (smoke)");
        return;
    }

    let (mode, sweep) = if fast { ("fast", FAST_SWEEP) } else { ("full", FULL_SWEEP) };
    let mut points = Vec::new();
    for (servers, steps) in sweep {
        let point = measure_fleet_size(servers, steps);
        print_point(&point);
        points.push(point);
    }
    let doc = bench_report_json(mode, &points);
    validate_bench_json(&doc).expect("bench report must validate");
    std::fs::write(ARTIFACT, &doc).expect("BENCH_fleet.json must be writable");
    println!("wrote {ARTIFACT} ({mode} mode)");
    // The artifact is written first so a failed gate still leaves the
    // numbers on disk for diagnosis.
    check_server_plane_gate(&doc).expect("full-mode sweep must hold the server-plane gate");
    check_metering_overhead_gate(&doc).expect("full-mode sweep must hold the metering gate");
}
