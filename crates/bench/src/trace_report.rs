//! Post-hoc analysis of a flight-recorder trace (`heracles-trace/v1`
//! JSONL, as written by `fleet_scale --trace`).
//!
//! The reader is a hand-rolled line scanner over the schema's fixed
//! rendering — `{"t":...,"scope":"...","kind":"...",...}` with keys in
//! emission order — so the bench crate needs no JSON dependency.  It
//! produces three views:
//!
//! * **placement outcomes** — dispatch rounds, jobs placed vs unplaced,
//!   batched-plan usage, per placement policy (the trace header names the
//!   policy the run used),
//! * **violation attribution** — every SLO-violation server-step keyed by
//!   its `(service, generation, balancer-decision)` cause; the parse fails
//!   loudly if any violation line is missing one of the three, so an
//!   attributed report always covers 100% of violations,
//! * **wake attribution** — on event-driven-core traces, every woken
//!   leaf-step keyed by its wake-reason combination; the parse fails if a
//!   wake event carries no reason, or (on lossless traces) if a step
//!   reports more woken leaves than it has wake events — a leaf that
//!   stepped with no recorded reason is an attribution hole, not noise,
//! * **autoscale timeline** — buy/drain/migrate/requeue/retire actions in
//!   simulated-time order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use heracles_fleet::Generation;
use heracles_telemetry::validate_trace_jsonl;

/// Extracts the raw JSON value of `key` from one rendered trace line.
///
/// The scanner relies on the writer's canonical rendering (no whitespace,
/// keys emitted once); it is not a general JSON parser.
pub fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => return Some(&stripped[..i]),
                _ => escaped = false,
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

/// The string value of `key`, unescaped for every escape the writer emits
/// (`\"`, `\\`, `\n`, `\r`, `\t` and `\uXXXX` control characters), so a
/// parsed field is byte-identical to the string the emitter passed in.
pub fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(u) => out.push(u),
                    None => {
                        out.push_str("\\u");
                        out.push_str(&hex);
                    }
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    Some(out)
}

/// The numeric value of `key` as f64.
pub fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

/// The numeric value of `key` as u64 (floats with a zero fraction accepted).
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let raw = field_raw(line, key)?;
    raw.parse::<u64>().ok().or_else(|| {
        let f: f64 = raw.parse().ok()?;
        (f >= 0.0 && f.fract() == 0.0).then_some(f as u64)
    })
}

/// One violation cause: the service the server ran, its hardware
/// generation, and what the balancer did to it on the violating step.
pub type ViolationKey = (String, String, String);

/// Everything the report extracts from one trace document.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Run metadata from the header line (policy, balancer, seed, ...),
    /// in rendered order.
    pub header: Vec<(String, String)>,
    /// Events retained / dropped by the flight recorder.
    pub events: u64,
    /// Events the bounded ring evicted before the run ended.
    pub dropped: u64,
    /// Dispatch rounds observed (one per step with pending jobs).
    pub dispatch_rounds: u64,
    /// Rounds that used a batched placement plan.
    pub batched_rounds: u64,
    /// Jobs placed, total.
    pub placed: u64,
    /// Jobs that no server admitted, total.
    pub unplaced: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs preempted.
    pub preempted: u64,
    /// SLO-violation server-steps by (service, generation, balancer
    /// decision) — sums to every `violation` line in the trace.
    pub violations: BTreeMap<ViolationKey, u64>,
    /// Balancer divert verdicts (shed / absorbed) by (service, verdict).
    pub diverts: BTreeMap<(String, String), u64>,
    /// Worst routing imbalance any conservation check saw.
    pub max_imbalance: f64,
    /// Per-server controller decision counts by kind (core scope).
    pub core_decisions: BTreeMap<String, u64>,
    /// Admission verdict flips recorded by the store.
    pub admission_flips: u64,
    /// Woken leaf-steps by wake-reason combination (event-driven core
    /// traces only) — sums to every `wake` line in the trace.
    pub wakes: BTreeMap<String, u64>,
    /// Woken leaf-steps reported by `step` events carrying the
    /// event-driven core's woken/quiescent split.
    pub woken_leaf_steps: u64,
    /// Quiescent leaf-steps reported by the same `step` events.
    pub quiescent_leaf_steps: u64,
    /// Steps whose `step` event carried the woken/quiescent split (zero on
    /// stepped-core traces, which record no wake machinery at all).
    pub event_core_steps: u64,
    /// Autoscale / fleet lifecycle actions in simulated-time order, as
    /// `(time_s, description)` rows.
    pub timeline: Vec<(f64, String)>,
    /// Health-plane alert transitions in simulated-time order, as
    /// `(time_s, description)` rows.
    pub alerts: Vec<(f64, String)>,
    /// `alert.firing` events by alert kind.
    pub alerts_fired: BTreeMap<String, u64>,
    /// `alert.resolved` events by alert kind.
    pub alerts_resolved: BTreeMap<String, u64>,
    /// Per-service attainment sums from `health`/`attainment` events:
    /// `(violating leaf-steps, total leaf-steps)`.
    pub attainment: BTreeMap<String, (u64, u64)>,
}

impl TraceReport {
    /// Parses a trace document, validating it against the schema first.
    ///
    /// Fails if the document is not schema-valid, or if any `violation`
    /// event lacks one of its three attribution fields — a report that
    /// silently dropped causes would defeat its purpose.
    pub fn from_jsonl(doc: &str) -> Result<TraceReport, String> {
        validate_trace_jsonl(doc)?;
        let mut lines = doc.lines();
        let header_line = lines.next().ok_or("empty trace document")?;
        let mut report = TraceReport {
            events: field_u64(header_line, "events").unwrap_or(0),
            dropped: field_u64(header_line, "dropped").unwrap_or(0),
            ..TraceReport::default()
        };
        for key in ["policy", "balancer", "autoscaler", "seed", "servers", "steps", "health"] {
            if let Some(value) = field_str(header_line, key) {
                report.header.push((key.to_string(), value));
            }
        }

        // Wake events since the last `step` line, for the per-step
        // attribution cross-check.
        let mut pending_wakes: u64 = 0;
        for (idx, line) in lines.enumerate() {
            let t = field_f64(line, "t").unwrap_or(0.0);
            let scope = field_str(line, "scope").unwrap_or_default();
            let kind = field_str(line, "kind").unwrap_or_default();
            match (scope.as_str(), kind.as_str()) {
                ("fleet", "wake") => {
                    let reasons = field_str(line, "reasons").unwrap_or_default();
                    if reasons.is_empty() {
                        return Err(format!(
                            "wake event {} has no recorded reason: {line}",
                            idx + 2
                        ));
                    }
                    *report.wakes.entry(reasons).or_insert(0) += 1;
                    pending_wakes += 1;
                }
                ("fleet", "step") => {
                    if let Some(woken) = field_u64(line, "woken") {
                        report.event_core_steps += 1;
                        report.woken_leaf_steps += woken;
                        report.quiescent_leaf_steps += field_u64(line, "quiescent").unwrap_or(0);
                        // Each woken leaf emits exactly one wake line, so on
                        // a lossless trace the counts must line up; a step
                        // that woke more leaves than it attributed stepped a
                        // leaf with no recorded reason.
                        if report.dropped == 0 && pending_wakes != woken {
                            return Err(format!(
                                "step event {} woke {woken} leaves but recorded {pending_wakes} \
                                 wake reasons: {line}",
                                idx + 2
                            ));
                        }
                    }
                    pending_wakes = 0;
                }
                ("fleet", "dispatch_round") => {
                    report.dispatch_rounds += 1;
                    if field_raw(line, "batched").map(|b| b == "true").unwrap_or(false) {
                        report.batched_rounds += 1;
                    }
                }
                ("fleet", "place") => report.placed += 1,
                ("fleet", "unplaced") => report.unplaced += 1,
                ("fleet", "complete") => report.completed += 1,
                ("fleet", "preempt") => report.preempted += 1,
                ("fleet", "violation") => {
                    let service = field_str(line, "service");
                    let generation = field_u64(line, "generation")
                        .and_then(|g| Generation::all().get(g as usize).copied())
                        .map(|g| g.name().to_string());
                    let balancer = field_str(line, "balancer");
                    match (service, generation, balancer) {
                        (Some(s), Some(g), Some(b)) => {
                            *report.violations.entry((s, g, b)).or_insert(0) += 1;
                        }
                        _ => {
                            return Err(format!(
                                "violation event {} lacks (service, generation, balancer) \
                                 attribution: {line}",
                                idx + 2
                            ));
                        }
                    }
                }
                ("fleet", "migrate") => {
                    let (job, from, to) = (
                        field_u64(line, "job").unwrap_or(0),
                        field_u64(line, "from").unwrap_or(0),
                        field_u64(line, "to").unwrap_or(0),
                    );
                    report.timeline.push((t, format!("migrate job {job}: {from} -> {to}")));
                }
                ("fleet", "requeue") => {
                    let job = field_u64(line, "job").unwrap_or(0);
                    report.timeline.push((t, format!("requeue job {job}")));
                }
                ("traffic", "divert") => {
                    let service = field_str(line, "service").unwrap_or_default();
                    let verdict = field_str(line, "verdict").unwrap_or_default();
                    *report.diverts.entry((service, verdict)).or_insert(0) += 1;
                }
                ("traffic", "conservation") => {
                    if let Some(m) = field_f64(line, "max_imbalance") {
                        report.max_imbalance = report.max_imbalance.max(m);
                    }
                }
                ("core", _) => {
                    *report.core_decisions.entry(kind.clone()).or_insert(0) += 1;
                }
                ("store", "admission") => report.admission_flips += 1,
                ("store", "server_added") => {
                    let server = field_u64(line, "server").unwrap_or(0);
                    let gen = field_str(line, "generation")
                        .or_else(|| field_u64(line, "generation").map(|g| g.to_string()))
                        .unwrap_or_default();
                    report.timeline.push((t, format!("commission server {server} (gen {gen})")));
                }
                ("store", "drain_started") => {
                    let server = field_u64(line, "server").unwrap_or(0);
                    report.timeline.push((t, format!("drain server {server}")));
                }
                ("store", "retired") => {
                    let server = field_u64(line, "server").unwrap_or(0);
                    report.timeline.push((t, format!("retire server {server}")));
                }
                ("store", "reactivated") => {
                    let server = field_u64(line, "server").unwrap_or(0);
                    report.timeline.push((t, format!("reactivate server {server}")));
                }
                ("autoscale", "buy") => {
                    let gen = field_str(line, "generation").unwrap_or_default();
                    let server = field_u64(line, "server").unwrap_or(0);
                    report.timeline.push((t, format!("buy {gen} -> server {server}")));
                }
                ("autoscale", "drain") => {
                    let server = field_u64(line, "server").unwrap_or(0);
                    report.timeline.push((t, format!("scale-in: drain server {server}")));
                }
                ("alert", "firing") => {
                    let alert = field_str(line, "alert").unwrap_or_default();
                    let fast = field_f64(line, "fast").unwrap_or(0.0);
                    let slow = field_f64(line, "slow").unwrap_or(0.0);
                    *report.alerts_fired.entry(alert.clone()).or_insert(0) += 1;
                    report
                        .alerts
                        .push((t, format!("FIRING  {alert} (fast {fast:.3}, slow {slow:.3})")));
                }
                ("alert", "resolved") => {
                    let alert = field_str(line, "alert").unwrap_or_default();
                    let for_steps = field_u64(line, "for_steps").unwrap_or(0);
                    *report.alerts_resolved.entry(alert.clone()).or_insert(0) += 1;
                    report.alerts.push((t, format!("resolved {alert} (after {for_steps} steps)")));
                }
                ("health", "attainment") => {
                    let service = field_str(line, "service").unwrap_or_default();
                    let violating = field_u64(line, "violating").unwrap_or(0);
                    let leaves = field_u64(line, "leaves").unwrap_or(0);
                    let entry = report.attainment.entry(service).or_insert((0, 0));
                    entry.0 += violating;
                    entry.1 += leaves;
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// Total attributed SLO-violation server-steps.
    pub fn violation_total(&self) -> u64 {
        self.violations.values().sum()
    }

    /// True when the flight recorder evicted events before the run ended:
    /// every counting section of the report is then a lower bound over the
    /// *retained* suffix of the run, not a total.
    pub fn is_partial(&self) -> bool {
        self.dropped > 0
    }

    /// ` [PARTIAL]` marker for section headings when the trace is lossy.
    fn partial_marker(&self) -> &'static str {
        if self.is_partial() {
            " [PARTIAL]"
        } else {
            ""
        }
    }

    /// Renders the report as the text document the bin prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "flight-recorder trace report");
        for (key, value) in &self.header {
            let _ = writeln!(out, "  {key}: {value}");
        }
        let _ = writeln!(out, "  events: {} retained, {} dropped", self.events, self.dropped);
        if self.is_partial() {
            let _ = writeln!(
                out,
                "\n  WARNING: the flight recorder dropped {} events (ring capacity exceeded).\n  \
                 Sections marked [PARTIAL] count only the retained suffix of the run;\n  \
                 their totals are lower bounds.  Re-run with a larger --recorder-capacity\n  \
                 for a lossless trace.",
                self.dropped
            );
        }

        let _ = writeln!(out, "\nplacement outcomes{}", self.partial_marker());
        let _ = writeln!(
            out,
            "  dispatch rounds: {} ({} used a batched plan)",
            self.dispatch_rounds, self.batched_rounds
        );
        let _ = writeln!(
            out,
            "  jobs: {} placed, {} unplaced, {} completed, {} preempted",
            self.placed, self.unplaced, self.completed, self.preempted
        );
        let _ = writeln!(out, "  admission verdict flips: {}", self.admission_flips);

        if self.is_partial() {
            let _ = writeln!(
                out,
                "\nviolation attribution ({} server-steps retained) [PARTIAL]",
                self.violation_total()
            );
        } else {
            let _ = writeln!(
                out,
                "\nviolation attribution ({} server-steps, 100% attributed)",
                self.violation_total()
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "  (no SLO violations recorded)");
        }
        for ((service, generation, balancer), count) in &self.violations {
            let _ = writeln!(
                out,
                "  {count:>6}  service {service:<12} generation {generation:<12} balancer {balancer}"
            );
        }

        let _ = writeln!(out, "\ntraffic plane");
        let _ = writeln!(out, "  max routing imbalance: {:.2e}", self.max_imbalance);
        for ((service, verdict), count) in &self.diverts {
            let _ = writeln!(out, "  {count:>6}  {service} leaves {verdict}");
        }

        if !self.core_decisions.is_empty() {
            let _ = writeln!(out, "\nper-server controller decisions");
            for (kind, count) in &self.core_decisions {
                let _ = writeln!(out, "  {count:>6}  {kind}");
            }
        }

        if self.event_core_steps > 0 {
            let total = self.woken_leaf_steps + self.quiescent_leaf_steps;
            let pct =
                if total > 0 { 100.0 * self.woken_leaf_steps as f64 / total as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "\nwake attribution ({} woken / {} quiescent leaf-steps, {:.1}% woken){}",
                self.woken_leaf_steps,
                self.quiescent_leaf_steps,
                pct,
                self.partial_marker()
            );
            for (reasons, count) in &self.wakes {
                let _ = writeln!(out, "  {count:>6}  {reasons}");
            }
        }

        let health_on = self.header.iter().any(|(k, v)| k == "health" && v == "on");
        if health_on || !self.alerts.is_empty() || !self.attainment.is_empty() {
            let fired: u64 = self.alerts_fired.values().sum();
            let resolved: u64 = self.alerts_resolved.values().sum();
            let _ = writeln!(
                out,
                "\nhealth alerts ({fired} fired, {resolved} resolved){}",
                self.partial_marker()
            );
            if self.alerts.is_empty() {
                let _ = writeln!(out, "  (no alert transitions recorded)");
            }
            for (t, what) in &self.alerts {
                let _ = writeln!(out, "  t={t:>10.1}s  {what}");
            }
            if !self.attainment.is_empty() {
                let _ = writeln!(
                    out,
                    "\nslo attainment (leaf-step aggregate){}",
                    self.partial_marker()
                );
                for (service, &(violating, leaves)) in &self.attainment {
                    let pct = if leaves > 0 {
                        100.0 * (1.0 - violating as f64 / leaves as f64)
                    } else {
                        100.0
                    };
                    let _ = writeln!(
                        out,
                        "  {service:<12} {pct:>6.2}%  ({violating} violating of {leaves} leaf-steps)"
                    );
                }
            }
        }

        let _ = writeln!(out, "\nautoscale / lifecycle timeline ({} actions)", self.timeline.len());
        for (t, what) in &self.timeline {
            let _ = writeln!(out, "  t={t:>10.1}s  {what}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_fleet::{FleetConfig, FleetSim, PolicyKind, SimCore, TelemetryConfig};
    use heracles_hw::ServerConfig;

    #[test]
    fn field_scanners_handle_strings_numbers_and_escapes() {
        let line = r#"{"t":12.500000,"scope":"fleet","kind":"violation","service":"a\"b","generation":1,"load":0.750000}"#;
        assert_eq!(field_f64(line, "t"), Some(12.5));
        assert_eq!(field_str(line, "scope").as_deref(), Some("fleet"));
        assert_eq!(field_str(line, "service").as_deref(), Some("a\"b"));
        assert_eq!(field_u64(line, "generation"), Some(1));
        assert_eq!(field_f64(line, "load"), Some(0.75));
        assert_eq!(field_raw(line, "missing"), None);
    }

    #[test]
    fn report_attributes_every_violation_of_a_real_run() {
        let cfg = FleetConfig { telemetry: TelemetryConfig::enabled(), ..FleetConfig::fast_test() };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        for _ in 0..cfg.steps {
            sim.step_once();
        }
        let telemetry = sim.take_telemetry().expect("telemetry on");
        let violations_in_trace =
            telemetry.recorder.iter().filter(|e| e.kind() == "violation").count() as u64;
        let doc = telemetry.trace_jsonl(&[("policy", "least-loaded".to_string())]);

        let report = TraceReport::from_jsonl(&doc).expect("trace parses");
        assert_eq!(report.violation_total(), violations_in_trace);
        assert!(report.placed + report.unplaced > 0, "no dispatch outcomes parsed");
        assert!(report.header.iter().any(|(k, v)| k == "policy" && v == "least-loaded"));
        let rendered = report.render();
        assert!(rendered.contains("100% attributed"));
        assert!(rendered.contains("placement outcomes"));
    }

    #[test]
    fn unattributed_violations_fail_the_parse() {
        let doc = "{\"schema\":\"heracles-trace/v1\",\"events\":1,\"dropped\":0}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"violation\",\"server\":3}\n";
        let err = TraceReport::from_jsonl(doc).unwrap_err();
        assert!(err.contains("attribution"), "{err}");
    }

    #[test]
    fn report_attributes_every_wake_of_an_event_core_run() {
        let cfg = FleetConfig {
            telemetry: TelemetryConfig::enabled(),
            sim_core: SimCore::EventDriven,
            ..FleetConfig::fast_test()
        };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        for _ in 0..cfg.steps {
            sim.step_once();
        }
        let telemetry = sim.take_telemetry().expect("telemetry on");
        let woken = telemetry.metrics.counter("fleet.woken_leaf_steps");
        let quiescent = telemetry.metrics.counter("fleet.quiescent_leaf_steps");
        let doc = telemetry.trace_jsonl(&[("policy", "least-loaded".to_string())]);

        let report = TraceReport::from_jsonl(&doc).expect("trace parses");
        assert_eq!(report.event_core_steps, cfg.steps as u64);
        assert_eq!(report.woken_leaf_steps, woken);
        assert_eq!(report.quiescent_leaf_steps, quiescent);
        assert_eq!(report.wakes.values().sum::<u64>(), woken);
        assert!(!report.wakes.is_empty(), "an active fleet must wake some leaves");
        let rendered = report.render();
        assert!(rendered.contains("wake attribution"), "{rendered}");
    }

    #[test]
    fn stepped_core_traces_skip_the_wake_section() {
        let cfg = FleetConfig { telemetry: TelemetryConfig::enabled(), ..FleetConfig::fast_test() };
        let mut sim = FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        for _ in 0..cfg.steps {
            sim.step_once();
        }
        let telemetry = sim.take_telemetry().expect("telemetry on");
        let doc = telemetry.trace_jsonl(&[]);
        let report = TraceReport::from_jsonl(&doc).expect("stepped trace parses");
        assert_eq!(report.event_core_steps, 0);
        assert!(!report.render().contains("wake attribution"));
    }

    #[test]
    fn reasonless_wakes_fail_the_parse() {
        let doc = "{\"schema\":\"heracles-trace/v1\",\"events\":2,\"dropped\":0}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"wake\",\"server\":3}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"step\",\"woken\":1,\"quiescent\":7}\n";
        let err = TraceReport::from_jsonl(doc).unwrap_err();
        assert!(err.contains("no recorded reason"), "{err}");
    }

    #[test]
    fn lossy_traces_render_as_explicitly_partial() {
        let doc = "{\"schema\":\"heracles-trace/v1\",\"events\":1,\"dropped\":42}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"step\",\"step\":0}\n";
        let report = TraceReport::from_jsonl(doc).expect("lossy trace still parses");
        assert!(report.is_partial());
        let rendered = report.render();
        assert!(rendered.contains("WARNING: the flight recorder dropped 42 events"), "{rendered}");
        assert!(rendered.contains("[PARTIAL]"), "{rendered}");
        assert!(!rendered.contains("100% attributed"), "{rendered}");
    }

    #[test]
    fn lossless_traces_do_not_claim_partiality() {
        let doc = "{\"schema\":\"heracles-trace/v1\",\"events\":1,\"dropped\":0}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"step\",\"step\":0}\n";
        let report = TraceReport::from_jsonl(doc).expect("trace parses");
        assert!(!report.is_partial());
        let rendered = report.render();
        assert!(!rendered.contains("[PARTIAL]"), "{rendered}");
        assert!(rendered.contains("100% attributed"), "{rendered}");
    }

    #[test]
    fn alert_and_attainment_events_populate_the_health_section() {
        let doc = "{\"schema\":\"heracles-trace/v1\",\"events\":4,\"dropped\":0,\"health\":\"on\"}\n\
                   {\"t\":1.000000,\"scope\":\"health\",\"kind\":\"attainment\",\"service\":\"websearch\",\"leaves\":4,\"violating\":1,\"attainment\":0.750000}\n\
                   {\"t\":2.000000,\"scope\":\"alert\",\"kind\":\"firing\",\"alert\":\"slo-burn\",\"cause\":\"x\",\"fast\":0.500000,\"slow\":0.300000}\n\
                   {\"t\":3.000000,\"scope\":\"health\",\"kind\":\"attainment\",\"service\":\"websearch\",\"leaves\":4,\"violating\":0,\"attainment\":1.000000}\n\
                   {\"t\":4.000000,\"scope\":\"alert\",\"kind\":\"resolved\",\"alert\":\"slo-burn\",\"cause\":\"x\",\"fast\":0.000000,\"for_steps\":2}\n";
        let report = TraceReport::from_jsonl(doc).expect("trace parses");
        assert_eq!(report.alerts_fired.get("slo-burn"), Some(&1));
        assert_eq!(report.alerts_resolved.get("slo-burn"), Some(&1));
        assert_eq!(report.attainment.get("websearch"), Some(&(1, 8)));
        let rendered = report.render();
        assert!(rendered.contains("health alerts (1 fired, 1 resolved)"), "{rendered}");
        assert!(rendered.contains("FIRING  slo-burn"), "{rendered}");
        assert!(rendered.contains("slo attainment"), "{rendered}");
        assert!(rendered.contains("87.50%"), "{rendered}");
    }

    #[test]
    fn field_str_recovers_every_writer_escape() {
        let line =
            "{\"t\":1.000000,\"scope\":\"x\",\"kind\":\"y\",\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}";
        assert_eq!(field_str(line, "s").as_deref(), Some("a\"b\\c\nd\te\u{1}f"));
    }

    #[test]
    fn steps_with_unattributed_woken_leaves_fail_the_parse() {
        let doc = "{\"schema\":\"heracles-trace/v1\",\"events\":2,\"dropped\":0}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"wake\",\"server\":3,\"reasons\":\"load_delta\"}\n\
                   {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"step\",\"woken\":2,\"quiescent\":6}\n";
        let err = TraceReport::from_jsonl(doc).unwrap_err();
        assert!(err.contains("wake reasons"), "{err}");
    }
}
