//! The fleet triage report behind the `fleet_doctor` binary.
//!
//! A doctor report answers "is this fleet healthy, and if not, where does
//! it hurt?" from the health plane's own artifacts.  It renders four
//! sections:
//!
//! * **SLO attainment by service** — the per-step `health`/`attainment`
//!   series as a sparkline per service, with mean and worst-step
//!   attainment,
//! * **alert timeline** — every `alert`/`firing` and `alert`/`resolved`
//!   transition the burn-rate engine emitted, in simulated-time order,
//! * **unhealthiest leaves** — the health plane's top-k leaves ranked by
//!   latency-sketch p99, from the end-of-run `health`/`leaf` summary,
//! * **sketch-vs-exact cross-check** — the per-step worst normalized
//!   latencies (available exactly, one per `fleet`/`step` event) replayed
//!   into a fresh [`QuantileSketch`] and compared against sorted
//!   exact quantiles; every estimate must land within the sketch's
//!   documented relative-error bound or the check (and the binary) fails.
//!   When a metrics document is present the `fleet.normalized_latency`
//!   histogram's interpolated quantiles are printed alongside as the
//!   coarser per-leaf view,
//! * **energy plane** (when the trace carries energy columns) — a
//!   per-generation package-watts sparkline, the top-k energy-hungriest
//!   leaves from the meter's end-of-run summary, and the
//!   joules-vs-∫watts conservation cross-check: each step's fleet joules
//!   must equal its per-generation watts decomposition integrated over
//!   the step, and (on a lossless trace) the meter's fleet ledger must
//!   equal the step column's sum.  A broken conservation identity fails
//!   the binary the same way a broken sketch bound does.
//!
//! The report reads either artifacts on disk (`--trace`, `--metrics`) or a
//! live run: [`live_report`] runs a fleet with the health plane enabled,
//! renders its artifacts in memory and feeds them through the *same*
//! parser, so the two modes cannot drift apart.
//!
//! Like `trace_report`, a lossy trace (recorder drops > 0) renders its
//! event-derived sections explicitly as `[PARTIAL]` rather than presenting
//! a truncated view as the whole story.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use heracles_fleet::{FleetConfig, FleetSim, PolicyKind, TelemetryConfig};
use heracles_hw::ServerConfig;
use heracles_telemetry::{
    validate_trace_jsonl, Histogram, QuantileSketch, HISTOGRAM_BUCKET_BOUNDS, RELATIVE_ERROR,
};

use crate::trace_report::{field_f64, field_raw, field_str, field_u64};

/// One row of the unhealthiest-leaves table (a parsed `health`/`leaf`
/// summary event).
#[derive(Debug, Clone, PartialEq)]
pub struct LeafHealth {
    /// Placement-store server id.
    pub leaf: u64,
    /// Leaf-steps the sketches observed.
    pub count: u64,
    /// Median worst normalized window latency.
    pub lat_p50: f64,
    /// p99 worst normalized window latency — the ranking key.
    pub lat_p99: f64,
    /// p95 of full (not fast-forwarded) windows per step.
    pub wakes_p95: f64,
}

/// One quantile of the sketch-vs-exact cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileCheck {
    /// Display label ("p50", "p95", "p99").
    pub label: &'static str,
    /// The exact nearest-rank quantile from the sorted stream.
    pub exact: f64,
    /// The sketch's estimate for the same rank.
    pub sketch: f64,
    /// The matching interpolated quantile of the per-leaf
    /// `fleet.normalized_latency` histogram, when a metrics document was
    /// available.
    pub histogram: Option<f64>,
}

impl QuantileCheck {
    /// Relative error of the sketch estimate against the exact quantile.
    pub fn relative_error(&self) -> f64 {
        if self.exact == 0.0 {
            self.sketch.abs()
        } else {
            (self.sketch - self.exact).abs() / self.exact.abs()
        }
    }

    /// Whether the estimate honors the sketch's documented bound.
    pub fn ok(&self) -> bool {
        // A hair of slack over RELATIVE_ERROR covers the float rounding in
        // the bucket-index/representative round trip at bucket edges.
        self.relative_error() <= RELATIVE_ERROR * 1.01 + 1e-12
    }
}

/// Everything `fleet_doctor` parses out of one run's artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DoctorReport {
    /// Where the artifacts came from ("trace artifacts" or "live run").
    pub source: String,
    /// Selected run metadata from the trace header, in display order.
    pub header: Vec<(String, String)>,
    /// Events the flight recorder evicted — nonzero makes event-derived
    /// sections `[PARTIAL]`.
    pub dropped: u64,
    /// Events retained in the trace.
    pub events: u64,
    /// Per-service SLO attainment series, time-ordered (one sample per
    /// step the service had in-service leaves).
    pub attainment: BTreeMap<String, Vec<f64>>,
    /// Alert transitions as `(sim seconds, rendered row)`.
    pub alerts: Vec<(f64, String)>,
    /// `alert`/`firing` transitions seen.
    pub alerts_fired: u64,
    /// `alert`/`resolved` transitions seen.
    pub alerts_resolved: u64,
    /// Top-k unhealthiest leaves from the latest `health`/`leaf` summary.
    pub leaves: Vec<LeafHealth>,
    /// Worst normalized latency per `fleet`/`step` event, in step order —
    /// the exactly-known stream the cross-check replays.
    pub step_latencies: Vec<f64>,
    /// The `fleet.normalized_latency` histogram from the metrics document.
    pub histogram: Option<Histogram>,
    /// Fleet joules per `fleet`/`step` event carrying energy columns, in
    /// step order.
    pub step_energy_j: Vec<f64>,
    /// Per-generation package watts per step event (same order and length
    /// as [`step_energy_j`](Self::step_energy_j)), indexed by generation.
    pub gen_watts: [Vec<f64>; 3],
    /// Sim timestamps of the energy-carrying step events (the ∫watts·dt
    /// step width is their common difference).
    pub step_times: Vec<f64>,
    /// Represented seconds each energy-carrying step averaged its watts
    /// over (`step_represented_s`), when the trace carries it: a
    /// time-compressed run's watts integrate over represented time, not
    /// over the raw sim timestamps.
    pub step_dt_s: Vec<f64>,
    /// The meter's end-of-run fleet ledger from the `energy`/`summary`
    /// event: (joules, dollars, conservation residual in joules).
    pub energy_summary: Option<(f64, f64, f64)>,
    /// Top-k energy-hungriest leaves from the latest `energy`/`top_leaf`
    /// snapshot: (server id, joules, dollars).
    pub energy_leaves: Vec<(u64, f64, f64)>,
}

/// The joules-vs-∫watts conservation cross-check of the energy section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConservation {
    /// Worst per-step relative error between the fleet joules column and
    /// the per-generation watts decomposition integrated over the step.
    pub worst_step_rel_err: f64,
    /// Relative error between the meter's end-of-run fleet joules and the
    /// sum of the step column — `None` on a partial trace (evicted steps
    /// make the sum a suffix) or when no meter summary was emitted.
    pub meter_rel_err: Option<f64>,
    /// The meter's own fleet-vs-pools-vs-leaves residual, in joules,
    /// relative to the fleet total.
    pub ledger_residual_rel: Option<f64>,
}

impl EnergyConservation {
    /// The identities are exact up to float summation order and the trace's
    /// six-decimal field rounding; anything past this bound is a real
    /// conservation break.
    pub const BOUND: f64 = 1e-6;

    /// Whether every available identity holds within [`BOUND`](Self::BOUND).
    pub fn ok(&self) -> bool {
        self.worst_step_rel_err <= Self::BOUND
            && self.meter_rel_err.is_none_or(|e| e <= Self::BOUND)
            && self.ledger_residual_rel.is_none_or(|e| e <= Self::BOUND)
    }
}

impl DoctorReport {
    /// Parses a report from a trace document and an optional metrics
    /// document (both as written by `fleet_scale --trace/--metrics`).
    pub fn from_artifacts(trace: &str, metrics: Option<&str>) -> Result<DoctorReport, String> {
        validate_trace_jsonl(trace)?;
        let mut report = DoctorReport { source: "trace artifacts".into(), ..Default::default() };
        let mut lines = trace.lines();
        let header = lines.next().ok_or("empty trace document")?;
        report.dropped = field_u64(header, "dropped").ok_or("header lacks \"dropped\"")?;
        report.events = field_u64(header, "events").ok_or("header lacks \"events\"")?;
        for key in ["policy", "balancer", "autoscaler", "seed", "servers", "steps", "health"] {
            if let Some(value) = field_str(header, key) {
                report.header.push((key.to_string(), value));
            }
        }

        // The end-of-run summaries may be emitted more than once on resumed
        // runs; keep only the latest snapshot's leaf rows.
        let mut leaf_rows: Vec<(f64, LeafHealth)> = Vec::new();
        let mut energy_leaf_rows: Vec<(f64, (u64, f64, f64))> = Vec::new();
        for line in lines {
            let (Some(scope), Some(kind)) = (field_raw(line, "scope"), field_raw(line, "kind"))
            else {
                return Err(format!("trace line lacks scope/kind: {line}"));
            };
            let t = field_f64(line, "t").ok_or_else(|| format!("trace line lacks t: {line}"))?;
            match (scope, kind) {
                ("health", "attainment") => {
                    let service = field_str(line, "service")
                        .ok_or_else(|| format!("attainment event lacks service: {line}"))?;
                    let value = field_f64(line, "attainment")
                        .ok_or_else(|| format!("attainment event lacks attainment: {line}"))?;
                    report.attainment.entry(service).or_default().push(value);
                }
                ("alert", "firing") => {
                    report.alerts_fired += 1;
                    let alert = field_str(line, "alert").unwrap_or_default();
                    let cause = field_str(line, "cause").unwrap_or_default();
                    let fast = field_f64(line, "fast").unwrap_or(f64::NAN);
                    let slow = field_f64(line, "slow").unwrap_or(f64::NAN);
                    report.alerts.push((
                        t,
                        format!("FIRING   {alert} (fast {fast:.3}, slow {slow:.3}) — {cause}"),
                    ));
                }
                ("alert", "resolved") => {
                    report.alerts_resolved += 1;
                    let alert = field_str(line, "alert").unwrap_or_default();
                    let for_steps = field_u64(line, "for_steps").unwrap_or(0);
                    report.alerts.push((t, format!("resolved {alert} (after {for_steps} steps)")));
                }
                ("health", "leaf") => {
                    leaf_rows.push((
                        t,
                        LeafHealth {
                            leaf: field_u64(line, "leaf")
                                .ok_or_else(|| format!("leaf event lacks leaf: {line}"))?,
                            count: field_u64(line, "count").unwrap_or(0),
                            lat_p50: field_f64(line, "lat_p50").unwrap_or(0.0),
                            lat_p99: field_f64(line, "lat_p99").unwrap_or(0.0),
                            wakes_p95: field_f64(line, "wakes_p95").unwrap_or(0.0),
                        },
                    ));
                }
                ("fleet", "step") => {
                    if let Some(worst) = field_f64(line, "worst_normalized_latency") {
                        report.step_latencies.push(worst);
                    }
                    // Energy columns arrive together or not at all (older
                    // traces predate them); only a complete set keeps the
                    // per-step series aligned.
                    if let (Some(joules), Some(sb), Some(hw), Some(sk)) = (
                        field_f64(line, "energy_joules"),
                        field_f64(line, "watts_sandy_bridge"),
                        field_f64(line, "watts_haswell"),
                        field_f64(line, "watts_skylake"),
                    ) {
                        report.step_energy_j.push(joules);
                        report.gen_watts[0].push(sb);
                        report.gen_watts[1].push(hw);
                        report.gen_watts[2].push(sk);
                        report.step_times.push(t);
                        if let Some(dt) = field_f64(line, "step_represented_s") {
                            report.step_dt_s.push(dt);
                        }
                    }
                }
                ("energy", "summary") => {
                    report.energy_summary = Some((
                        field_f64(line, "fleet_joules")
                            .ok_or_else(|| format!("energy summary lacks fleet_joules: {line}"))?,
                        field_f64(line, "fleet_dollars").unwrap_or(0.0),
                        field_f64(line, "conservation_error_j").unwrap_or(0.0),
                    ));
                }
                ("energy", "top_leaf") => {
                    energy_leaf_rows.push((
                        t,
                        (
                            field_u64(line, "server")
                                .ok_or_else(|| format!("top_leaf event lacks server: {line}"))?,
                            field_f64(line, "joules").unwrap_or(0.0),
                            field_f64(line, "dollars").unwrap_or(0.0),
                        ),
                    ));
                }
                _ => {}
            }
        }
        let latest = leaf_rows.iter().map(|(t, _)| *t).fold(f64::NEG_INFINITY, f64::max);
        report.leaves =
            leaf_rows.into_iter().filter(|(t, _)| *t == latest).map(|(_, l)| l).collect();
        let latest_energy =
            energy_leaf_rows.iter().map(|(t, _)| *t).fold(f64::NEG_INFINITY, f64::max);
        report.energy_leaves = energy_leaf_rows
            .into_iter()
            .filter(|(t, _)| *t == latest_energy)
            .map(|(_, l)| l)
            .collect();

        if let Some(doc) = metrics {
            report.histogram = parse_histogram(doc, "fleet.normalized_latency")?;
        }
        Ok(report)
    }

    /// Runs `config` under `policy` with the health plane enabled, renders
    /// the run's artifacts in memory and parses them through
    /// [`DoctorReport::from_artifacts`] — live mode exercises the exact
    /// artifact path, it is not a separate code path that can drift.
    pub fn live(
        config: FleetConfig,
        server: &ServerConfig,
        policy: PolicyKind,
    ) -> Result<DoctorReport, String> {
        let cfg = FleetConfig {
            telemetry: TelemetryConfig { enabled: true, health: true, ..config.telemetry },
            // Metering is a read-only shadow, so the live doctor always
            // turns it on: the energy section costs nothing but ledgers.
            energy: heracles_fleet::EnergyConfig { metering: true, ..config.energy },
            ..config
        };
        let mut sim = FleetSim::new(cfg, server.clone(), policy);
        for _ in 0..cfg.steps {
            sim.step_once();
        }
        sim.emit_health_summary();
        sim.emit_energy_summary();
        let telemetry = sim.take_telemetry().expect("telemetry was enabled");
        let header = [
            ("policy", policy.name().to_string()),
            ("balancer", cfg.balancer.name().to_string()),
            ("seed", cfg.seed.to_string()),
            ("servers", cfg.servers.to_string()),
            ("steps", cfg.steps.to_string()),
            ("health", "on".to_string()),
        ];
        let trace = telemetry.trace_jsonl(&header);
        let metrics = telemetry.metrics_json();
        let mut report = DoctorReport::from_artifacts(&trace, Some(&metrics))?;
        report.source = "live run".into();
        Ok(report)
    }

    /// True when the recorder evicted events and the event-derived
    /// sections therefore cover only a suffix of the run.
    pub fn is_partial(&self) -> bool {
        self.dropped > 0
    }

    fn partial_marker(&self) -> &'static str {
        if self.is_partial() {
            " [PARTIAL]"
        } else {
            ""
        }
    }

    /// The sketch-vs-exact cross-check rows for p50/p95/p99 of the
    /// per-step worst-latency stream.  Empty when the trace retained no
    /// step events.
    pub fn cross_checks(&self) -> Vec<QuantileCheck> {
        if self.step_latencies.is_empty() {
            return Vec::new();
        }
        let mut sketch = QuantileSketch::new();
        for &v in &self.step_latencies {
            sketch.observe(v);
        }
        let mut sorted = self.step_latencies.clone();
        sorted.sort_by(f64::total_cmp);
        [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)]
            .into_iter()
            .map(|(label, q)| {
                // The same nearest-rank definition the sketch documents.
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                QuantileCheck {
                    label,
                    exact: sorted[rank - 1],
                    sketch: sketch.quantile(q),
                    histogram: self.histogram.as_ref().map(|h| h.quantile(q)),
                }
            })
            .collect()
    }

    /// Whether every cross-check row honors the sketch's error bound.
    pub fn cross_checks_ok(&self) -> bool {
        self.cross_checks().iter().all(QuantileCheck::ok)
    }

    /// The energy-conservation cross-check, or `None` when the trace
    /// carries no energy columns.
    pub fn energy_conservation(&self) -> Option<EnergyConservation> {
        if self.step_energy_j.is_empty() {
            return None;
        }
        // Steps are uniform, so the step width is the common difference of
        // the step-event timestamps (a single retained step event sits at
        // the end of the run's first retained step).  Traces that carry
        // `step_represented_s` override this per step: a time-compressed
        // run's watts average over represented seconds, which the raw sim
        // timestamps undercount by the compression factor.
        let fallback_dt = if self.step_times.len() >= 2 {
            self.step_times[1] - self.step_times[0]
        } else {
            self.step_times[0]
        };
        let dt_at = |i: usize| {
            if self.step_dt_s.len() == self.step_energy_j.len() {
                self.step_dt_s[i]
            } else {
                fallback_dt
            }
        };
        let rel = |a: f64, b: f64| {
            if b.abs() > 0.0 {
                (a - b).abs() / b.abs()
            } else {
                a.abs()
            }
        };
        let worst_step_rel_err = (0..self.step_energy_j.len())
            .map(|i| {
                let integrated = self.gen_watts.iter().map(|w| w[i]).sum::<f64>() * dt_at(i);
                rel(integrated, self.step_energy_j[i])
            })
            .fold(0.0, f64::max);
        let meter_rel_err = match self.energy_summary {
            Some((joules, _, _)) if !self.is_partial() => {
                Some(rel(self.step_energy_j.iter().sum::<f64>(), joules))
            }
            _ => None,
        };
        let ledger_residual_rel =
            self.energy_summary.map(|(joules, _, residual)| rel(joules + residual, joules));
        Some(EnergyConservation { worst_step_rel_err, meter_rel_err, ledger_residual_rel })
    }

    /// Whether the energy section's conservation identities hold (trivially
    /// true when the trace has no energy columns).
    pub fn energy_ok(&self) -> bool {
        self.energy_conservation().is_none_or(|c| c.ok())
    }

    /// Renders the four-section triage report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fleet_doctor triage report ({})", self.source);
        let meta: Vec<String> = self.header.iter().map(|(k, v)| format!("{k} {v}")).collect();
        let _ = writeln!(out, "  {} events retained, {}", self.events, meta.join(", "));
        if self.is_partial() {
            let _ = writeln!(
                out,
                "\nWARNING: the flight recorder dropped {} events (ring capacity exceeded).\n\
                 Event-derived sections below are marked [PARTIAL]; re-run with a larger\n\
                 --recorder-capacity for a lossless report.",
                self.dropped
            );
        }

        let marker = self.partial_marker();
        let _ = writeln!(out, "\nslo attainment by service{marker}");
        if self.attainment.is_empty() {
            let _ = writeln!(
                out,
                "  (no attainment events in the trace — was the run traced with --health?)"
            );
        }
        for (service, series) in &self.attainment {
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            let worst = series.iter().copied().fold(f64::INFINITY, f64::min);
            let _ = writeln!(
                out,
                "  {service:<12} mean {:>6.2}%  worst-step {:>6.2}%  {}  ({} samples)",
                mean * 100.0,
                worst * 100.0,
                sparkline(series),
                series.len()
            );
        }

        let _ = writeln!(
            out,
            "\nalert timeline ({} fired, {} resolved){marker}",
            self.alerts_fired, self.alerts_resolved
        );
        if self.alerts.is_empty() {
            let _ = writeln!(out, "  (no alert transitions — every burn rate stayed in band)");
        }
        for (t, row) in &self.alerts {
            let _ = writeln!(out, "  t={t:>10.1}s  {row}");
        }

        let _ = writeln!(
            out,
            "\nunhealthiest leaves (top-{} by latency p99){marker}",
            self.leaves.len()
        );
        if self.leaves.is_empty() {
            let _ =
                writeln!(out, "  (no leaf summary in the trace — was emit_health_summary called?)");
        } else {
            let _ = writeln!(
                out,
                "  {:>6} {:>10} {:>9} {:>9} {:>10}",
                "leaf", "leaf-steps", "lat p50", "lat p99", "wakes p95"
            );
            for l in &self.leaves {
                let _ = writeln!(
                    out,
                    "  {:>6} {:>10} {:>9.3} {:>9.3} {:>10.1}",
                    l.leaf, l.count, l.lat_p50, l.lat_p99, l.wakes_p95
                );
            }
        }

        let checks = self.cross_checks();
        let _ = writeln!(
            out,
            "\nsketch-vs-exact cross-check (per-step worst normalized latency, {} steps){marker}",
            self.step_latencies.len()
        );
        if checks.is_empty() {
            let _ = writeln!(out, "  (no step events retained — nothing to cross-check)");
        } else {
            let _ = writeln!(
                out,
                "  {:>4} {:>10} {:>10} {:>8} {:>8}   verdict",
                "q", "exact", "sketch", "rel err", "bound"
            );
            for c in &checks {
                let _ = writeln!(
                    out,
                    "  {:>4} {:>10.4} {:>10.4} {:>7.3}% {:>7.1}%   {}",
                    c.label,
                    c.exact,
                    c.sketch,
                    c.relative_error() * 100.0,
                    RELATIVE_ERROR * 100.0,
                    if c.ok() { "ok" } else { "FAIL" }
                );
            }
            if let Some(h) = &self.histogram {
                let qs: Vec<String> = checks
                    .iter()
                    .filter_map(|c| c.histogram.map(|v| format!("{} {:.3}", c.label, v)))
                    .collect();
                let _ = writeln!(
                    out,
                    "  per-leaf histogram fleet.normalized_latency ({} obs): {}\n  \
                     (bucket-interpolated — error bounded by the 1-2-5 bucket width, not by {:.0}%)",
                    h.count,
                    qs.join(", "),
                    RELATIVE_ERROR * 100.0
                );
            }
        }

        let _ = writeln!(out, "\nenergy plane{marker}");
        match self.energy_conservation() {
            None => {
                let _ = writeln!(
                    out,
                    "  (no energy columns in the trace — run fleet_scale with --energy)"
                );
            }
            Some(conservation) => {
                if let Some((joules, dollars, residual)) = self.energy_summary {
                    let _ = writeln!(
                        out,
                        "  fleet energy: {:.2} MJ (${dollars:.2}), meter residual {residual:.3} J",
                        joules / 1e6
                    );
                }
                let _ = writeln!(out, "  package watts by generation:");
                for (name, series) in
                    ["sandy-bridge", "haswell", "skylake"].iter().zip(&self.gen_watts)
                {
                    let mean = series.iter().sum::<f64>() / series.len() as f64;
                    let _ =
                        writeln!(out, "    {name:<12} mean {mean:>8.0} W  {}", sparkline(series));
                }
                if !self.energy_leaves.is_empty() {
                    let _ = writeln!(
                        out,
                        "  energy-hungriest leaves (top-{}):",
                        self.energy_leaves.len()
                    );
                    let _ = writeln!(out, "    {:>6} {:>14} {:>10}", "leaf", "joules", "dollars");
                    for (leaf, joules, dollars) in &self.energy_leaves {
                        let _ = writeln!(out, "    {leaf:>6} {joules:>14.1} {dollars:>10.6}");
                    }
                }
                let meter_note = match conservation.meter_rel_err {
                    Some(e) => format!(", meter-vs-steps {e:.2e}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  joules-vs-∫watts cross-check: worst step rel err {:.2e}{meter_note} \
                     (bound {:.0e})   {}",
                    conservation.worst_step_rel_err,
                    EnergyConservation::BOUND,
                    if conservation.ok() { "ok" } else { "FAIL" }
                );
            }
        }
        out
    }
}

/// Renders a series as an 8-level sparkline, chunk-averaged down to at
/// most 60 glyphs, scaled to the series' own [min, max] (a flat series
/// renders mid-scale).
pub fn sparkline(series: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let chunks = series.len().min(60);
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (0..chunks)
        .map(|i| {
            let start = i * series.len() / chunks;
            let end = ((i + 1) * series.len() / chunks).max(start + 1);
            let mean = series[start..end].iter().sum::<f64>() / (end - start) as f64;
            if hi > lo {
                GLYPHS[(((mean - lo) / (hi - lo)) * 7.0).round() as usize]
            } else {
                GLYPHS[3]
            }
        })
        .collect()
}

/// Extracts the named histogram from a metrics JSON document (the
/// registry's one-line-per-histogram rendering), or `None` when the
/// document has no such histogram.
pub fn parse_histogram(doc: &str, id: &str) -> Result<Option<Histogram>, String> {
    let needle = format!("\"{id}\":");
    let Some(line) = doc.lines().find(|l| l.trim_start().starts_with(&needle)) else {
        return Ok(None);
    };
    let num = |key: &str| -> Result<f64, String> {
        let needle = format!("\"{key}\": ");
        let start = line.find(&needle).ok_or_else(|| format!("histogram {id} lacks \"{key}\""))?
            + needle.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().map_err(|e| format!("histogram {id} {key}: {e}"))
    };
    let count = num("count")? as u64;
    let open =
        line.find("\"buckets\": [").ok_or_else(|| format!("histogram {id} lacks buckets"))?
            + "\"buckets\": [".len();
    let close =
        line[open..].find(']').ok_or_else(|| format!("histogram {id} buckets unterminated"))?;
    let mut buckets = [0u64; HISTOGRAM_BUCKET_BOUNDS.len() + 1];
    let mut n = 0;
    for part in line[open..open + close].split(',') {
        if n >= buckets.len() {
            return Err(format!("histogram {id} has too many buckets"));
        }
        buckets[n] = part.trim().parse().map_err(|e| format!("histogram {id} bucket {n}: {e}"))?;
        n += 1;
    }
    if n != buckets.len() {
        return Err(format!("histogram {id} has {n} buckets, expected {}", buckets.len()));
    }
    Ok(Some(Histogram { count, sum: num("sum")?, min: num("min")?, max: num("max")?, buckets }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_colo::ColoConfig;
    use heracles_workloads::ServiceMix;

    fn doctor_config() -> FleetConfig {
        FleetConfig {
            servers: 4,
            steps: 16,
            windows_per_step: 2,
            services: ServiceMix::websearch_only(),
            colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
            ..FleetConfig::fast_test()
        }
    }

    #[test]
    fn live_report_covers_all_four_sections() {
        let report = DoctorReport::live(
            doctor_config(),
            &ServerConfig::default_haswell(),
            PolicyKind::LeastLoaded,
        )
        .expect("live run parses its own artifacts");
        assert_eq!(report.source, "live run");
        assert!(!report.attainment.is_empty(), "no attainment series");
        assert!(!report.leaves.is_empty(), "no leaf summary");
        assert_eq!(report.step_latencies.len(), 16);
        assert!(report.histogram.is_some(), "metrics histogram missing");
        let rendered = report.render();
        for section in [
            "slo attainment by service",
            "alert timeline",
            "unhealthiest leaves",
            "sketch-vs-exact cross-check",
        ] {
            assert!(rendered.contains(section), "missing section {section:?}:\n{rendered}");
        }
        assert!(!rendered.contains("[PARTIAL]"), "lossless run rendered partial");
    }

    #[test]
    fn cross_check_honors_the_sketch_bound_on_a_real_run() {
        let report = DoctorReport::live(
            doctor_config(),
            &ServerConfig::default_haswell(),
            PolicyKind::LeastLoaded,
        )
        .unwrap();
        let checks = report.cross_checks();
        assert_eq!(checks.len(), 3);
        for c in &checks {
            assert!(
                c.ok(),
                "{}: sketch {} vs exact {} (rel err {:.4}%)",
                c.label,
                c.sketch,
                c.exact,
                c.relative_error() * 100.0
            );
        }
        assert!(report.cross_checks_ok());
    }

    #[test]
    fn lossy_trace_marks_sections_partial() {
        let trace = "{\"schema\":\"heracles-trace/v1\",\"events\":1,\"dropped\":5,\"policy\":\"least-loaded\"}\n\
                     {\"t\":1.000000,\"scope\":\"fleet\",\"kind\":\"step\",\"step\":0,\"worst_normalized_latency\":0.900000}\n";
        let report = DoctorReport::from_artifacts(trace, None).unwrap();
        assert!(report.is_partial());
        let rendered = report.render();
        assert!(rendered.contains("WARNING: the flight recorder dropped 5 events"));
        assert!(rendered.contains("[PARTIAL]"));
    }

    #[test]
    fn histogram_round_trips_through_the_metrics_document() {
        let mut h = Histogram::default();
        for i in 1..=500 {
            h.observe(i as f64 * 0.01);
        }
        let mut m = heracles_telemetry::MetricsRegistry::new();
        for i in 1..=500 {
            m.observe("fleet.normalized_latency", i as f64 * 0.01);
        }
        let mut tel = heracles_telemetry::Telemetry::new(TelemetryConfig::enabled()).unwrap();
        tel.metrics = m;
        let doc = tel.metrics_json();
        let parsed = parse_histogram(&doc, "fleet.normalized_latency").unwrap().unwrap();
        assert_eq!(parsed.count, h.count);
        assert_eq!(parsed.buckets, h.buckets);
        assert!((parsed.quantile(0.95) - h.quantile(0.95)).abs() < 1e-9);
        assert_eq!(parse_histogram(&doc, "no.such.histogram").unwrap(), None);
    }

    #[test]
    fn sparkline_is_bounded_and_scaled() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]).chars().count(), 3);
        let long: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let s = sparkline(&long);
        assert_eq!(s.chars().count(), 60);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }
}
