//! Figure 4: tail latency of each LC workload colocated with each BE job
//! under Heracles, across the load range.  The paper's claim: no SLO
//! violations in any cell.
//!
//! Run with: `cargo run --release -p heracles-bench --bin fig4_latency_slo [--quick]`

use heracles_bench::{evaluation_loads, parallel_map, percent, print_load_header, print_row};
use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

/// Worst-case normalized latency over the steady-state half of a run.
fn steady_state_latency(
    lc: &LcWorkload,
    be: Option<&BeWorkload>,
    load: f64,
    server: &ServerConfig,
    colo: &ColoConfig,
    windows: usize,
) -> f64 {
    let policy: Box<dyn ColocationPolicy> = Box::new(Heracles::new(
        HeraclesConfig::default(),
        lc.slo(),
        OfflineDramModel::profile(lc, server),
    ));
    let mut runner = ColoRunner::new(server.clone(), lc.clone(), be.cloned(), policy, *colo);
    runner.run_steady(load, windows);
    runner.summary_of_last(windows / 2).worst_normalized_latency
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let server = ServerConfig::default_haswell();
    let colo = if quick { ColoConfig::fast_test() } else { ColoConfig::default() };
    let windows = if quick { 60 } else { 120 };
    let loads = if quick { vec![0.1, 0.3, 0.5, 0.7, 0.9] } else { evaluation_loads() };

    println!("Figure 4: LC tail latency under Heracles colocation (% of SLO, worst case in steady state)");
    println!();
    let mut violations = 0usize;
    let mut cells = 0usize;
    for lc in LcWorkload::all() {
        println!("{} with Heracles", lc.name());
        print_load_header("BE workload", &loads);
        // Baseline: the LC workload alone on the whole machine.
        let baseline = parallel_map(&loads, |&load| {
            steady_state_latency(&lc, None, load, &server, &colo, windows)
        });
        print_row("baseline", &baseline.iter().map(|&v| percent(v)).collect::<Vec<_>>());
        for be in BeWorkload::evaluation_set() {
            // The paper omits websearch/ml_cluster with iperf (they are
            // insensitive to network interference); we include them anyway.
            let results = parallel_map(&loads, |&load| {
                steady_state_latency(&lc, Some(&be), load, &server, &colo, windows)
            });
            cells += results.len();
            violations += results.iter().filter(|&&v| v > 1.0).count();
            print_row(be.name(), &results.iter().map(|&v| percent(v)).collect::<Vec<_>>());
        }
        println!();
    }
    println!(
        "SLO violations: {violations} of {cells} colocation cells ({:.1}%)",
        100.0 * violations as f64 / cells.max(1) as f64
    );
    println!("(paper: Figure 4 — no SLO violations at any load for any colocation.)");
}
