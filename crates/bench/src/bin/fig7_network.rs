//! Figure 7: egress network bandwidth of memkeyval colocated with the iperf
//! network antagonist under Heracles, across the load range.  The network
//! sub-controller must give memkeyval the bandwidth it needs (plus headroom)
//! and cap the BE flows at whatever is left.
//!
//! Run with: `cargo run --release -p heracles-bench --bin fig7_network [--quick]`

use heracles_bench::{parallel_map, print_load_header, print_row};
use heracles_colo::{ColoConfig, ColoRunner, ColoSummary};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn steady_state(
    load: f64,
    be: Option<&BeWorkload>,
    server: &ServerConfig,
    colo: &ColoConfig,
    windows: usize,
) -> ColoSummary {
    let kv = LcWorkload::memkeyval();
    let policy: Box<dyn ColocationPolicy> = Box::new(Heracles::new(
        HeraclesConfig::default(),
        kv.slo(),
        OfflineDramModel::profile(&kv, server),
    ));
    let mut runner = ColoRunner::new(server.clone(), kv, be.cloned(), policy, *colo);
    runner.run_steady(load, windows);
    runner.summary_of_last(windows / 2)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let server = ServerConfig::default_haswell();
    let colo = if quick { ColoConfig::fast_test() } else { ColoConfig::default() };
    let windows = if quick { 60 } else { 120 };
    let loads: Vec<f64> = if quick {
        vec![0.2, 0.4, 0.6, 0.8]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };
    let link = server.nic_gbps;

    println!("Figure 7: memkeyval network bandwidth with iperf under Heracles (% of link rate)");
    println!();
    print_load_header("series", &loads);

    let baseline = parallel_map(&loads, |&load| steady_state(load, None, &server, &colo, windows));
    print_row(
        "baseline (LC)",
        &baseline
            .iter()
            .map(|s| format!("{:.0}%", s.mean_lc_net_gbps / link * 100.0))
            .collect::<Vec<_>>(),
    );

    let iperf = BeWorkload::iperf();
    let colocated =
        parallel_map(&loads, |&load| steady_state(load, Some(&iperf), &server, &colo, windows));
    print_row(
        "heracles (LC)",
        &colocated
            .iter()
            .map(|s| format!("{:.0}%", s.mean_lc_net_gbps / link * 100.0))
            .collect::<Vec<_>>(),
    );
    print_row(
        "heracles (BE)",
        &colocated
            .iter()
            .map(|s| format!("{:.0}%", s.mean_be_net_gbps / link * 100.0))
            .collect::<Vec<_>>(),
    );
    print_row(
        "worst lat/SLO",
        &colocated
            .iter()
            .map(|s| format!("{:.0}%", s.worst_normalized_latency * 100.0))
            .collect::<Vec<_>>(),
    );
    println!();
    println!("(paper: Figure 7 — the LC traffic follows the baseline curve; the BE flows get");
    println!(" the remaining link bandwidth minus headroom, shrinking as memkeyval's load grows,");
    println!(" and memkeyval keeps meeting its SLO.)");
}
