//! Renders a flight-recorder trace (`heracles-trace/v1` JSONL, as written
//! by `fleet_scale --trace`) as a human-readable report: placement
//! outcomes for the run's policy, every SLO-violation server-step
//! attributed to its (service, generation, balancer-decision) cause, and
//! the autoscale / lifecycle action timeline.
//!
//! Run with: `cargo run --release -p heracles_bench --bin trace_report --
//! <trace.jsonl>`
//!
//! Exits 2 on a missing argument or unreadable file, 1 when the document
//! fails schema validation or contains an unattributable violation.

use heracles_bench::trace_report::TraceReport;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_report <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match TraceReport::from_jsonl(&doc) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("invalid trace {path}: {e}");
            std::process::exit(1);
        }
    }
}
