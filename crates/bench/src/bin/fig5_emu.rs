//! Figure 5: Effective Machine Utilization (EMU) achieved by Heracles when
//! colocating each LC workload with the production batch jobs (brain and
//! streetview) across the load range.  EMU = LC throughput + BE throughput,
//! each normalized to running alone; it can exceed 100% when the two
//! workloads have complementary resource needs.
//!
//! Run with: `cargo run --release -p heracles-bench --bin fig5_emu [--quick]`

use heracles_bench::{evaluation_loads, parallel_map, print_load_header, print_row};
use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn steady_state_emu(
    lc: &LcWorkload,
    be: &BeWorkload,
    load: f64,
    server: &ServerConfig,
    colo: &ColoConfig,
    windows: usize,
) -> f64 {
    let policy: Box<dyn ColocationPolicy> = Box::new(Heracles::new(
        HeraclesConfig::default(),
        lc.slo(),
        OfflineDramModel::profile(lc, server),
    ));
    let mut runner = ColoRunner::new(server.clone(), lc.clone(), Some(be.clone()), policy, *colo);
    runner.run_steady(load, windows);
    runner.summary_of_last(windows / 2).mean_emu
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let server = ServerConfig::default_haswell();
    let colo = if quick { ColoConfig::fast_test() } else { ColoConfig::default() };
    let windows = if quick { 60 } else { 120 };
    let loads = if quick { vec![0.2, 0.4, 0.6, 0.8] } else { evaluation_loads() };

    println!("Figure 5: Effective Machine Utilization under Heracles (%)");
    println!();
    print_load_header("colocation", &loads);
    print_row("baseline", &loads.iter().map(|l| format!("{:.0}%", l * 100.0)).collect::<Vec<_>>());
    let mut sum = 0.0;
    let mut count = 0usize;
    for lc in LcWorkload::all() {
        for be in BeWorkload::production_set() {
            let label = format!("{}+{}", lc.name(), be.name());
            let emu = parallel_map(&loads, |&load| {
                steady_state_emu(&lc, &be, load, &server, &colo, windows)
            });
            sum += emu.iter().sum::<f64>();
            count += emu.len();
            print_row(
                &label,
                &emu.iter().map(|&v| format!("{:.0}%", v * 100.0)).collect::<Vec<_>>(),
            );
        }
    }
    println!();
    println!(
        "average EMU across all colocations and loads: {:.0}%",
        100.0 * sum / count.max(1) as f64
    );
    println!("(paper: Figure 5 — EMU between ~60% and ~120%, averaging ~90%; websearch+streetview");
    println!(" exceeds 100% because their resource needs are complementary.)");
}
