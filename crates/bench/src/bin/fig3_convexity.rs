//! Figure 3: the maximum websearch load that still meets the SLO, as a
//! function of the fraction of cores and of LLC capacity granted to it.
//! The paper uses this surface to argue that gradient descent over
//! (cores, cache) finds the global optimum.
//!
//! Run with: `cargo run --release -p heracles-bench --bin fig3_convexity [--quick]`

use heracles_bench::parallel_map;
use heracles_colo::{max_load_under_slo, ColoConfig};
use heracles_hw::ServerConfig;
use heracles_workloads::LcWorkload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let server = ServerConfig::default_haswell();
    let colo = if quick { ColoConfig::fast_test() } else { ColoConfig::default() };
    let fractions: Vec<f64> = if quick {
        vec![0.25, 0.5, 0.75, 1.0]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    };
    let websearch = LcWorkload::websearch();

    println!("Figure 3: websearch max load under SLO (%) vs cores and LLC share");
    println!();
    print!("{:>12}", "cores \\ LLC");
    for llc in &fractions {
        print!("{:>7.0}%", llc * 100.0);
    }
    println!();

    let grid: Vec<(f64, f64)> =
        fractions.iter().flat_map(|&c| fractions.iter().map(move |&l| (c, l))).collect();
    let results = parallel_map(&grid, |&(cores, llc)| {
        max_load_under_slo(&websearch, cores, llc, &server, &colo)
    });

    for (i, &cores) in fractions.iter().enumerate() {
        print!("{:>11.0}%", cores * 100.0);
        for j in 0..fractions.len() {
            let value = results[i * fractions.len() + j];
            print!("{:>7.0}%", value * 100.0);
        }
        println!();
    }
    println!();
    println!("(paper: Figure 3 — performance is a convex, monotone function of cores and");
    println!(" cache, so one-dimension-at-a-time gradient descent finds the global optimum.)");
}
