//! §5.3 TCO analysis: throughput/TCO improvements from raising utilization
//! with Heracles, compared against an energy-proportionality-only controller,
//! using the Barroso et al. TCO calculator parameters from the paper.
//!
//! Run with: `cargo run --release -p heracles-bench --bin table_tco`

use heracles_cluster::TcoModel;

fn main() {
    let tco = TcoModel::paper_case_study();
    println!("TCO case study (Barroso et al. calculator, low per-server-cost datacenter)");
    println!(
        "  server ${:.0} over {:.0} years, infra ${:.0} over {:.0} years,",
        tco.server_capex,
        tco.server_lifetime_years,
        tco.infra_capex_per_server,
        tco.infra_lifetime_years
    );
    println!(
        "  PUE {:.1}, {:.0} W peak per server, ${:.2}/kWh, {} servers",
        tco.pue, tco.peak_power_w, tco.electricity_per_kwh, tco.cluster_servers
    );
    println!();

    println!(
        "{:>24} {:>14} {:>14} {:>16}",
        "initial utilization", "target util.", "throughput/TCO", "energy-prop only"
    );
    for &(from, to) in &[(0.75, 0.90), (0.50, 0.90), (0.20, 0.90)] {
        let heracles = tco.throughput_per_tco_improvement(from, to);
        let energy_prop = tco.energy_proportionality_improvement(from, 0.35);
        println!(
            "{:>23}% {:>13}% {:>+13.0}% {:>+15.1}%",
            (from * 100.0) as i64,
            (to * 100.0) as i64,
            heracles * 100.0,
            energy_prop * 100.0
        );
    }
    println!();
    println!("annual cluster TCO at 75% utilization: ${:.1}M", tco.annual_tco_cluster(0.75) / 1e6);
    println!("annual cluster TCO at 90% utilization: ${:.1}M", tco.annual_tco_cluster(0.90) / 1e6);
    println!();
    println!("(paper §5.3: ~15% throughput/TCO gain when a 75%-utilized cluster reaches 90%,");
    println!(" ~306% when a 20%-utilized cluster reaches 90%; an energy-proportionality");
    println!(" controller alone achieves only ~3% and <7% respectively.)");
}
