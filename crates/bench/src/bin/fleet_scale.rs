//! Fleet-scale policy sweep: all four BE placement policies on the same
//! seeded job stream over a diurnally loaded websearch fleet, each server
//! defended by its own Heracles controller.
//!
//! By default the sweep runs twice — once over the homogeneous Haswell
//! fleet and once over a mixed-generation datacenter (Sandy-Bridge-class,
//! Haswell and Skylake-class boxes) — so the capacity-aware policies can be
//! compared on both; `--mix` pins a single blend instead.
//!
//! Reports per policy: core-weighted fleet EMU (mean/min), SLO violation
//! rate, jobs completed, BE core·seconds served, mean queueing delay (plus
//! the count of jobs still stranded in the queue at the end of the run —
//! survivors-only means flatter overloaded configs), preemptions and the
//! throughput/TCO gain over the uncolocated fleet — plus the single-server
//! Heracles baseline's violation rate as the bar the fleet must not
//! regress.
//!
//! With `--autoscale <static|reactive|predictive|energy-aware|all>` the
//! binary instead compares elastic fleets against the static baseline on
//! the same compressed-diurnal scenario and job stream: per autoscaler it
//! reports the time-varying fleet size, purchases/drains/migrations,
//! completed BE core·seconds, SLO-violation server-steps, queue-wait
//! percentiles, the amortized TCO bill and — the headline — TCO per
//! completed core·second relative to the static fleet.
//!
//! With `--energy` the fleet's energy plane meters per-leaf package power
//! into joule/dollar ledgers (a read-only shadow: results are bit-identical
//! with it off) and each row gains an energy line — fleet megajoules, the
//! energy bill at the configured tariff, the peak instantaneous watts and
//! joules per completed BE core·second.  `--power-cap W` additionally runs
//! the cluster under a package watt budget (per-leaf RAPL-style caps, BE
//! admission throttled first — a behavioral knob, not a shadow), and
//! `--energy-price <flat|peak|carbon|$/kWh>` picks the tariff curve the
//! joules are billed at (a bare number means a flat price at that $/kWh).
//!
//! With `--services websearch:0.5,memkeyval:0.3,ml_cluster:0.2` the fleet
//! serves a mixed LC catalog: each service owns an aggregate diurnal
//! demand curve (phase-spread across the cycle) that the traffic plane's
//! balancer (`--balancer capacity-weighted|slack-aware`) routes across its
//! leaves every step, conserving demand exactly — the per-service
//! routed-vs-offered audit is printed per row.
//!
//! With `--trace <path>` the binary instead runs a *single* policy (default
//! least-loaded, `--policy` to change; `--autoscale <kind>` for an elastic
//! run) with the telemetry plane enabled and writes the flight-recorder
//! trace as schema-validated JSONL; `--metrics <path>` also writes the
//! metrics-registry JSON.  `--health` additionally turns on the online
//! health plane (quantile sketches + burn-rate alerts — feed the
//! artifacts to `fleet_doctor`), `--recorder-capacity N` sizes the
//! flight-recorder ring (a loud warning is printed whenever the ring
//! overflowed and the trace is therefore partial).  `--telemetry-gate
//! <pct>` re-runs the same configuration untraced and fails (exit 1) if
//! tracing inflates per-step wall time by more than `pct` percent — the
//! zero-cost-when-disabled and cheap-when-enabled regression gate CI
//! runs.
//!
//! With `--sim-core <stepped|event>` the run is pinned to one server-plane
//! core: the stepped oracle simulates every leaf's every window in full,
//! the event-driven core fast-forwards provably steady leaves.
//! `--sim-core both` instead runs the same single-policy fleet on both
//! cores, prints their server-plane profiles and exits nonzero if any bit
//! of the results differs — the CI smoke for cross-core equivalence.
//! `--demand-hold N` holds each demand sample for N steps so fleets can
//! actually go steady between re-routes.
//!
//! Run with: `cargo run --release -p heracles_bench --bin fleet_scale --
//! [--fast] [--servers N] [--steps N] [--seed N] [--slots N]
//! [--mix homogeneous|mixed|O:N] [--services SPEC] [--balancer KIND]
//! [--autoscale POLICY] [--csv] [--trace PATH] [--metrics PATH]
//! [--health] [--recorder-capacity N] [--policy KIND]
//! [--telemetry-gate PCT] [--sim-core stepped|event|both]
//! [--demand-hold N] [--energy] [--power-cap W] [--energy-price KIND]`

use heracles_autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet, GenerationMarket};
use heracles_bench::cli::Args;
use heracles_cluster::TcoModel;
use heracles_fleet::{
    single_server_baseline_violations, EnergyConfig, EnergyPriceSchedule, FleetConfig, FleetResult,
    FleetSim, GenerationMix, InterferenceModel, PolicyKind, SimCore, Telemetry, TelemetryConfig,
};
use heracles_hw::ServerConfig;
use heracles_telemetry::{validate_metrics_json, validate_trace_jsonl};
use heracles_workloads::ServiceMix;

/// The per-row energy line printed when the energy plane is metering:
/// fleet joules, the tariff bill, the peak instantaneous draw (against the
/// cap, when one is set) and the efficiency headline — joules per
/// completed BE core·second.
fn print_energy_line(result: &FleetResult, energy: &EnergyConfig) {
    let cap_note = energy.power_cap_w.map(|w| format!(" (cap {w:.0} W)")).unwrap_or_default();
    let per_core_s = result.joules_per_be_core_s();
    let efficiency =
        if per_core_s.is_finite() { format!(", {per_core_s:.1} J/core·s") } else { String::new() };
    println!(
        "  {:>18} energy: {:.2} MJ (${:.2} at PUE {:.1}), peak {:.0} W{cap_note}{efficiency}",
        "",
        result.total_energy_joules() / 1e6,
        result.total_energy_dollars(),
        energy.pue,
        result.max_peak_power_w(),
    );
}

fn sweep(config: FleetConfig, server: &ServerConfig, tco: &TcoModel, csv: bool) {
    let counts = config.mix.counts(config.servers);
    println!(
        "fleet mix: {} (sandy-bridge: {}, haswell: {}, skylake: {})",
        config.mix, counts[0], counts[1], counts[2]
    );
    println!("services: {} via {} balancing", config.services, config.balancer.name());
    println!(
        "{:<20} {:>8} {:>8} {:>7} {:>6} {:>10} {:>9} {:>8} {:>9} {:>9}",
        "policy",
        "EMU",
        "min EMU",
        "viol%",
        "jobs",
        "core.s",
        "delay s",
        "queued",
        "preempts",
        "TCO gain"
    );

    let mut mean_lc_load = 0.0;
    let mut total_cores = 0;
    for kind in PolicyKind::all() {
        let result = FleetSim::new(config, server.clone(), kind).run();
        mean_lc_load = result.mean_lc_load();
        total_cores = result.total_cores();
        let delay = result.queueing_delay();
        println!(
            "{:<20} {:>7.1}% {:>7.1}% {:>6.1}% {:>6} {:>10.0} {:>9.0} {:>8} {:>9} {:>8.1}%",
            result.policy,
            result.mean_fleet_emu() * 100.0,
            result.min_fleet_emu() * 100.0,
            result.slo_violation_fraction() * 100.0,
            result.jobs_completed(),
            result.be_core_s_served(),
            delay.mean_started_s,
            delay.censored,
            result.preemptions(),
            result.tco_improvement(tco) * 100.0
        );
        if config.energy.metering {
            print_energy_line(&result, &config.energy);
        }
        if config.services.active_services() > 1 {
            let by = result.violation_server_steps_by_service();
            println!(
                "  {:>18} routed==offered (max imbalance {:.2e}); violation server-steps: \
                 websearch {}, ml_cluster {}, memkeyval {}",
                "",
                result.max_routing_imbalance(),
                by[0],
                by[1],
                by[2]
            );
        }
        if csv {
            println!();
            print!("{}", result.to_csv());
            println!();
            // The job ledger includes censored jobs (still queued at the
            // end of the run) with their accrued wait — the step CSV alone
            // would hide the stranded tail.
            print!("{}", result.jobs_to_csv());
            println!();
        }
    }
    println!(
        "  ({} fleet cores; mean LC load without colocation: {:.1}%, core-weighted)",
        total_cores,
        mean_lc_load * 100.0
    );
    println!();
}

/// The elastic comparison: autoscaled fleets vs the static baseline on the
/// canonical compressed-diurnal scenario, judged in TCO per completed BE
/// core·second.
fn autoscale_sweep(config: FleetConfig, server: &ServerConfig, which: &str, csv: bool) {
    let kinds: Vec<AutoscaleKind> = if which == "all" {
        AutoscaleKind::all().to_vec()
    } else {
        match which.parse() {
            Ok(kind) => vec![kind],
            Err(e) => {
                eprintln!("invalid --autoscale value: {e} (or \"all\")");
                std::process::exit(2);
            }
        }
    };
    let scenario = AutoscaleConfig::diurnal(config);
    println!(
        "elastic scenario: {} servers initially ({}..={} allowed), {} steps compressed onto one \
         12 h diurnal cycle, migration cost {} core·s",
        scenario.fleet.servers,
        scenario.min_servers,
        scenario.max_servers,
        scenario.fleet.steps,
        scenario.migration_cost_core_s
    );
    println!(
        "{:<12} {:>8} {:>6} {:>7} {:>8} {:>8} {:>6} {:>10} {:>9} {:>9} {:>8} {:>11}",
        "autoscaler",
        "servers",
        "bought",
        "drained",
        "migrated",
        "requeued",
        "viol",
        "core.s",
        "p99 wait",
        "TCO $",
        "$/kcs",
        "vs static"
    );

    // The static baseline always runs first so the relative column has its
    // denominator.
    let mut static_tco_per = None;
    let baseline = AutoscaleKind::Static;
    for kind in std::iter::once(baseline).chain(kinds.iter().copied().filter(|&k| k != baseline)) {
        // Least-loaded placement: the elastic comparison is about *fleet
        // sizing*, and least-loaded's occupancy penalty spreads residents
        // across servers — which is also what makes consolidation drains
        // (migrate, retire) do real work in the valley.
        let mut elastic =
            ElasticFleet::new(scenario, server.clone(), PolicyKind::LeastLoaded, kind);
        if scenario.fleet.energy.metering {
            // Price the market's energy bill at the same tariff the meter
            // bills at, so "which generation?" and the joule ledgers agree.
            elastic = elastic.with_market(
                GenerationMarket::new(&scenario.fleet, server, InterferenceModel::from_scores([]))
                    .with_energy_config(&scenario.fleet.energy),
            );
        }
        let result = elastic.run();
        let fleet = &result.fleet;
        let per_kcs = fleet.tco_per_be_core_s() * 1_000.0;
        if kind == baseline {
            static_tco_per = Some(per_kcs);
        }
        let delta = static_tco_per
            .map(|s| format!("{:+.1}%", (per_kcs / s - 1.0) * 100.0))
            .unwrap_or_default();
        println!(
            "{:<12} {:>8.1} {:>6} {:>7} {:>8} {:>8} {:>6} {:>10.0} {:>8.0}s {:>9.2} {:>8.3} {:>11}",
            result.autoscaler,
            fleet.mean_in_service_servers(),
            result.scale_outs(),
            result.scale_ins(),
            result.drain_migrations(),
            result.drain_requeues(),
            fleet.violation_server_steps(),
            fleet.be_core_s_served(),
            fleet.queueing_delay().p99_started_s,
            fleet.total_tco_dollars(),
            per_kcs,
            delta
        );
        if scenario.fleet.energy.metering {
            print_energy_line(fleet, &scenario.fleet.energy);
        }
        if csv {
            println!();
            print!("{}", fleet.to_csv());
            println!();
        }
    }
    println!();
    println!("(identical seeded job stream per row; $/kcs is amortized TCO per 1000 completed");
    println!(" BE core·seconds — the autoscaler's whole mandate is the last two columns.)");
}

/// Runs `config` once under `policy` (elastically when `autoscale` names a
/// kind), returning the wall seconds the run took and, when traced, its
/// telemetry bundle.
fn timed_run(
    config: FleetConfig,
    server: &ServerConfig,
    policy: PolicyKind,
    autoscale: &str,
) -> (f64, Option<Telemetry>) {
    let started = std::time::Instant::now();
    let telemetry = if autoscale.is_empty() {
        let mut sim = FleetSim::new(config, server.clone(), policy);
        for _ in 0..config.steps {
            sim.step_once();
        }
        sim.emit_health_summary();
        sim.emit_energy_summary();
        sim.take_telemetry()
    } else {
        let kind: AutoscaleKind = autoscale.parse().unwrap_or_else(|e| {
            eprintln!("invalid --autoscale value for a traced run: {e}");
            std::process::exit(2);
        });
        let scenario = AutoscaleConfig::diurnal(config);
        let mut fleet = ElasticFleet::new(scenario, server.clone(), policy, kind);
        for _ in 0..scenario.fleet.steps {
            fleet.step_once();
        }
        fleet.emit_health_summary();
        fleet.emit_energy_summary();
        fleet.take_telemetry()
    };
    (started.elapsed().as_secs_f64(), telemetry)
}

/// The traced single-run mode behind `--trace`: runs once with the
/// telemetry plane on, schema-validates the artifacts, writes them to
/// disk, and optionally gates the tracing overhead against an untraced
/// run of the identical configuration.
#[allow(clippy::too_many_arguments)]
fn traced_run(
    config: FleetConfig,
    server: &ServerConfig,
    policy: PolicyKind,
    autoscale: &str,
    telemetry_cfg: TelemetryConfig,
    trace_path: &str,
    metrics_path: &str,
    gate_pct: f64,
) {
    let traced_cfg = FleetConfig { telemetry: telemetry_cfg, ..config };
    let (traced_wall, telemetry) = timed_run(traced_cfg, server, policy, autoscale);
    let telemetry = telemetry.expect("telemetry was enabled");

    let mut header = vec![
        ("policy", policy.name().to_string()),
        ("balancer", config.balancer.name().to_string()),
        ("seed", config.seed.to_string()),
        ("servers", config.servers.to_string()),
        ("steps", config.steps.to_string()),
    ];
    if !autoscale.is_empty() {
        header.push(("autoscaler", autoscale.to_string()));
    }
    if telemetry_cfg.health {
        header.push(("health", "on".to_string()));
    }
    let trace_doc = telemetry.trace_jsonl(&header);
    if let Err(e) = validate_trace_jsonl(&trace_doc) {
        eprintln!("trace failed schema validation before writing: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(trace_path, &trace_doc) {
        eprintln!("cannot write {trace_path}: {e}");
        std::process::exit(2);
    }
    println!(
        "trace: {} events ({} dropped) -> {trace_path}",
        telemetry.recorder.len(),
        telemetry.recorder.dropped()
    );
    if telemetry.recorder.dropped() > 0 {
        eprintln!(
            "WARNING: the flight recorder dropped {} events — the trace covers only the last \
             {} events of the run.  trace_report and fleet_doctor will mark event-derived \
             sections [PARTIAL]; re-run with a larger --recorder-capacity (currently {}) for \
             a lossless trace.",
            telemetry.recorder.dropped(),
            telemetry.recorder.len(),
            telemetry.recorder.capacity()
        );
    }
    if !metrics_path.is_empty() {
        let metrics_doc = telemetry.metrics_json();
        if let Err(e) = validate_metrics_json(&metrics_doc) {
            eprintln!("metrics failed schema validation before writing: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(metrics_path, &metrics_doc) {
            eprintln!("cannot write {metrics_path}: {e}");
            std::process::exit(2);
        }
        println!(
            "metrics: {} jobs placed, {} violation server-steps -> {metrics_path}",
            telemetry.metrics.counter("fleet.jobs_placed"),
            telemetry.metrics.counter("fleet.violation_server_steps"),
        );
    }

    if gate_pct > 0.0 {
        // Best-of-3 on each side to shave scheduler noise off the gate.
        let best = |cfg: FleetConfig| {
            (0..3)
                .map(|_| timed_run(cfg, server, policy, autoscale).0)
                .fold(f64::INFINITY, f64::min)
        };
        let traced_best = best(traced_cfg).min(traced_wall);
        let untraced_best = best(config);
        let overhead_pct = (traced_best / untraced_best - 1.0) * 100.0;
        println!(
            "telemetry overhead: traced {:.3}s vs untraced {:.3}s per run ({overhead_pct:+.1}%, \
             gate {gate_pct}%)",
            traced_best, untraced_best
        );
        if overhead_pct > gate_pct {
            eprintln!("telemetry overhead gate failed: {overhead_pct:.1}% > {gate_pct}%");
            std::process::exit(1);
        }
    }
}

/// The `--sim-core both` mode: runs the identical single-policy fleet on
/// the stepped oracle and the event-driven core, prints each core's
/// server-plane numbers, and exits nonzero if a single bit of the results
/// diverged — the CLI-grade version of the cross-core property tests, for
/// CI smoke on arbitrary flag combinations.
fn sim_core_diff(config: FleetConfig, server: &ServerConfig, policy: PolicyKind) {
    let run = |core: SimCore| {
        let cfg = FleetConfig { sim_core: core, ..config };
        let mut sim = FleetSim::new(cfg, server.clone(), policy);
        for _ in 0..cfg.steps {
            sim.step_once();
        }
        let profile = *sim.server_plane_profile();
        (sim.into_result(), profile)
    };
    let (stepped, stepped_profile) = run(SimCore::Stepped);
    let (event, event_profile) = run(SimCore::EventDriven);
    for (core, p) in [("stepped", &stepped_profile), ("event", &event_profile)] {
        println!(
            "{core:>8}: server plane {:.3} ms/step, {} full + {} fast windows, \
             {:.1} leaves woken/step",
            p.per_step_ms(),
            p.full_windows,
            p.fast_windows,
            p.woken_per_step()
        );
    }
    let mut diffs = Vec::new();
    if stepped.steps != event.steps {
        diffs.push("per-step metrics");
    }
    if stepped.jobs != event.jobs {
        diffs.push("job ledger");
    }
    if stepped.events != event.events {
        diffs.push("event log");
    }
    if stepped.server_cores != event.server_cores {
        diffs.push("server core counts");
    }
    if stepped_profile.full_windows != event_profile.full_windows + event_profile.fast_windows {
        diffs.push("total windows simulated");
    }
    if diffs.is_empty() {
        println!(
            "sim-core diff: identical results across {} steps x {} servers",
            config.steps, config.servers
        );
    } else {
        eprintln!("sim-core diff FAILED: cores diverged on {}", diffs.join(", "));
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::from_env();
    let base = if args.flag("--fast") { FleetConfig::fast_test() } else { FleetConfig::default() };
    // A multi-service catalog needs the run compressed onto the diurnal
    // cycle (service phases are the whole point); `fast_services` carries
    // the right compression for the fast shape.
    let base = if args.value("--services", ServiceMix::websearch_only()).active_services() > 1
        && args.flag("--fast")
    {
        FleetConfig::fast_services()
    } else {
        base
    };
    let sim_core_arg = args.value("--sim-core", String::new());
    // The energy-plane knobs: `--energy` turns on the metering shadow,
    // `--power-cap` (implies metering) runs under a cluster watt budget,
    // `--energy-price` picks the tariff (a named curve or a flat $/kWh).
    let energy = {
        let mut energy = base.energy;
        if args.flag("--energy") {
            energy.metering = true;
        }
        let cap_w = args.value("--power-cap", 0.0f64);
        if cap_w > 0.0 {
            energy.metering = true;
            energy.power_cap_w = Some(cap_w);
        }
        let price = args.value("--energy-price", String::new());
        match price.as_str() {
            "" | "flat" => {}
            "peak" => energy.price = EnergyPriceSchedule::business_peak(),
            "carbon" => {
                energy.price =
                    EnergyPriceSchedule::CarbonAware { base_per_kwh: 0.05, premium_per_kwh: 0.10 }
            }
            other => match other.parse::<f64>() {
                Ok(per_kwh) if per_kwh > 0.0 && per_kwh.is_finite() => {
                    energy.price = EnergyPriceSchedule::Flat { per_kwh }
                }
                _ => {
                    eprintln!(
                        "invalid --energy-price {other:?} (expected flat, peak, carbon or a \
                         positive $/kWh number)"
                    );
                    std::process::exit(2);
                }
            },
        }
        energy
    };
    let config = FleetConfig {
        energy,
        servers: args.value("--servers", base.servers),
        steps: args.value("--steps", base.steps),
        seed: args.value("--seed", base.seed),
        be_slots_per_server: args.value("--slots", base.be_slots_per_server),
        services: args.value("--services", base.services),
        balancer: args.value("--balancer", base.balancer),
        demand_hold_steps: args.value("--demand-hold", base.demand_hold_steps),
        sim_core: match sim_core_arg.as_str() {
            // `both` runs the diff mode below; everything else pins the core.
            "" | "both" => base.sim_core,
            other => other.parse::<SimCore>().unwrap_or_else(|e| {
                eprintln!("invalid --sim-core value: {e} (or \"both\")");
                std::process::exit(2);
            }),
        },
        ..base
    };
    if let Err(e) = config.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    let server = ServerConfig::default_haswell();
    let tco = TcoModel::paper_case_study();

    if sim_core_arg == "both" {
        let config = FleetConfig { mix: args.value("--mix", config.mix), ..config };
        sim_core_diff(config, &server, args.value("--policy", PolicyKind::LeastLoaded));
        return;
    }

    let autoscale = args.value("--autoscale", String::new());
    let trace_path = args.value("--trace", String::new());
    let health = args.flag("--health");
    if health && trace_path.is_empty() {
        eprintln!("--health requires --trace (the health plane reports through the recorder)");
        std::process::exit(2);
    }
    if !trace_path.is_empty() {
        let config = FleetConfig { mix: args.value("--mix", config.mix), ..config };
        let telemetry_cfg = TelemetryConfig {
            enabled: true,
            health,
            trace_capacity: args
                .value("--recorder-capacity", TelemetryConfig::default().trace_capacity),
        };
        if let Err(e) = telemetry_cfg.validate() {
            eprintln!("invalid telemetry configuration: {e}");
            std::process::exit(2);
        }
        traced_run(
            config,
            &server,
            args.value("--policy", PolicyKind::LeastLoaded),
            &autoscale,
            telemetry_cfg,
            &trace_path,
            &args.value("--metrics", String::new()),
            args.value("--telemetry-gate", 0.0f64),
        );
        return;
    }
    if !autoscale.is_empty() {
        let config = FleetConfig { mix: args.value("--mix", config.mix), ..config };
        println!("Elastic fleet: autoscalers over per-server Heracles controllers");
        autoscale_sweep(config, &server, &autoscale, args.flag("--csv"));
        return;
    }

    println!("Fleet scheduler: BE job placement over per-server Heracles controllers");
    println!(
        "  servers: {}, BE slots/reference server: {}, steps: {}, windows/step: {}, seed: {}",
        config.servers,
        config.be_slots_per_server,
        config.steps,
        config.windows_per_step,
        config.seed
    );
    let baseline = single_server_baseline_violations(&config, &server);
    println!(
        "  single-server Heracles baseline: SLO violations in {:.1}% of steps",
        baseline * 100.0
    );
    println!();

    // With no --mix, sweep homogeneous and mixed back-to-back; with one,
    // run exactly the requested blend.
    let mixes: Vec<GenerationMix> =
        if args.flag("--mix") || !args.value("--mix", String::new()).is_empty() {
            vec![args.value("--mix", GenerationMix::homogeneous())]
        } else {
            vec![GenerationMix::homogeneous(), GenerationMix::mixed_datacenter()]
        };
    for mix in mixes {
        sweep(FleetConfig { mix, ..config }, &server, &tco, args.flag("--csv"));
    }
    println!("(every policy schedules the identical seeded job stream within a mix,");
    println!(" so rows are directly comparable; EMU and TCO are core-weighted.)");
}
