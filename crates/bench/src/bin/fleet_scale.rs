//! Fleet-scale policy sweep: all four BE placement policies on the same
//! seeded job stream over a diurnally loaded websearch fleet, each server
//! defended by its own Heracles controller.
//!
//! Reports per policy: fleet EMU (mean/min), SLO violation rate, jobs
//! completed, BE core·seconds served, mean queueing delay, preemptions and
//! the throughput/TCO gain over the uncolocated fleet — plus the
//! single-server Heracles baseline's violation rate as the bar the fleet
//! must not regress.
//!
//! Run with: `cargo run --release -p heracles_bench --bin fleet_scale --
//! [--fast] [--servers N] [--steps N] [--seed N] [--slots N] [--csv]`

use heracles_bench::cli::Args;
use heracles_cluster::TcoModel;
use heracles_fleet::{single_server_baseline_violations, FleetConfig, FleetSim, PolicyKind};
use heracles_hw::ServerConfig;

fn main() {
    let args = Args::from_env();
    let base = if args.flag("--fast") { FleetConfig::fast_test() } else { FleetConfig::default() };
    let config = FleetConfig {
        servers: args.value("--servers", base.servers),
        steps: args.value("--steps", base.steps),
        seed: args.value("--seed", base.seed),
        be_slots_per_server: args.value("--slots", base.be_slots_per_server),
        ..base
    };
    let server = ServerConfig::default_haswell();
    let tco = TcoModel::paper_case_study();

    println!("Fleet scheduler: BE job placement over per-server Heracles controllers");
    println!(
        "  servers: {}, BE slots/server: {}, steps: {}, windows/step: {}, seed: {}",
        config.servers,
        config.be_slots_per_server,
        config.steps,
        config.windows_per_step,
        config.seed
    );
    let baseline = single_server_baseline_violations(&config, &server);
    println!(
        "  single-server Heracles baseline: SLO violations in {:.1}% of steps",
        baseline * 100.0
    );
    println!();
    println!(
        "{:<20} {:>8} {:>8} {:>7} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "policy", "EMU", "min EMU", "viol%", "jobs", "core.s", "delay s", "preempts", "TCO gain"
    );

    let mut mean_lc_load = 0.0;
    for kind in PolicyKind::all() {
        let result = FleetSim::new(config, server.clone(), kind).run();
        mean_lc_load = result.mean_lc_load();
        println!(
            "{:<20} {:>7.1}% {:>7.1}% {:>6.1}% {:>6} {:>10.0} {:>9.0} {:>9} {:>8.1}%",
            result.policy,
            result.mean_fleet_emu() * 100.0,
            result.min_fleet_emu() * 100.0,
            result.slo_violation_fraction() * 100.0,
            result.jobs_completed(),
            result.be_core_s_served(),
            result.mean_queueing_delay_s(),
            result.preemptions(),
            result.tco_improvement(&tco) * 100.0
        );
        if args.flag("--csv") {
            println!();
            print!("{}", result.to_csv());
            println!();
        }
    }
    println!();
    println!(
        "(mean LC load without colocation: {:.1}%; every policy schedules the identical",
        mean_lc_load * 100.0
    );
    println!(" seeded job stream, so rows are directly comparable.)");
}
