//! Figure 1: impact of single-resource interference on the tail latency of
//! websearch, ml_cluster and memkeyval.
//!
//! Each row is an antagonist, each column a load point; every cell is the
//! tail latency normalized to the SLO (values above 100% are violations,
//! values above 300% are printed as ">300%" like the paper).
//!
//! Run with: `cargo run --release -p heracles-bench --bin fig1_characterization [--quick]`

use heracles_bench::{figure1_loads, parallel_map, percent, print_load_header, print_row};
use heracles_colo::{characterize_cell, ColoConfig};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let server = ServerConfig::default_haswell();
    let colo = if quick { ColoConfig::fast_test() } else { ColoConfig::default() };
    let loads = if quick { vec![0.1, 0.3, 0.5, 0.7, 0.9] } else { figure1_loads() };

    println!("Figure 1: tail latency under single-resource interference (% of SLO)");
    println!();
    for lc in LcWorkload::all() {
        println!("{}", lc.name());
        print_load_header("antagonist", &loads);
        for antagonist in BeWorkload::characterization_antagonists() {
            let cells = parallel_map(&loads, |&load| {
                characterize_cell(&lc, &antagonist, load, &server, &colo).normalized_latency
            });
            let formatted: Vec<String> = cells.iter().map(|&v| percent(v)).collect();
            print_row(antagonist.name(), &formatted);
        }
        println!();
    }
    println!("(paper: Figure 1 — LLC(big)/DRAM devastate all workloads at low-to-mid load and");
    println!(" fade at high load as the antagonist loses cores; HyperThread sharing hurts at");
    println!(" high load; the power virus hurts mostly at low load; network streaming only");
    println!(" hurts memkeyval; brain under OS-only isolation violates every workload.)");
}
