//! Figure 6: shared-resource utilization under Heracles — DRAM bandwidth,
//! CPU utilization and CPU power (as a fraction of TDP) — for each LC
//! workload colocated with each BE job, across the load range.
//!
//! Run with: `cargo run --release -p heracles-bench --bin fig6_resource_util [--quick]`

use heracles_bench::{parallel_map, print_load_header, print_row};
use heracles_colo::{ColoConfig, ColoRunner, ColoSummary};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn steady_state(
    lc: &LcWorkload,
    be: Option<&BeWorkload>,
    load: f64,
    server: &ServerConfig,
    colo: &ColoConfig,
    windows: usize,
) -> ColoSummary {
    let policy: Box<dyn ColocationPolicy> = Box::new(Heracles::new(
        HeraclesConfig::default(),
        lc.slo(),
        OfflineDramModel::profile(lc, server),
    ));
    let mut runner = ColoRunner::new(server.clone(), lc.clone(), be.cloned(), policy, *colo);
    runner.run_steady(load, windows);
    runner.summary_of_last(windows / 2)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let server = ServerConfig::default_haswell();
    let colo = if quick { ColoConfig::fast_test() } else { ColoConfig::default() };
    let windows = if quick { 60 } else { 120 };
    let loads: Vec<f64> = if quick {
        vec![0.2, 0.4, 0.6, 0.8]
    } else {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };

    type Metric = fn(&ColoSummary) -> f64;
    let metrics: [(&str, Metric); 3] = [
        ("DRAM BW (% of peak)", |s| s.mean_dram_utilization),
        ("CPU utilization (%)", |s| s.mean_cpu_utilization),
        ("CPU power (% of TDP)", |s| s.mean_power_fraction),
    ];

    println!("Figure 6: shared-resource utilization under Heracles");
    for lc in LcWorkload::all() {
        for (metric_name, extract) in metrics {
            println!();
            println!("{} — {}", lc.name(), metric_name);
            print_load_header("colocation", &loads);
            let baseline = parallel_map(&loads, |&load| {
                extract(&steady_state(&lc, None, load, &server, &colo, windows))
            });
            print_row(
                "baseline",
                &baseline.iter().map(|v| format!("{:.0}%", v * 100.0)).collect::<Vec<_>>(),
            );
            for be in BeWorkload::evaluation_set() {
                let values = parallel_map(&loads, |&load| {
                    extract(&steady_state(&lc, Some(&be), load, &server, &colo, windows))
                });
                print_row(
                    be.name(),
                    &values.iter().map(|v| format!("{:.0}%", v * 100.0)).collect::<Vec<_>>(),
                );
            }
        }
    }
    println!();
    println!("(paper: Figure 6 — DRAM bandwidth never saturates (kept below 90% of peak);");
    println!(" CPU utilization and power rise well above the baseline, which is where the");
    println!(" extra throughput comes from.)");
}
