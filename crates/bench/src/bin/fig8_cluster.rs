//! Figure 8: a websearch cluster over a 12-hour diurnal load trace, baseline
//! (no colocation) vs Heracles colocating brain and streetview on the leaves.
//! Reports root latency relative to the cluster SLO and Effective Machine
//! Utilization over time.
//!
//! Run with: `cargo run --release -p heracles_bench --bin fig8_cluster --
//! [--fast] [--leaves N] [--steps N] [--seed N]`
//!
//! (`--quick` is accepted as an alias of `--fast` for compatibility.)

use heracles_bench::cli::Args;
use heracles_cluster::cluster::ClusterPolicy;
use heracles_cluster::{ClusterConfig, WebsearchCluster};
use heracles_colo::ColoConfig;
use heracles_hw::ServerConfig;

fn main() {
    let args = Args::from_env();
    let fast = args.flag("--fast") || args.flag("--quick");
    let server = ServerConfig::default_haswell();
    let defaults = if fast {
        ClusterConfig {
            leaves: 6,
            steps: 36,
            windows_per_step: 5,
            colo: ColoConfig { requests_per_window: 1_000, ..ColoConfig::default() },
            ..ClusterConfig::default()
        }
    } else {
        ClusterConfig::default()
    };
    let base = ClusterConfig {
        leaves: args.value("--leaves", defaults.leaves),
        steps: args.value("--steps", defaults.steps),
        seed: args.value("--seed", defaults.seed),
        ..defaults
    };

    println!("Figure 8: websearch cluster over a 12-hour diurnal trace");
    println!(
        "  leaves: {}, steps: {}, windows per step: {}",
        base.leaves, base.steps, base.windows_per_step
    );
    println!();

    let baseline = WebsearchCluster::new(
        ClusterConfig { policy: ClusterPolicy::Baseline, ..base },
        server.clone(),
    )
    .run();
    let heracles =
        WebsearchCluster::new(ClusterConfig { policy: ClusterPolicy::Heracles, ..base }, server)
            .run();

    println!(
        "{:>8} {:>6} | {:>13} {:>9} | {:>13} {:>9}",
        "time", "load", "base lat/SLO", "base EMU", "her lat/SLO", "her EMU"
    );
    let stride = (baseline.steps.len() / 24).max(1);
    let total_steps = baseline.steps.len().max(1) as f64;
    for (i, (b, h)) in baseline.steps.iter().zip(&heracles.steps).enumerate().step_by(stride) {
        println!(
            "{:>8} {:>5.0}% | {:>12.0}% {:>8.0}% | {:>12.0}% {:>8.0}%",
            // The trace always spans the 12-hour diurnal cycle, so the label
            // comes from the step's position in it, independent of window
            // length or quick-mode compression.
            format!("{:.1}h", i as f64 / total_steps * 12.0),
            b.load * 100.0,
            b.normalized_root_latency * 100.0,
            b.emu * 100.0,
            h.normalized_root_latency * 100.0,
            h.emu * 100.0
        );
    }
    println!();
    println!(
        "baseline: mean EMU {:.0}%, SLO violations in {:.0}% of steps",
        baseline.mean_emu() * 100.0,
        baseline.violation_fraction() * 100.0
    );
    println!(
        "heracles: mean EMU {:.0}%, min EMU {:.0}%, SLO violations in {:.0}% of steps",
        heracles.mean_emu() * 100.0,
        heracles.min_emu() * 100.0,
        heracles.violation_fraction() * 100.0
    );
    println!();
    println!("(paper: Figure 8 — Heracles produces no SLO violations, cuts the latency slack,");
    println!(" and sustains an average EMU of ~90% with a minimum of ~80% across the trace.)");
}
