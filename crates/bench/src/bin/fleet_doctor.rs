//! Renders the health plane's triage report: per-service SLO attainment
//! sparklines, the burn-rate alert timeline, the top-k unhealthiest
//! leaves by latency-sketch p99, and the sketch-vs-exact quantile
//! cross-check (which must land inside the sketch's documented
//! relative-error bound for the binary to exit 0).
//!
//! Two modes:
//!
//! * **artifact mode** — `fleet_doctor --trace <trace.jsonl>
//!   [--metrics <metrics.json>]` reads artifacts written by
//!   `fleet_scale --trace --health`,
//! * **live mode** — `fleet_doctor [--fast] [--servers N] [--steps N]
//!   [--seed N] [--policy KIND] [--sim-core stepped|event]` runs a fleet
//!   with the health plane enabled and reports on its in-memory
//!   artifacts (the same parser either way, so the modes cannot drift).
//!
//! When the trace carries the energy plane's columns (`fleet_scale
//! --energy`), the report gains an energy section: per-generation package
//! watts sparklines, the top-k energy-hungriest leaves and the
//! joules-vs-∫watts conservation cross-check.  Live mode always meters
//! (the shadow is free); a broken conservation identity exits 1.
//!
//! Exits 2 on usage or IO errors, 1 when an artifact fails to parse, the
//! cross-check exceeds the sketch's error bound, or energy conservation
//! breaks.

use heracles_bench::cli::Args;
use heracles_bench::fleet_doctor::DoctorReport;
use heracles_fleet::{FleetConfig, PolicyKind};
use heracles_hw::ServerConfig;

fn main() {
    let args = Args::from_env();
    let trace_path = args.value("--trace", String::new());
    let metrics_path = args.value("--metrics", String::new());

    let report = if !trace_path.is_empty() {
        let trace = match std::fs::read_to_string(&trace_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("cannot read {trace_path}: {e}");
                std::process::exit(2);
            }
        };
        let metrics = if metrics_path.is_empty() {
            None
        } else {
            match std::fs::read_to_string(&metrics_path) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("cannot read {metrics_path}: {e}");
                    std::process::exit(2);
                }
            }
        };
        DoctorReport::from_artifacts(&trace, metrics.as_deref())
    } else {
        if !metrics_path.is_empty() {
            eprintln!("--metrics only makes sense with --trace (live mode collects its own)");
            std::process::exit(2);
        }
        let base =
            if args.flag("--fast") { FleetConfig::fast_test() } else { FleetConfig::default() };
        let config = FleetConfig {
            servers: args.value("--servers", base.servers),
            steps: args.value("--steps", base.steps),
            seed: args.value("--seed", base.seed),
            sim_core: args.value("--sim-core", base.sim_core),
            ..base
        };
        if let Err(e) = config.validate() {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
        DoctorReport::live(
            config,
            &ServerConfig::default_haswell(),
            args.value("--policy", PolicyKind::LeastLoaded),
        )
    };

    match report {
        Ok(report) => {
            print!("{}", report.render());
            if !report.cross_checks_ok() {
                eprintln!("sketch-vs-exact cross-check FAILED its error bound");
                std::process::exit(1);
            }
            if !report.energy_ok() {
                eprintln!("energy joules-vs-∫watts conservation cross-check FAILED");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fleet_doctor: {e}");
            std::process::exit(1);
        }
    }
}
