//! Shared helpers for the figure-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the paper's
//! evaluation section.  The experiments consist of many independent cells
//! (workload × antagonist × load), so [`parallel_map`] (re-exported from
//! `heracles_sim`, which also serves the fleet simulator) fans them out over
//! the machine's cores, [`cli`] parses the binaries' `--flag value`
//! overrides, and [`percent`] / [`print_row`] render the same percent-of-SLO
//! format the paper uses.  [`fleet_bench`] holds the tracked fleet-size
//! benchmark behind `BENCH_fleet.json` and its schema validator, and
//! [`fleet_doctor`] the health-plane triage report behind the binary of
//! the same name.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod fleet_bench;
pub mod fleet_doctor;
pub mod trace_report;

pub use heracles_sim::{parallel_map, parallel_map_mut};

/// Formats a ratio the way the paper's figures print it: as a percentage,
/// saturated at ">300%" (used for latencies normalized to the SLO).
pub fn percent(value: f64) -> String {
    if value > 3.0 {
        ">300%".to_string()
    } else {
        format!("{:.0}%", value * 100.0)
    }
}

/// Prints one row of a fixed-width table: a label followed by formatted cells.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for cell in cells {
        print!("{cell:>8}");
    }
    println!();
}

/// Prints a table header with one column per load point (as percentages).
pub fn print_load_header(label: &str, loads: &[f64]) {
    print!("{label:<14}");
    for load in loads {
        print!("{:>8}", format!("{:.0}%", load * 100.0));
    }
    println!();
}

/// The load points used by the paper's Figure 1 (5% to 95% in 5% steps).
pub fn figure1_loads() -> Vec<f64> {
    (1..=19).map(|i| i as f64 * 0.05).collect()
}

/// The load points used for the Heracles evaluation figures (5% to 95% in
/// 10% steps, a subset of Figure 4's x-axis that keeps runtimes reasonable).
pub fn evaluation_loads() -> Vec<f64> {
    (0..10).map(|i| 0.05 + i as f64 * 0.10).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let mut mutable = vec![1u32, 2, 3];
        assert_eq!(parallel_map_mut(&mut mutable, |x| *x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn percent_formatting_matches_figure_1() {
        assert_eq!(percent(0.96), "96%");
        assert_eq!(percent(1.34), "134%");
        assert_eq!(percent(3.5), ">300%");
    }

    #[test]
    fn load_grids_match_the_paper() {
        let f1 = figure1_loads();
        assert_eq!(f1.len(), 19);
        assert!((f1[0] - 0.05).abs() < 1e-12);
        assert!((f1[18] - 0.95).abs() < 1e-12);
        assert_eq!(evaluation_loads().len(), 10);
    }
}
