//! The tracked fleet-size benchmark behind `BENCH_fleet.json`: per-step
//! control-plane cost of the sharded store + batched dispatch scheduler
//! against the legacy flat-store per-job scanner, swept over fleet sizes.
//!
//! Both arms run the *same* elastic scenario — compressed-diurnal
//! mixed-service demand over a mixed-generation fleet with a Poisson job
//! stream scaled to fleet size, driven by the reactive autoscaler — and the
//! measurement asserts their [`FleetResult`]s are identical step for step,
//! so every published speedup is also an equivalence check.  The split
//! (routing / dispatch / signals) comes from [`ControlPlaneProfile`], which
//! the fleet accumulates outside the deterministic result types.
//!
//! The report is hand-formatted JSON (the workspace deliberately vendors no
//! JSON serializer) with a matching [`validate_bench_json`] used by the CI
//! smoke step, so a malformed artifact fails fast instead of silently
//! drifting.

use std::time::Instant;

use heracles_autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet};
use heracles_colo::ColoConfig;
use heracles_fleet::{
    BalancerKind, ControlPlaneProfile, FleetConfig, FleetResult, GenerationMix, PolicyKind,
    ShardingMode,
};
use heracles_hw::ServerConfig;
use heracles_workloads::ServiceMix;

/// Schema tag stamped into (and required from) every bench report.
pub const BENCH_SCHEMA: &str = "heracles-fleet-bench/v1";

/// One measured sweep point: per-step wall-clock milliseconds for the
/// sharded/batched arm, its control-plane split, and the legacy arm's
/// numbers alongside for the headline speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSizePoint {
    /// Initial fleet size (the autoscaler may grow or shrink it mid-run).
    pub servers: usize,
    /// Steps each arm was driven for.
    pub steps: usize,
    /// Whole-step wall time of the sharded/batched arm, ms per step.
    pub step_ms: f64,
    /// Traffic-plane routing share of the step, ms.
    pub routing_ms: f64,
    /// Dispatch (queue take + round plan + placement) share, ms.
    pub dispatch_ms: f64,
    /// Autoscaler signal-assembly share, ms.
    pub signals_ms: f64,
    /// Routing + dispatch + signals, ms per step.
    pub control_plane_ms: f64,
    /// Whole-step wall time of the legacy arm, ms per step.
    pub legacy_step_ms: f64,
    /// The legacy arm's control-plane time, ms per step.
    pub legacy_control_plane_ms: f64,
    /// `legacy_control_plane_ms / control_plane_ms`.
    pub control_plane_speedup: f64,
}

/// Builds one benchmark arm: the compressed-diurnal elastic scenario at the
/// given fleet size, with the control plane pinned to either the
/// sharded/batched path or the legacy flat-store per-job path.
///
/// The colo plane is kept at a small request sample on purpose: this
/// benchmark tracks *scheduler* cost, and the per-leaf queueing simulation
/// would otherwise dominate wall time without exercising the control plane
/// at all.  Both arms share the sample size, so it cancels out of the
/// speedup.
pub fn bench_fleet(
    servers: usize,
    steps: usize,
    sharding: ShardingMode,
    batch_dispatch: bool,
) -> ElasticFleet {
    let base = FleetConfig {
        servers,
        steps,
        windows_per_step: 2,
        seed: 7,
        services: ServiceMix::mixed_frontend(),
        balancer: BalancerKind::SlackAware,
        mix: GenerationMix::mixed_datacenter(),
        sharding,
        batch_dispatch,
        colo: ColoConfig { requests_per_window: 40, ..ColoConfig::fast_test() },
        ..FleetConfig::default()
    };
    let config = AutoscaleConfig::diurnal(base);
    ElasticFleet::new(
        config,
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        AutoscaleKind::Reactive,
    )
}

/// Drives one arm to its horizon and returns its control-plane profile,
/// total wall seconds and the finished [`FleetResult`].
fn run_arm(
    servers: usize,
    steps: usize,
    sharding: ShardingMode,
    batch_dispatch: bool,
) -> (ControlPlaneProfile, f64, FleetResult) {
    let mut fleet = bench_fleet(servers, steps, sharding, batch_dispatch);
    let started = Instant::now();
    for _ in 0..steps {
        fleet.step_once();
    }
    let wall_s = started.elapsed().as_secs_f64();
    let profile = fleet.control_plane_profile();
    (profile, wall_s, fleet.finish().fleet)
}

/// Measures one sweep point: runs the sharded/batched arm and the legacy
/// arm on the identical scenario, asserts they produced the same schedule,
/// and returns both per-step costs.
///
/// # Panics
///
/// Panics if the two arms diverge — a regression in the equivalence the
/// property tests pin would surface here too, on fleets far larger than
/// proptest can afford.
pub fn measure_fleet_size(servers: usize, steps: usize) -> FleetSizePoint {
    let (profile, wall_s, result) = run_arm(servers, steps, ShardingMode::PerPool, true);
    let (legacy_profile, legacy_wall_s, legacy_result) =
        run_arm(servers, steps, ShardingMode::Single, false);
    assert_eq!(
        result.steps, legacy_result.steps,
        "sharded/batched arm diverged from the legacy scheduler (per-step metrics)"
    );
    assert_eq!(
        result.jobs, legacy_result.jobs,
        "sharded/batched arm diverged from the legacy scheduler (job ledger)"
    );
    let per_step_ms = |seconds: f64| seconds * 1e3 / steps as f64;
    FleetSizePoint {
        servers,
        steps,
        step_ms: per_step_ms(wall_s),
        routing_ms: per_step_ms(profile.routing_s),
        dispatch_ms: per_step_ms(profile.dispatch_s),
        signals_ms: per_step_ms(profile.signals_s),
        control_plane_ms: profile.per_step_ms(),
        legacy_step_ms: per_step_ms(legacy_wall_s),
        legacy_control_plane_ms: legacy_profile.per_step_ms(),
        control_plane_speedup: legacy_profile.per_step_ms() / profile.per_step_ms().max(1e-12),
    }
}

/// Formats a sweep as the `BENCH_fleet.json` document.
pub fn bench_report_json(mode: &str, points: &[FleetSizePoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"policy\": \"least-loaded\",\n");
    out.push_str("  \"autoscaler\": \"reactive\",\n");
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"servers\": {},\n", p.servers));
        out.push_str(&format!("      \"steps\": {},\n", p.steps));
        out.push_str(&format!("      \"step_ms\": {:.6},\n", p.step_ms));
        out.push_str(&format!("      \"routing_ms\": {:.6},\n", p.routing_ms));
        out.push_str(&format!("      \"dispatch_ms\": {:.6},\n", p.dispatch_ms));
        out.push_str(&format!("      \"signals_ms\": {:.6},\n", p.signals_ms));
        out.push_str(&format!("      \"control_plane_ms\": {:.6},\n", p.control_plane_ms));
        out.push_str(&format!("      \"legacy_step_ms\": {:.6},\n", p.legacy_step_ms));
        out.push_str(&format!(
            "      \"legacy_control_plane_ms\": {:.6},\n",
            p.legacy_control_plane_ms
        ));
        out.push_str(&format!("      \"control_plane_speedup\": {:.3}\n", p.control_plane_speedup));
        out.push_str(if i + 1 == points.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Keys every result entry must carry, each with a numeric value.
const RESULT_KEYS: [&str; 10] = [
    "servers",
    "steps",
    "step_ms",
    "routing_ms",
    "dispatch_ms",
    "signals_ms",
    "control_plane_ms",
    "legacy_step_ms",
    "legacy_control_plane_ms",
    "control_plane_speedup",
];

/// Validates a `BENCH_fleet.json` document against the `v1` schema: the
/// schema tag, a mode, at least one result entry, and every entry carrying
/// each required key with a parseable numeric value.  Hand-rolled because
/// the workspace vendors no JSON parser; the format is equally hand-rolled
/// ([`bench_report_json`]), so substring checks are exact, not heuristic.
pub fn validate_bench_json(doc: &str) -> Result<(), String> {
    if !doc.contains(&format!("\"schema\": \"{BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {BENCH_SCHEMA:?}"));
    }
    if !doc.contains("\"mode\": \"") {
        return Err("missing \"mode\" field".into());
    }
    let entries = doc.matches("\"servers\":").count();
    if entries == 0 {
        return Err("no result entries".into());
    }
    for key in RESULT_KEYS {
        let needle = format!("\"{key}\":");
        let mut found = 0;
        let mut rest = doc;
        while let Some(pos) = rest.find(&needle) {
            rest = &rest[pos + needle.len()..];
            let value: String =
                rest.trim_start().chars().take_while(|c| !",}\n".contains(*c)).collect();
            let value = value.trim();
            value
                .parse::<f64>()
                .map_err(|_| format!("key {key:?} has non-numeric value {value:?}"))?;
            found += 1;
        }
        if found != entries {
            return Err(format!("expected {entries} {key:?} entries, found {found}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_point(servers: usize) -> FleetSizePoint {
        FleetSizePoint {
            servers,
            steps: 4,
            step_ms: 1.5,
            routing_ms: 0.2,
            dispatch_ms: 0.3,
            signals_ms: 0.1,
            control_plane_ms: 0.6,
            legacy_step_ms: 3.0,
            legacy_control_plane_ms: 2.1,
            control_plane_speedup: 3.5,
        }
    }

    #[test]
    fn report_round_trips_the_validator() {
        let doc = bench_report_json("full", &[fake_point(100), fake_point(1_000)]);
        validate_bench_json(&doc).expect("generated report must validate");
        assert_eq!(doc.matches("\"servers\":").count(), 2);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_bench_json("{}").is_err());
        let doc = bench_report_json("full", &[fake_point(100)]);
        assert!(validate_bench_json(&doc.replace("heracles-fleet-bench/v1", "v0")).is_err());
        assert!(validate_bench_json(&doc.replace("\"dispatch_ms\":", "\"elided\":")).is_err());
        assert!(validate_bench_json(&doc.replace("\"step_ms\": 1.500000", "\"step_ms\": oops"))
            .is_err());
    }

    #[test]
    fn tiny_sweep_measures_and_stays_equivalent() {
        // measure_fleet_size asserts batched == legacy internally; a tiny
        // fleet keeps this a unit test rather than a benchmark.
        let point = measure_fleet_size(24, 3);
        assert_eq!(point.servers, 24);
        assert!(point.step_ms > 0.0);
        assert!(point.control_plane_ms > 0.0);
        assert!(point.legacy_control_plane_ms > 0.0);
        let doc = bench_report_json("smoke", &[point]);
        validate_bench_json(&doc).expect("smoke report must validate");
    }
}
