//! The tracked fleet-size benchmark behind `BENCH_fleet.json`: per-step
//! control-plane cost of the sharded store + batched dispatch scheduler
//! against the legacy flat-store per-job scanner, and per-step
//! *server-plane* cost of the event-driven core against the stepped
//! oracle, swept over fleet sizes.
//!
//! The control-plane arms run the *same* elastic scenario —
//! compressed-diurnal mixed-service demand over a mixed-generation fleet
//! with a Poisson job stream scaled to fleet size, driven by the reactive
//! autoscaler.  The server-plane arms run a *steady* scenario (one held
//! demand sample, no job stream) where the event-driven core can actually
//! quiesce leaves, timed only after the controllers settle.  Every pair
//! asserts its [`FleetResult`]s are identical step for step, so every
//! published speedup is also an equivalence check.  The control-plane
//! split (routing / dispatch / signals) comes from [`ControlPlaneProfile`];
//! the server-plane numbers from `ServerPlaneProfile`.
//!
//! The v3 schema adds an energy-metering overhead pair: the identical
//! elastic scenario with the [`heracles_fleet::EnergyMeter`] ledgers
//! installed vs off (best-of-three each arm, results asserted
//! bit-identical — the meter is a read-only shadow).  Full-mode artifacts
//! must hold the metered / unmetered ratio at or under
//! [`METERING_OVERHEAD_GATE`] at every sweep size.
//!
//! The report is hand-formatted JSON (the workspace deliberately vendors no
//! JSON serializer) with a matching [`validate_bench_json`] used by the CI
//! smoke step, so a malformed artifact fails fast instead of silently
//! drifting.

use std::time::Instant;

use heracles_autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet};
use heracles_colo::ColoConfig;
use heracles_fleet::{
    BalancerKind, ControlPlaneProfile, EnergyConfig, FleetConfig, FleetResult, FleetSim,
    GenerationMix, JobStreamConfig, PolicyKind, ShardingMode, SimCore,
};
use heracles_hw::ServerConfig;
use heracles_workloads::ServiceMix;

/// Schema tag stamped into (and required from) every bench report.
pub const BENCH_SCHEMA: &str = "heracles-fleet-bench/v3";

/// The headline gate CI holds the committed artifact to: at the largest
/// full-mode sweep point, the event-driven server plane must step a steady
/// fleet at least this many times faster than the stepped oracle.
pub const SERVER_PLANE_SPEEDUP_GATE: f64 = 5.0;

/// Ceiling on the energy-metering overhead ratio (metered step wall time
/// over unmetered) a full-mode artifact may report at any sweep size: the
/// meter's ledgers must cost no more than 5% of the step.
pub const METERING_OVERHEAD_GATE: f64 = 1.05;

/// One measured sweep point: per-step wall-clock milliseconds for the
/// sharded/batched arm, its control-plane split, and the legacy arm's
/// numbers alongside for the headline speedup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSizePoint {
    /// Initial fleet size (the autoscaler may grow or shrink it mid-run).
    pub servers: usize,
    /// Steps each arm was driven for.
    pub steps: usize,
    /// Whole-step wall time of the sharded/batched arm, ms per step.
    pub step_ms: f64,
    /// Traffic-plane routing share of the step, ms.
    pub routing_ms: f64,
    /// Dispatch (queue take + round plan + placement) share, ms.
    pub dispatch_ms: f64,
    /// Autoscaler signal-assembly share, ms.
    pub signals_ms: f64,
    /// Routing + dispatch + signals, ms per step.
    pub control_plane_ms: f64,
    /// Whole-step wall time of the legacy arm, ms per step.
    pub legacy_step_ms: f64,
    /// The legacy arm's control-plane time, ms per step.
    pub legacy_control_plane_ms: f64,
    /// `legacy_control_plane_ms / control_plane_ms`.
    pub control_plane_speedup: f64,
    /// Server-plane (parallel leaf stepping) wall time of the event-driven
    /// core on the steady scenario, ms per measured step.
    pub server_plane_ms: f64,
    /// The stepped oracle's server-plane wall time on the identical steady
    /// scenario, ms per measured step.
    pub stepped_server_plane_ms: f64,
    /// `stepped_server_plane_ms / server_plane_ms`.
    pub server_plane_speedup: f64,
    /// Mean leaves woken (ran at least one full window) per measured step
    /// on the event-driven core.
    pub woken_leaves_per_step: f64,
    /// Whole-step wall time with the energy meter installed, ms per step
    /// (best of three runs).
    pub metered_step_ms: f64,
    /// Whole-step wall time of the identical scenario with metering off,
    /// ms per step (best of three runs).
    pub unmetered_step_ms: f64,
    /// `metered_step_ms / unmetered_step_ms` — the ratio
    /// [`METERING_OVERHEAD_GATE`] caps in full mode.
    pub metering_overhead: f64,
}

/// Builds one benchmark arm: the compressed-diurnal elastic scenario at the
/// given fleet size, with the control plane pinned to either the
/// sharded/batched path or the legacy flat-store per-job path.
///
/// The colo plane is kept at a small request sample on purpose: this
/// benchmark tracks *scheduler* cost, and the per-leaf queueing simulation
/// would otherwise dominate wall time without exercising the control plane
/// at all.  Both arms share the sample size, so it cancels out of the
/// speedup.
pub fn bench_fleet(
    servers: usize,
    steps: usize,
    sharding: ShardingMode,
    batch_dispatch: bool,
) -> ElasticFleet {
    let base = FleetConfig {
        servers,
        steps,
        windows_per_step: 2,
        seed: 7,
        services: ServiceMix::mixed_frontend(),
        balancer: BalancerKind::SlackAware,
        mix: GenerationMix::mixed_datacenter(),
        sharding,
        batch_dispatch,
        colo: ColoConfig { requests_per_window: 40, ..ColoConfig::fast_test() },
        ..FleetConfig::default()
    };
    let config = AutoscaleConfig::diurnal(base);
    ElasticFleet::new(
        config,
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        AutoscaleKind::Reactive,
    )
}

/// Drives one arm to its horizon and returns its control-plane profile,
/// total wall seconds and the finished [`FleetResult`].
fn run_arm(
    servers: usize,
    steps: usize,
    sharding: ShardingMode,
    batch_dispatch: bool,
) -> (ControlPlaneProfile, f64, FleetResult) {
    let mut fleet = bench_fleet(servers, steps, sharding, batch_dispatch);
    let started = Instant::now();
    for _ in 0..steps {
        fleet.step_once();
    }
    let wall_s = started.elapsed().as_secs_f64();
    let profile = fleet.control_plane_profile();
    (profile, wall_s, fleet.finish().fleet)
}

/// Builds the metering-overhead arm: the identical elastic scenario as
/// [`bench_fleet`] on the sharded/batched control plane, with the energy
/// meter's ledgers installed or not.
fn metering_fleet(servers: usize, steps: usize, metering: bool) -> ElasticFleet {
    let base = FleetConfig {
        servers,
        steps,
        windows_per_step: 2,
        seed: 7,
        services: ServiceMix::mixed_frontend(),
        balancer: BalancerKind::SlackAware,
        mix: GenerationMix::mixed_datacenter(),
        sharding: ShardingMode::PerPool,
        batch_dispatch: true,
        energy: if metering { EnergyConfig::metered() } else { EnergyConfig::default() },
        colo: ColoConfig { requests_per_window: 40, ..ColoConfig::fast_test() },
        ..FleetConfig::default()
    };
    let config = AutoscaleConfig::diurnal(base);
    ElasticFleet::new(
        config,
        ServerConfig::default_haswell(),
        PolicyKind::LeastLoaded,
        AutoscaleKind::Reactive,
    )
}

/// Measures the energy-metering overhead pair at one size: best-of-three
/// whole-run wall seconds for metered and unmetered arms on the identical
/// scenario, asserting bit-identical results (the meter is a read-only
/// shadow — any divergence is a correctness bug, not an overhead).
/// Returns `(metered_ms_per_step, unmetered_ms_per_step)`.
pub fn measure_metering_overhead(servers: usize, steps: usize) -> (f64, f64) {
    let mut walls = [f64::INFINITY; 2];
    let mut results: [Option<FleetResult>; 2] = [None, None];
    for _ in 0..3 {
        for (arm, metering) in [true, false].into_iter().enumerate() {
            let mut fleet = metering_fleet(servers, steps, metering);
            let started = Instant::now();
            for _ in 0..steps {
                fleet.step_once();
            }
            walls[arm] = walls[arm].min(started.elapsed().as_secs_f64());
            results[arm] = Some(fleet.finish().fleet);
        }
    }
    let metered = results[0].take().expect("three rounds ran");
    let unmetered = results[1].take().expect("three rounds ran");
    assert_eq!(
        metered.steps, unmetered.steps,
        "the energy meter perturbed the simulation (per-step metrics)"
    );
    assert_eq!(
        metered.jobs, unmetered.jobs,
        "the energy meter perturbed the simulation (job ledger)"
    );
    let per_step_ms = |seconds: f64| seconds * 1e3 / steps as f64;
    (per_step_ms(walls[0]), per_step_ms(walls[1]))
}

/// Warmup steps before the timed server-plane segment: the per-leaf
/// controllers keep nudging allocations for ~35 steps while they converge
/// on the held demand, and every nudge is a legitimate wake.  The timed
/// segment starts only after the fleet has provably gone quiescent.
const SERVER_PLANE_WARMUP: usize = 40;
/// Timed steps of the server-plane measurement.
const SERVER_PLANE_MEASURE: usize = 8;

/// Builds one server-plane benchmark arm: a static fleet under one held
/// demand sample (no BE job stream), so after the controllers settle every
/// leaf is provably steady and the event-driven core can quiesce it.  The
/// capacity-weighted balancer keeps per-leaf loads bit-constant across
/// steps, which is what makes the scenario a pure measurement of the two
/// cores' stepping cost rather than of re-certification churn.
fn server_plane_fleet(servers: usize, core: SimCore) -> FleetSim {
    let steps = SERVER_PLANE_WARMUP + SERVER_PLANE_MEASURE;
    let config = FleetConfig {
        servers,
        steps,
        windows_per_step: 2,
        seed: 7,
        services: ServiceMix::mixed_frontend(),
        balancer: BalancerKind::CapacityWeighted,
        mix: GenerationMix::mixed_datacenter(),
        sim_core: core,
        demand_hold_steps: steps,
        jobs: JobStreamConfig { arrivals_per_step: 0.0, ..JobStreamConfig::default() },
        colo: ColoConfig { requests_per_window: 40, ..ColoConfig::fast_test() },
        ..FleetConfig::default()
    };
    FleetSim::new(config, ServerConfig::default_haswell(), PolicyKind::LeastLoaded)
}

/// Server-plane cost of one core on the steady scenario: `(ms per measured
/// step, woken leaves per measured step, result)`.  Only the post-warmup
/// segment is timed.
fn run_server_plane_arm(servers: usize, core: SimCore) -> (f64, f64, FleetResult) {
    let mut sim = server_plane_fleet(servers, core);
    for _ in 0..SERVER_PLANE_WARMUP {
        sim.step_once();
    }
    let warm = *sim.server_plane_profile();
    let started = Instant::now();
    for _ in 0..SERVER_PLANE_MEASURE {
        sim.step_once();
    }
    let wall_s = started.elapsed().as_secs_f64();
    let profile = *sim.server_plane_profile();
    let woken =
        (profile.woken_leaf_steps - warm.woken_leaf_steps) as f64 / SERVER_PLANE_MEASURE as f64;
    (wall_s * 1e3 / SERVER_PLANE_MEASURE as f64, woken, sim.into_result())
}

/// Measures the steady-fleet server-plane pair at one size: the
/// event-driven core against the stepped oracle on the identical scenario,
/// asserting bit-identical results.  Returns `(event_ms, stepped_ms,
/// woken_leaves_per_step)`.
pub fn measure_server_plane(servers: usize) -> (f64, f64, f64) {
    let (event_ms, woken, event_result) = run_server_plane_arm(servers, SimCore::EventDriven);
    let (stepped_ms, _, stepped_result) = run_server_plane_arm(servers, SimCore::Stepped);
    assert_eq!(
        event_result.steps, stepped_result.steps,
        "event-driven core diverged from the stepped oracle (per-step metrics)"
    );
    assert_eq!(
        event_result.jobs, stepped_result.jobs,
        "event-driven core diverged from the stepped oracle (job ledger)"
    );
    (event_ms, stepped_ms, woken)
}

/// Measures one sweep point: runs the sharded/batched arm and the legacy
/// arm on the identical scenario, asserts they produced the same schedule,
/// then runs the steady server-plane pair (event-driven vs stepped) at the
/// same size, and returns all per-step costs.
///
/// # Panics
///
/// Panics if any arm pair diverges — a regression in the equivalences the
/// property tests pin would surface here too, on fleets far larger than
/// proptest can afford.
pub fn measure_fleet_size(servers: usize, steps: usize) -> FleetSizePoint {
    let (profile, wall_s, result) = run_arm(servers, steps, ShardingMode::PerPool, true);
    let (legacy_profile, legacy_wall_s, legacy_result) =
        run_arm(servers, steps, ShardingMode::Single, false);
    assert_eq!(
        result.steps, legacy_result.steps,
        "sharded/batched arm diverged from the legacy scheduler (per-step metrics)"
    );
    assert_eq!(
        result.jobs, legacy_result.jobs,
        "sharded/batched arm diverged from the legacy scheduler (job ledger)"
    );
    let (server_plane_ms, stepped_server_plane_ms, woken_leaves_per_step) =
        measure_server_plane(servers);
    let (metered_step_ms, unmetered_step_ms) = measure_metering_overhead(servers, steps);
    let per_step_ms = |seconds: f64| seconds * 1e3 / steps as f64;
    FleetSizePoint {
        servers,
        steps,
        step_ms: per_step_ms(wall_s),
        routing_ms: per_step_ms(profile.routing_s),
        dispatch_ms: per_step_ms(profile.dispatch_s),
        signals_ms: per_step_ms(profile.signals_s),
        control_plane_ms: profile.per_step_ms(),
        legacy_step_ms: per_step_ms(legacy_wall_s),
        legacy_control_plane_ms: legacy_profile.per_step_ms(),
        control_plane_speedup: legacy_profile.per_step_ms() / profile.per_step_ms().max(1e-12),
        server_plane_ms,
        stepped_server_plane_ms,
        server_plane_speedup: stepped_server_plane_ms / server_plane_ms.max(1e-12),
        woken_leaves_per_step,
        metered_step_ms,
        unmetered_step_ms,
        metering_overhead: metered_step_ms / unmetered_step_ms.max(1e-12),
    }
}

/// Formats a sweep as the `BENCH_fleet.json` document.
pub fn bench_report_json(mode: &str, points: &[FleetSizePoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"policy\": \"least-loaded\",\n");
    out.push_str("  \"autoscaler\": \"reactive\",\n");
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"servers\": {},\n", p.servers));
        out.push_str(&format!("      \"steps\": {},\n", p.steps));
        out.push_str(&format!("      \"step_ms\": {:.6},\n", p.step_ms));
        out.push_str(&format!("      \"routing_ms\": {:.6},\n", p.routing_ms));
        out.push_str(&format!("      \"dispatch_ms\": {:.6},\n", p.dispatch_ms));
        out.push_str(&format!("      \"signals_ms\": {:.6},\n", p.signals_ms));
        out.push_str(&format!("      \"control_plane_ms\": {:.6},\n", p.control_plane_ms));
        out.push_str(&format!("      \"legacy_step_ms\": {:.6},\n", p.legacy_step_ms));
        out.push_str(&format!(
            "      \"legacy_control_plane_ms\": {:.6},\n",
            p.legacy_control_plane_ms
        ));
        out.push_str(&format!(
            "      \"control_plane_speedup\": {:.3},\n",
            p.control_plane_speedup
        ));
        out.push_str(&format!("      \"server_plane_ms\": {:.6},\n", p.server_plane_ms));
        out.push_str(&format!(
            "      \"stepped_server_plane_ms\": {:.6},\n",
            p.stepped_server_plane_ms
        ));
        out.push_str(&format!("      \"server_plane_speedup\": {:.3},\n", p.server_plane_speedup));
        out.push_str(&format!(
            "      \"woken_leaves_per_step\": {:.3},\n",
            p.woken_leaves_per_step
        ));
        out.push_str(&format!("      \"metered_step_ms\": {:.6},\n", p.metered_step_ms));
        out.push_str(&format!("      \"unmetered_step_ms\": {:.6},\n", p.unmetered_step_ms));
        out.push_str(&format!("      \"metering_overhead\": {:.3}\n", p.metering_overhead));
        out.push_str(if i + 1 == points.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Keys every result entry must carry, each with a numeric value.
const RESULT_KEYS: [&str; 17] = [
    "servers",
    "steps",
    "step_ms",
    "routing_ms",
    "dispatch_ms",
    "signals_ms",
    "control_plane_ms",
    "legacy_step_ms",
    "legacy_control_plane_ms",
    "control_plane_speedup",
    "server_plane_ms",
    "stepped_server_plane_ms",
    "server_plane_speedup",
    "woken_leaves_per_step",
    "metered_step_ms",
    "unmetered_step_ms",
    "metering_overhead",
];

/// Validates a `BENCH_fleet.json` document against the `v1` schema: the
/// schema tag, a mode, at least one result entry, and every entry carrying
/// each required key with a parseable numeric value.  Hand-rolled because
/// the workspace vendors no JSON parser; the format is equally hand-rolled
/// ([`bench_report_json`]), so substring checks are exact, not heuristic.
pub fn validate_bench_json(doc: &str) -> Result<(), String> {
    if !doc.contains(&format!("\"schema\": \"{BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {BENCH_SCHEMA:?}"));
    }
    if !doc.contains("\"mode\": \"") {
        return Err("missing \"mode\" field".into());
    }
    let entries = doc.matches("\"servers\":").count();
    if entries == 0 {
        return Err("no result entries".into());
    }
    for key in RESULT_KEYS {
        let needle = format!("\"{key}\":");
        let mut found = 0;
        let mut rest = doc;
        while let Some(pos) = rest.find(&needle) {
            rest = &rest[pos + needle.len()..];
            let value: String =
                rest.trim_start().chars().take_while(|c| !",}\n".contains(*c)).collect();
            let value = value.trim();
            value
                .parse::<f64>()
                .map_err(|_| format!("key {key:?} has non-numeric value {value:?}"))?;
            found += 1;
        }
        if found != entries {
            return Err(format!("expected {entries} {key:?} entries, found {found}"));
        }
    }
    Ok(())
}

/// Scans a bench document for one numeric key's values, in entry order.
fn scan_values(doc: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut values = Vec::new();
    let mut rest = doc;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let value: String =
            rest.trim_start().chars().take_while(|c| !",}\n".contains(*c)).collect();
        if let Ok(v) = value.trim().parse::<f64>() {
            values.push(v);
        }
    }
    values
}

/// The CI performance gate on a *full-mode* bench document: the largest
/// sweep point must report an event-driven server-plane speedup of at
/// least [`SERVER_PLANE_SPEEDUP_GATE`].  Fast/smoke documents pass
/// unconditionally — undersized sweeps on CI-grade machines measure noise,
/// and the gate exists to keep the *committed* full-mode artifact honest.
pub fn check_server_plane_gate(doc: &str) -> Result<(), String> {
    if !doc.contains("\"mode\": \"full\"") {
        return Ok(());
    }
    let servers = scan_values(doc, "servers");
    let speedups = scan_values(doc, "server_plane_speedup");
    if servers.len() != speedups.len() || servers.is_empty() {
        return Err("malformed document: servers/server_plane_speedup mismatch".into());
    }
    let (largest, speedup) = servers
        .iter()
        .zip(&speedups)
        .max_by(|a, b| a.0.total_cmp(b.0))
        .map(|(s, v)| (*s, *v))
        .expect("nonempty");
    if speedup < SERVER_PLANE_SPEEDUP_GATE {
        return Err(format!(
            "server-plane speedup gate failed: {speedup:.3}x at {largest} servers, \
             need >= {SERVER_PLANE_SPEEDUP_GATE}x"
        ));
    }
    Ok(())
}

/// The CI energy gate on a *full-mode* bench document: every sweep point
/// must report a metering overhead ratio at or under
/// [`METERING_OVERHEAD_GATE`] — the meter's ledgers may not cost more than
/// 5% of the step at any fleet size.  Fast/smoke documents pass
/// unconditionally, for the same reason as
/// [`check_server_plane_gate`].
pub fn check_metering_overhead_gate(doc: &str) -> Result<(), String> {
    if !doc.contains("\"mode\": \"full\"") {
        return Ok(());
    }
    let servers = scan_values(doc, "servers");
    let overheads = scan_values(doc, "metering_overhead");
    if servers.len() != overheads.len() || servers.is_empty() {
        return Err("malformed document: servers/metering_overhead mismatch".into());
    }
    for (s, o) in servers.iter().zip(&overheads) {
        if *o > METERING_OVERHEAD_GATE {
            return Err(format!(
                "metering overhead gate failed: {o:.3}x at {s} servers, \
                 need <= {METERING_OVERHEAD_GATE}x"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_point(servers: usize) -> FleetSizePoint {
        FleetSizePoint {
            servers,
            steps: 4,
            step_ms: 1.5,
            routing_ms: 0.2,
            dispatch_ms: 0.3,
            signals_ms: 0.1,
            control_plane_ms: 0.6,
            legacy_step_ms: 3.0,
            legacy_control_plane_ms: 2.1,
            control_plane_speedup: 3.5,
            server_plane_ms: 0.4,
            stepped_server_plane_ms: 2.8,
            server_plane_speedup: 7.0,
            woken_leaves_per_step: 1.5,
            metered_step_ms: 1.52,
            unmetered_step_ms: 1.5,
            metering_overhead: 1.013,
        }
    }

    #[test]
    fn report_round_trips_the_validator() {
        let doc = bench_report_json("full", &[fake_point(100), fake_point(1_000)]);
        validate_bench_json(&doc).expect("generated report must validate");
        assert_eq!(doc.matches("\"servers\":").count(), 2);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_bench_json("{}").is_err());
        let doc = bench_report_json("full", &[fake_point(100)]);
        assert!(validate_bench_json(&doc.replace("heracles-fleet-bench/v3", "v0")).is_err());
        assert!(validate_bench_json(&doc.replace("\"dispatch_ms\":", "\"elided\":")).is_err());
        assert!(validate_bench_json(&doc.replace("\"step_ms\": 1.500000", "\"step_ms\": oops"))
            .is_err());
        assert!(
            validate_bench_json(&doc.replace("\"server_plane_speedup\":", "\"gone\":")).is_err(),
            "a v1-shaped document without the server-plane keys must be rejected"
        );
        assert!(
            validate_bench_json(&doc.replace("\"metering_overhead\":", "\"gone\":")).is_err(),
            "a v2-shaped document without the energy keys must be rejected"
        );
    }

    #[test]
    fn metering_gate_caps_every_full_mode_entry() {
        let mut costly = fake_point(1_000);
        costly.metering_overhead = 1.09;
        let doc = bench_report_json("full", &[fake_point(100), costly, fake_point(10_000)]);
        assert!(
            check_metering_overhead_gate(&doc).is_err(),
            "1.09x at any size must fail the 1.05x gate"
        );
        let doc = bench_report_json("full", &[fake_point(100), fake_point(10_000)]);
        check_metering_overhead_gate(&doc).expect("1.013x everywhere passes");
        // Fast/smoke documents are exempt.
        let mut smoke = fake_point(32);
        smoke.metering_overhead = 2.0;
        let doc = bench_report_json("smoke", &[smoke]);
        check_metering_overhead_gate(&doc).expect("smoke sweeps are not gated");
    }

    #[test]
    fn server_plane_gate_holds_full_mode_to_the_headline() {
        let mut slow = fake_point(10_000);
        slow.server_plane_speedup = 3.0;
        let fast100 = fake_point(100);
        // Full mode: the *largest* entry decides, regardless of order.
        let doc = bench_report_json("full", &[fast100, slow]);
        assert!(check_server_plane_gate(&doc).is_err(), "3x at 10k must fail the 5x gate");
        let mut quick = fake_point(10_000);
        quick.server_plane_speedup = 6.2;
        let doc = bench_report_json("full", &[fast100, quick]);
        check_server_plane_gate(&doc).expect("6.2x at 10k passes");
        // Fast/smoke documents are exempt.
        let mut smoke = fake_point(32);
        smoke.server_plane_speedup = 0.9;
        let doc = bench_report_json("smoke", &[smoke]);
        check_server_plane_gate(&doc).expect("smoke sweeps are not gated");
    }

    #[test]
    fn tiny_sweep_measures_and_stays_equivalent() {
        // measure_fleet_size asserts batched == legacy internally; a tiny
        // fleet keeps this a unit test rather than a benchmark.
        let point = measure_fleet_size(24, 3);
        assert_eq!(point.servers, 24);
        assert!(point.step_ms > 0.0);
        assert!(point.control_plane_ms > 0.0);
        assert!(point.legacy_control_plane_ms > 0.0);
        assert!(point.server_plane_ms > 0.0);
        assert!(point.stepped_server_plane_ms > 0.0);
        assert!(
            point.woken_leaves_per_step < 24.0,
            "the settled steady fleet never quiesced a single leaf: {point:?}"
        );
        assert!(point.metered_step_ms > 0.0);
        assert!(point.unmetered_step_ms > 0.0);
        assert!(point.metering_overhead > 0.0);
        let doc = bench_report_json("smoke", &[point]);
        validate_bench_json(&doc).expect("smoke report must validate");
    }
}
