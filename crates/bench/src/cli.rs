//! Minimal command-line parsing shared by the figure binaries.
//!
//! The binaries take a handful of `--name value` overrides on top of their
//! defaults; this helper keeps the parsing in one place without pulling in
//! an argument-parsing dependency.  Both `--name value` and `--name=value`
//! spellings are accepted.

use std::fmt::Display;
use std::str::FromStr;

/// A parsed argument list.
///
/// # Example
///
/// ```
/// use heracles_bench::cli::Args;
/// let args = Args::from_vec(vec!["--fast".into(), "--leaves=6".into()]);
/// assert!(args.flag("--fast"));
/// assert_eq!(args.value("--leaves", 12usize), 6);
/// assert_eq!(args.value("--steps", 144usize), 144);
/// ```
#[derive(Debug, Clone)]
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures the process arguments (without the program name).
    pub fn from_env() -> Self {
        Args { argv: std::env::args().skip(1).collect() }
    }

    /// Wraps an explicit argument list (used by tests).
    pub fn from_vec(argv: Vec<String>) -> Self {
        Args { argv }
    }

    /// True if the bare flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// The value following `name` (or inline after `name=`), parsed as `T`;
    /// `default` when the option is absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the option is present but has no value
    /// or the value does not parse — these binaries have no error channel
    /// beyond exiting.
    pub fn value<T>(&self, name: &str, default: T) -> T
    where
        T: FromStr,
        T::Err: Display,
    {
        let prefix = format!("{name}=");
        for (i, arg) in self.argv.iter().enumerate() {
            let raw = if let Some(inline) = arg.strip_prefix(&prefix) {
                inline
            } else if arg == name {
                self.argv.get(i + 1).unwrap_or_else(|| panic!("option {name} expects a value"))
            } else {
                continue;
            };
            return raw.parse().unwrap_or_else(|e| panic!("invalid value {raw:?} for {name}: {e}"));
        }
        default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_vec(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_and_values_parse_in_both_spellings() {
        let a = args(&["--fast", "--leaves", "8", "--seed=7"]);
        assert!(a.flag("--fast"));
        assert!(!a.flag("--quick"));
        assert_eq!(a.value("--leaves", 12usize), 8);
        assert_eq!(a.value("--seed", 42u64), 7);
        assert_eq!(a.value("--steps", 144usize), 144);
    }

    #[test]
    fn string_values_parse_too() {
        let a = args(&["--policy", "first-fit"]);
        assert_eq!(a.value("--policy", "all".to_string()), "first-fit");
    }

    #[test]
    fn generation_mixes_parse_via_fromstr() {
        use heracles_fleet::GenerationMix;
        let a = args(&["--mix", "0.25:0.25"]);
        assert_eq!(
            a.value("--mix", GenerationMix::homogeneous()),
            GenerationMix::mixed_datacenter()
        );
        let b = args(&["--mix=mixed"]);
        assert_eq!(
            b.value("--mix", GenerationMix::homogeneous()),
            GenerationMix::mixed_datacenter()
        );
        assert_eq!(
            args(&[]).value("--mix", GenerationMix::homogeneous()),
            GenerationMix::homogeneous()
        );
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_mix_value_panics() {
        args(&["--mix", "lots-of-everything"])
            .value("--mix", heracles_fleet::GenerationMix::homogeneous());
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn trailing_option_without_value_panics() {
        args(&["--leaves"]).value("--leaves", 1usize);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn unparsable_value_panics() {
        args(&["--leaves", "many"]).value("--leaves", 1usize);
    }
}
