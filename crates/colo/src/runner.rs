//! The policy-driven colocation runner.

use std::collections::VecDeque;

use heracles_core::{ColocationPolicy, Measurements};
use heracles_hw::{Server, ServerConfig};
use heracles_isolation::CfsShares;
use heracles_sim::{LatencyRecorder, SimRng, SimTime};
use heracles_workloads::{BeWorkload, LcWorkload};

use heracles_workloads::BeKind;

use crate::config::ColoConfig;
use crate::record::{ColoSummary, WindowRecord};

/// Everything a measurement window's outcome depends on, besides the seed
/// and the window's phase within the SLO merge deque.
///
/// Each window derives its RNG purely from `(seed, phase)` instead of
/// consuming a sequential stream, so two windows at the same phase draw the
/// same underlying randomness — the invariant the fast path below is built
/// on.  Windows under changing inputs take fresh phases (full sample
/// diversity, exactly like a sequential stream); a leaf that has been
/// steady for a whole SLO cycle starts recycling phases with the deque's
/// period, at which point its windows repeat bitwise.  These inputs are
/// compared directly ([`PartialEq`], no hashing) to decide steadiness, so
/// nothing can ever fake a quiescent window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WindowInputs {
    load_bits: u64,
    lc_cores: usize,
    be_cores: usize,
    be_shares_lc_cores: bool,
    cat_enabled: bool,
    lc_ways: usize,
    be_ways: usize,
    be_freq_cap_bits: Option<u64>,
    be_net_ceil_bits: Option<u64>,
    package_cap_bits: Option<u64>,
    be_kind: Option<BeKind>,
    be_running: bool,
}

/// Stream-id base for the per-window RNG forks (xor'd with the deque
/// phase).  An arbitrary constant keeping the window streams disjoint from
/// any other fork of the same seed.
const WINDOW_STREAM: u64 = 0xC010_57EA_D10C_A7ED;

/// What [`ColoRunner::advance`] reports back to the fleet for a batch of
/// windows: the per-step observation plus how many windows took which path.
#[derive(Debug, Clone, Copy)]
pub struct LeafAdvance {
    /// EMU of the batch's final window.
    pub last_emu: f64,
    /// Normalized BE throughput of the batch's final window.
    pub last_be_throughput: f64,
    /// Worst normalized tail latency across the batch.
    pub worst_normalized_latency: f64,
    /// Mean normalized tail latency across the batch's windows, accumulated
    /// in window order on both stepping paths so the value is bitwise
    /// identical whichever path served each window.
    pub mean_normalized_latency: f64,
    /// BE progress over the batch in core·seconds.
    pub be_progress_core_s: f64,
    /// Package energy over the batch in joules of simulated time (window
    /// watts × window seconds, summed in window order on both stepping
    /// paths so the value is bitwise identical whichever path served each
    /// window).
    pub energy_j: f64,
    /// Highest package power any window of the batch reported, in watts.
    pub max_power_w: f64,
    /// Whether the policy allowed BE execution after the batch.
    pub be_enabled: bool,
    /// Windows that ran the full simulation path.
    pub full_windows: u64,
    /// Windows satisfied by the steady-state fast path.
    pub fast_windows: u64,
}

/// Runs an LC workload (and optionally a BE workload) on one simulated server
/// under a colocation policy, one measurement window at a time.
///
/// # Example
///
/// ```
/// use heracles_baselines::LcOnly;
/// use heracles_colo::{ColoConfig, ColoRunner};
/// use heracles_hw::ServerConfig;
/// use heracles_workloads::LcWorkload;
///
/// let mut runner = ColoRunner::new(
///     ServerConfig::default_haswell(),
///     LcWorkload::websearch(),
///     None,
///     Box::new(LcOnly::new()),
///     ColoConfig::fast_test(),
/// );
/// let record = runner.step(0.5);
/// assert!(record.slo_met);
/// ```
pub struct ColoRunner {
    server: Server,
    lc: LcWorkload,
    be: Option<BeWorkload>,
    be_alone_progress: f64,
    policy: Box<dyn ColocationPolicy>,
    config: ColoConfig,
    cfs: CfsShares,
    now: SimTime,
    history: Vec<WindowRecord>,
    /// Latency samples of the most recent windows, merged into one SLO
    /// measurement (the paper's multi-second SLO window).
    recent_latencies: VecDeque<LatencyRecorder>,
    /// RNG phases of the same windows, kept in lockstep with
    /// `recent_latencies`: steady windows recycle the phase from the front
    /// (one SLO cycle ago), which is what makes their sample sets — and
    /// therefore their records — repeat bitwise.
    recent_phases: VecDeque<u64>,
    /// Inputs of the most recently executed window.
    last_inputs: Option<WindowInputs>,
    /// How many consecutive trailing windows shared `last_inputs`.
    steady_streak: usize,
    /// Raw (un-normalized) BE progress of the last window, kept so the fast
    /// path can replay `policy.tick` with a bitwise-identical measurement
    /// rather than re-deriving it from the normalized throughput.
    last_be_progress: f64,
    full_windows: u64,
    fast_windows: u64,
}

impl ColoRunner {
    /// Creates a runner and lets the policy set up its initial allocations.
    pub fn new(
        server_config: ServerConfig,
        lc: LcWorkload,
        be: Option<BeWorkload>,
        mut policy: Box<dyn ColocationPolicy>,
        config: ColoConfig,
    ) -> Self {
        let be_alone_progress = be.as_ref().map_or(1.0, |b| b.alone_progress(&server_config));
        let mut server = Server::new(server_config);
        policy.init(&mut server);
        ColoRunner {
            server,
            lc,
            be,
            be_alone_progress,
            policy,
            config,
            cfs: CfsShares::characterization_default(),
            now: SimTime::ZERO,
            history: Vec::new(),
            recent_latencies: VecDeque::new(),
            recent_phases: VecDeque::new(),
            last_inputs: None,
            steady_streak: 0,
            last_be_progress: 0.0,
            full_windows: 0,
            fast_windows: 0,
        }
    }

    /// The LC workload being served.
    pub fn lc(&self) -> &LcWorkload {
        &self.lc
    }

    /// The BE workload being colocated, if any.
    pub fn be(&self) -> Option<&BeWorkload> {
        self.be.as_ref()
    }

    /// Replaces the colocated BE workload (or removes it with `None`).
    ///
    /// The fleet scheduler attaches and detaches jobs as they are placed,
    /// preempted and completed; the EMU normalization denominator is
    /// re-profiled for the new workload.  The policy is re-initialised so
    /// the incoming job starts from the conservative initial allocation
    /// rather than inheriting the share grown for the previous job — handing
    /// a DRAM-hungry antagonist twenty cores that were tuned for a benign
    /// predecessor would blow through the SLO faster than the controller's
    /// poll can react, exactly like restarting the BE container does on a
    /// real node.
    pub fn set_be(&mut self, be: Option<BeWorkload>) {
        self.be_alone_progress =
            be.as_ref().map_or(1.0, |b| b.alone_progress(self.server.config()));
        self.be = be;
        self.policy.init(&mut self.server);
        // A swap invalidates steadiness even if the next window's inputs
        // happen to look identical: the policy was re-initialised.
        self.last_inputs = None;
        self.steady_streak = 0;
        self.last_be_progress = 0.0;
    }

    /// True if the policy currently allows BE tasks to execute.
    pub fn be_enabled(&self) -> bool {
        self.policy.be_enabled()
    }

    /// The RAPL-style package power cap currently imposed on this leaf.
    pub fn package_cap_w(&self) -> Option<f64> {
        self.server.allocations().package_cap_w()
    }

    /// Sets (or clears) the RAPL-style package power cap.  The cap is part
    /// of [`WindowInputs`], so changing it invalidates steadiness and the
    /// next window re-simulates in full under the new budget — capping is a
    /// behavioral knob, never a silent replay.
    pub fn set_package_cap_w(&mut self, cap: Option<f64>) {
        self.server.allocations_mut().set_package_cap_w(cap);
    }

    /// Turns the policy's decision tracing on or off (a no-op for policies
    /// that do not trace).
    pub fn set_trace(&mut self, enabled: bool) {
        self.policy.set_trace(enabled);
    }

    /// Drains the decision events the policy buffered since the last call.
    /// The fleet collects these once per step, in server order, so the
    /// parallel leaf stepping never writes to a shared recorder.
    pub fn take_trace(&mut self) -> Vec<heracles_telemetry::TraceEvent> {
        self.policy.take_trace()
    }

    /// Progress (in core-equivalents) the current BE workload achieves when
    /// it runs alone on the whole machine — the denominator that turns a
    /// window's raw BE progress into the normalized `be_throughput`.
    /// Multiplying `be_throughput` back by this value recovers the window's
    /// progress in core-equivalents, which is how the fleet scheduler
    /// accounts job demand in core·seconds.
    pub fn be_alone_progress(&self) -> f64 {
        self.be_alone_progress
    }

    /// The most recent window's record, if any window has run.
    pub fn last_record(&self) -> Option<&WindowRecord> {
        self.history.last()
    }

    /// The simulated server (allocations, counters, configuration).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The policy controlling the experiment.
    pub fn policy(&self) -> &dyn ColocationPolicy {
        self.policy.as_ref()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// All windows recorded so far.
    pub fn history(&self) -> &[WindowRecord] {
        &self.history
    }

    /// Summary statistics over all windows recorded so far.
    pub fn summary(&self) -> ColoSummary {
        ColoSummary::from_records(&self.history)
    }

    /// Summary statistics over the most recent `n` windows.
    pub fn summary_of_last(&self, n: usize) -> ColoSummary {
        let start = self.history.len().saturating_sub(n);
        ColoSummary::from_records(&self.history[start..])
    }

    /// Advances one measurement window at the given LC load and returns its
    /// record.  The policy observes the window's measurements afterwards and
    /// may adjust allocations for the next window.
    ///
    /// This always runs the full simulation path — it is the oracle the
    /// steady-state fast path inside [`advance`](Self::advance),
    /// [`run_steady`](Self::run_steady) and [`run_trace`](Self::run_trace)
    /// is tested against.
    pub fn step(&mut self, load: f64) -> WindowRecord {
        self.full_window(load)
    }

    /// The number of windows whose latency samples merge into one SLO
    /// measurement — also the period the RNG phases recycle with once a
    /// leaf has gone steady.
    fn phase_cap(&self) -> usize {
        self.config.slo_window_count.max(1)
    }

    /// Captures everything the next window's outcome depends on (beyond the
    /// seed and phase) from the current server/policy state.
    fn current_inputs(&self, load: f64) -> WindowInputs {
        let alloc = self.server.allocations();
        let be_running = self.be.is_some()
            && self.policy.be_enabled()
            && (alloc.be_cores() > 0 || alloc.be_shares_lc_cores());
        WindowInputs {
            load_bits: load.to_bits(),
            lc_cores: alloc.lc_cores(),
            be_cores: alloc.be_cores(),
            be_shares_lc_cores: alloc.be_shares_lc_cores(),
            cat_enabled: alloc.cat_enabled(),
            lc_ways: alloc.lc_ways(),
            be_ways: alloc.be_ways(),
            be_freq_cap_bits: alloc.be_freq_cap_ghz().map(f64::to_bits),
            be_net_ceil_bits: alloc.be_net_ceil_gbps().map(f64::to_bits),
            package_cap_bits: alloc.package_cap_w().map(f64::to_bits),
            be_kind: if be_running { self.be.as_ref().map(|b| b.kind()) } else { None },
            be_running,
        }
    }

    /// Records that a window with `inputs` just executed.
    fn note_window(&mut self, inputs: WindowInputs, fast: bool) {
        if self.last_inputs == Some(inputs) {
            self.steady_streak += 1;
        } else {
            self.steady_streak = 1;
            self.last_inputs = Some(inputs);
        }
        if fast {
            self.fast_windows += 1;
        } else {
            self.full_windows += 1;
        }
    }

    /// True when the runner has been steady long enough that the next window
    /// can take the fast path if its inputs stay unchanged.
    pub fn is_steady(&self) -> bool {
        self.steady_streak > self.phase_cap()
    }

    /// `(full, fast)` window counts since the runner was created.
    pub fn window_counts(&self) -> (u64, u64) {
        (self.full_windows, self.fast_windows)
    }

    /// The steady-state fast path: when the runner has executed more than a
    /// full phase cycle of windows with inputs identical to this window's,
    /// the full path's output is already known bitwise — the window's
    /// latency samples would equal the recorder at the front of the SLO
    /// deque (same inputs, same RNG phase), so the merged tail, counters and
    /// throughputs all repeat the previous record.  The deque is rotated,
    /// the record is replayed with the time advanced, and the policy still
    /// ticks for real (poll timers, cooldowns and growth cycling must keep
    /// running; if the tick changes allocations, the *next* window's input
    /// comparison falls back to the full path).
    ///
    /// Returns `None` whenever any of that is not provable, in which case
    /// the caller must run [`full_window`](Self::full_window).
    fn fast_window(&mut self, load: f64) -> Option<WindowRecord> {
        let cap = self.phase_cap();
        if self.steady_streak <= cap || self.recent_latencies.len() < cap {
            return None;
        }
        let load = load.clamp(0.0, 4.0);
        let inputs = self.current_inputs(load);
        if self.last_inputs != Some(inputs) {
            return None;
        }
        self.now += self.config.window;
        // Rotate the SLO deque: the window's fresh samples are bitwise
        // identical to the recorder leaving the front, so rotation
        // reproduces the full path's push-back/pop-front exactly.
        let recycled = self.recent_latencies.pop_front().expect("deque holds a full cycle");
        self.recent_latencies.push_back(recycled);
        let phase = self.recent_phases.pop_front().expect("phase deque matches latency deque");
        self.recent_phases.push_back(phase);
        let mut record = self.history.last().expect("a steady streak implies history").clone();
        record.time = self.now;
        let measurements = Measurements {
            tail_latency_s: record.tail_latency_s,
            load,
            be_progress: self.last_be_progress,
            counters: record.counters,
        };
        self.policy.tick(self.now, &mut self.server, &measurements);
        self.history.push(record.clone());
        self.note_window(inputs, true);
        Some(record)
    }

    /// One window through the shared stepping path: the fast path when
    /// provably exact (and allowed), the full simulation otherwise.
    fn window(&mut self, load: f64, allow_fast: bool) -> WindowRecord {
        if allow_fast {
            if let Some(record) = self.fast_window(load) {
                return record;
            }
        }
        self.full_window(load)
    }

    /// Advances `windows` consecutive windows at a constant load, returning
    /// the aggregate observation the fleet consumes.  `allow_fast` selects
    /// between the event-driven core (fast path permitted) and the stepped
    /// oracle (every window simulated in full); both run through the same
    /// accumulation arithmetic so their results are bitwise comparable.
    pub fn advance(&mut self, load: f64, windows: usize, allow_fast: bool) -> LeafAdvance {
        assert!(windows > 0, "advance needs at least one window");
        let window_s = self.config.window.as_secs_f64();
        let full_before = self.full_windows;
        let fast_before = self.fast_windows;
        let mut worst = 0.0f64;
        let mut latency_sum = 0.0f64;
        let mut progress = 0.0;
        let mut energy_j = 0.0;
        let mut max_power_w = 0.0f64;
        for _ in 0..windows {
            let record = self.window(load, allow_fast);
            worst = worst.max(record.normalized_latency);
            latency_sum += record.normalized_latency;
            progress += record.be_throughput * self.be_alone_progress * window_s;
            energy_j += record.counters.package_power_w * window_s;
            max_power_w = max_power_w.max(record.counters.package_power_w);
        }
        let last = self.history.last().expect("at least one window ran");
        LeafAdvance {
            last_emu: last.emu,
            last_be_throughput: last.be_throughput,
            worst_normalized_latency: worst,
            mean_normalized_latency: latency_sum / windows as f64,
            be_progress_core_s: progress,
            energy_j,
            max_power_w,
            be_enabled: self.policy.be_enabled(),
            full_windows: self.full_windows - full_before,
            fast_windows: self.fast_windows - fast_before,
        }
    }

    /// The full simulation path for one measurement window.
    fn full_window(&mut self, load: f64) -> WindowRecord {
        // Loads above 1.0 are real: a fleet's front-end balancer re-routes a
        // retired leaf's traffic onto the survivors, and a pool shrunk below
        // its demand runs its leaves *past* their peak — the M/G/c queue
        // then saturates and the tail latency shows it, which is exactly
        // what over-demand costs.  The cap only guards the simulation
        // against absurd inputs.
        let load = load.clamp(0.0, 4.0);
        self.now += self.config.window;
        let cfg = self.server.config().clone();

        let alloc = self.server.allocations().clone();
        let inputs = self.current_inputs(load);
        let be_running = inputs.be_running;
        // The window's randomness is a pure function of (seed, phase).  A
        // window under changing inputs draws a fresh phase (its own index),
        // so transients — where policies actually differ — see fully
        // independent noise.  Once the runner has been steady for a whole
        // SLO cycle, the phase recycles from `slo_window_count` windows ago:
        // from then on the sample sets repeat with the deque's period, the
        // merged tail freezes, and every steady window's record is provably
        // bitwise identical — the invariant the fast path below exploits.
        let phase = if self.last_inputs == Some(inputs) && self.steady_streak >= self.phase_cap() {
            *self.recent_phases.front().expect("a steady streak implies a full phase cycle")
        } else {
            self.history.len() as u64
        };
        let mut rng = SimRng::new(self.config.seed).fork(WINDOW_STREAM ^ phase);

        // Offered demands under the current allocations.
        let lc_footprint = self.lc.footprint_mb(load, &cfg);
        let be_footprint = if be_running {
            self.be.as_ref().map_or(0.0, |b| b.contention_footprint_mb())
        } else {
            0.0
        };
        let cache = self.server.cache_split(lc_footprint, be_footprint);
        let mut demand = self.lc.demand(load, alloc.lc_cores(), cache.lc_mb, &cfg);
        if be_running {
            let be = self.be.as_ref().expect("be_running implies a BE workload");
            let be_demand = be.demand(alloc.be_cores(), cache.be_mb);
            demand.be_active_cores = be_demand.be_active_cores;
            demand.be_compute_activity = be_demand.be_compute_activity;
            demand.be_dram_gbps_per_core = be_demand.be_dram_gbps_per_core;
            demand.be_llc_footprint_mb = be_demand.be_llc_footprint_mb;
            demand.be_net_offered_gbps = be_demand.be_net_offered_gbps;
            demand.smt_antagonist_intensity = be_demand.smt_antagonist_intensity;
        }
        let outcome = self.server.evaluate(&demand);

        // Scheduling interference applies only when the OS is allowed to run
        // BE threads on the LC cores (the OS-only baseline).
        let sched_pressure = if be_running && alloc.be_shares_lc_cores() {
            let be = self.be.as_ref().expect("be_running implies a BE workload");
            (alloc.be_cores() as f64 * be.compute_activity() / alloc.total_cores() as f64)
                .clamp(0.0, 1.0)
        } else {
            0.0
        };
        let cfs = self.cfs;
        let mut extra = move |rng: &mut SimRng| cfs.scheduling_delay_s(rng, sched_pressure);
        let extra_opt: Option<&mut dyn FnMut(&mut SimRng) -> f64> =
            if sched_pressure > 0.0 { Some(&mut extra) } else { None };

        let window = self.lc.simulate_window(
            &mut rng,
            load,
            alloc.lc_cores(),
            &outcome,
            &cfg,
            self.config.requests_per_window,
            extra_opt,
        );

        // Aggregate the last few windows into one SLO measurement so that the
        // tail estimate is statistically meaningful (the paper's controller
        // polls latency over 15 s for exactly this reason).
        self.recent_latencies.push_back(window.latencies.clone());
        self.recent_phases.push_back(phase);
        while self.recent_latencies.len() > self.config.slo_window_count.max(1) {
            self.recent_latencies.pop_front();
            self.recent_phases.pop_front();
        }
        let mut merged = LatencyRecorder::new();
        for rec in &self.recent_latencies {
            merged.merge(rec);
        }
        let tail_latency_s = merged.quantile(self.lc.slo().percentile);
        let normalized_latency = self.lc.slo().normalized(tail_latency_s);

        // BE progress and Effective Machine Utilization.
        let be_progress = if be_running {
            let be = self.be.as_ref().expect("be_running implies a BE workload");
            be.progress(
                alloc.be_cores(),
                outcome.be_freq_ghz,
                outcome.be_cache_mb,
                outcome.be_dram_achieved_gbps,
                outcome.be_net_achieved_gbps,
                &cfg,
            )
        } else {
            0.0
        };
        let be_throughput = be_progress / self.be_alone_progress;
        let lc_throughput = load;
        let mut counters = self.server.counters(&outcome);
        // The hardware model reports the LC pool's utilization from the
        // *offered* demand at nominal service times, but a real utilization
        // counter measures wall-clock busy time — which inflates with the
        // frequency drop and memory stalls of the contended window.  The
        // controller's utilization guard must see the inflated value, or it
        // keeps granting cores while the LC queue sits on its latency knee.
        let effective_busy_cores = window.qps * self.lc.service_time_s(load, &outcome, &cfg);
        counters.lc_cpu_utilization =
            (effective_busy_cores / alloc.lc_cores().max(1) as f64).clamp(0.0, 1.0);

        self.last_be_progress = be_progress;
        let measurements = Measurements { tail_latency_s, load, be_progress, counters };
        self.policy.tick(self.now, &mut self.server, &measurements);

        let record = WindowRecord {
            time: self.now,
            load,
            tail_latency_s,
            normalized_latency,
            slo_met: self.lc.slo().is_met(tail_latency_s),
            lc_throughput,
            be_throughput,
            emu: lc_throughput + be_throughput,
            lc_cores: alloc.lc_cores(),
            be_cores: alloc.be_cores(),
            be_ways: if alloc.cat_enabled() { alloc.be_ways() } else { 0 },
            counters,
            outcome,
        };
        self.history.push(record.clone());
        self.note_window(inputs, false);
        record
    }

    /// Runs `windows` consecutive windows at a constant load and returns the
    /// records (also appended to the history).
    ///
    /// Routes through the same stepping path as fleet leaves: steady
    /// windows take the (bit-exact) fast path automatically.
    pub fn run_steady(&mut self, load: f64, windows: usize) -> Vec<WindowRecord> {
        (0..windows).map(|_| self.window(load, true)).collect()
    }

    /// Runs one window per entry of `loads` and returns the records.
    ///
    /// Routes through the same stepping path as fleet leaves: steady
    /// windows take the (bit-exact) fast path automatically.
    pub fn run_trace(&mut self, loads: &[f64]) -> Vec<WindowRecord> {
        loads.iter().map(|&l| self.window(l, true)).collect()
    }
}

impl std::fmt::Debug for ColoRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColoRunner")
            .field("lc", &self.lc.name())
            .field("be", &self.be.as_ref().map(|b| b.name().to_string()))
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("windows", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_baselines::{LcOnly, OsOnly};
    use heracles_core::{Heracles, HeraclesConfig, OfflineDramModel};

    fn heracles_for(lc: &LcWorkload, config: &ServerConfig) -> Box<dyn ColocationPolicy> {
        let model = OfflineDramModel::profile(lc, config);
        Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), model))
    }

    #[test]
    fn lc_alone_meets_slo_across_loads() {
        let cfg = ServerConfig::default_haswell();
        let mut runner = ColoRunner::new(
            cfg,
            LcWorkload::websearch(),
            None,
            Box::new(LcOnly::new()),
            ColoConfig::fast_test(),
        );
        for load in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let r = runner.step(load);
            assert!(r.slo_met, "SLO violated at load {load}: {:.2}", r.normalized_latency);
            assert_eq!(r.be_throughput, 0.0);
            assert!((r.emu - load).abs() < 1e-9);
        }
    }

    #[test]
    fn os_only_colocation_with_brain_violates_slo() {
        let cfg = ServerConfig::default_haswell();
        let mut runner = ColoRunner::new(
            cfg,
            LcWorkload::websearch(),
            Some(BeWorkload::brain()),
            Box::new(OsOnly::new()),
            ColoConfig::fast_test(),
        );
        let records = runner.run_steady(0.5, 3);
        let worst = records.iter().map(|r| r.normalized_latency).fold(0.0, f64::max);
        assert!(worst > 1.0, "OS-only colocation should violate the SLO, worst={worst:.2}");
    }

    #[test]
    fn heracles_grows_be_and_preserves_slo() {
        let cfg = ServerConfig::default_haswell();
        let lc = LcWorkload::websearch();
        let policy = heracles_for(&lc, &cfg);
        let mut runner =
            ColoRunner::new(cfg, lc, Some(BeWorkload::brain()), policy, ColoConfig::fast_test());
        let records = runner.run_steady(0.4, 60);
        // After convergence the BE job holds a nontrivial share of the machine.
        let final_be_cores = records.last().unwrap().be_cores;
        assert!(final_be_cores >= 4, "BE has only {final_be_cores} cores");
        // And the steady-state windows meet the SLO.
        let steady = ColoSummary::from_records(&records[20..]);
        assert_eq!(steady.slo_violation_fraction, 0.0, "violations: {steady:?}");
        assert!(steady.mean_emu > 0.5, "EMU {:.2}", steady.mean_emu);
    }

    #[test]
    fn history_and_summary_track_steps() {
        let cfg = ServerConfig::default_haswell();
        let mut runner = ColoRunner::new(
            cfg,
            LcWorkload::ml_cluster(),
            None,
            Box::new(LcOnly::new()),
            ColoConfig::fast_test(),
        );
        runner.run_steady(0.3, 5);
        assert_eq!(runner.history().len(), 5);
        assert_eq!(runner.summary().windows, 5);
        assert_eq!(runner.summary_of_last(2).windows, 2);
        assert!(runner.now().as_secs_f64() >= 5.0);
    }

    #[test]
    fn set_be_swaps_the_workload_and_renormalizes_emu() {
        let cfg = ServerConfig::default_haswell();
        let lc = LcWorkload::websearch();
        let policy = heracles_for(&lc, &cfg);
        let mut runner =
            ColoRunner::new(cfg, lc, Some(BeWorkload::brain()), policy, ColoConfig::fast_test());
        runner.run_steady(0.4, 30);
        let brain_alone = runner.be_alone_progress();
        assert!(runner.last_record().is_some());

        // Detach the job: BE throughput drops to zero, EMU falls back to load.
        runner.set_be(None);
        assert_eq!(runner.be_alone_progress(), 1.0);
        let idle = runner.step(0.4);
        assert_eq!(idle.be_throughput, 0.0);

        // Attach a different job: the normalization denominator is re-profiled.
        runner.set_be(Some(BeWorkload::streetview()));
        assert!(runner.be().is_some());
        assert_ne!(runner.be_alone_progress(), brain_alone);
        let resumed = runner.run_steady(0.4, 30);
        assert!(
            resumed.last().unwrap().be_throughput > 0.0,
            "streetview made no progress after the swap"
        );
    }

    #[test]
    fn fast_path_is_bit_identical_to_full_path() {
        // Two identical runners: one steps every window in full (the
        // oracle), one goes through the shared path with the fast path
        // allowed.  A long steady stretch under Heracles exercises both the
        // certification windows and the fast windows; the histories must be
        // indistinguishable.
        let build = || {
            let cfg = ServerConfig::default_haswell();
            let lc = LcWorkload::websearch();
            let policy = heracles_for(&lc, &cfg);
            ColoRunner::new(cfg, lc, Some(BeWorkload::brain()), policy, ColoConfig::fast_test())
        };
        let mut oracle = build();
        let mut fast = build();
        for i in 0..120 {
            // A plateau with one mid-run load change, so the fast path has
            // to certify, run, fall back, and re-certify.
            let load = if (40..44).contains(&i) { 0.55 } else { 0.4 };
            let a = oracle.step(load);
            let b = fast.window(load, true);
            assert!(a.time == b.time && a.tail_latency_s.to_bits() == b.tail_latency_s.to_bits());
            assert_eq!(a.normalized_latency.to_bits(), b.normalized_latency.to_bits());
            assert_eq!(a.be_throughput.to_bits(), b.be_throughput.to_bits());
            assert_eq!(a.emu.to_bits(), b.emu.to_bits());
            assert_eq!((a.lc_cores, a.be_cores, a.be_ways), (b.lc_cores, b.be_cores, b.be_ways));
            assert_eq!(a.slo_met, b.slo_met);
        }
        let (full, fast_count) = fast.window_counts();
        assert_eq!(full + fast_count, 120);
        assert!(fast_count > 0, "steady run never took the fast path");
        assert_eq!(oracle.window_counts(), (120, 0), "step() must stay the full-path oracle");
        // And the advance() aggregation matches a hand-rolled loop bitwise.
        let adv_oracle = oracle.advance(0.4, 5, false);
        let adv_fast = fast.advance(0.4, 5, true);
        assert_eq!(adv_oracle.be_progress_core_s.to_bits(), adv_fast.be_progress_core_s.to_bits());
        assert_eq!(
            adv_oracle.worst_normalized_latency.to_bits(),
            adv_fast.worst_normalized_latency.to_bits()
        );
        assert_eq!(adv_oracle.last_emu.to_bits(), adv_fast.last_emu.to_bits());
        assert_eq!(adv_oracle.energy_j.to_bits(), adv_fast.energy_j.to_bits());
        assert_eq!(adv_oracle.max_power_w.to_bits(), adv_fast.max_power_w.to_bits());
        assert_eq!(adv_oracle.be_enabled, adv_fast.be_enabled);
    }

    #[test]
    fn run_steady_matches_stepping_bitwise() {
        let build = || {
            let cfg = ServerConfig::default_haswell();
            let lc = LcWorkload::memkeyval();
            let policy = heracles_for(&lc, &cfg);
            ColoRunner::new(
                cfg,
                lc,
                Some(BeWorkload::stream_llc()),
                policy,
                ColoConfig::fast_test(),
            )
        };
        let mut stepped = build();
        let via_steps: Vec<WindowRecord> = (0..50).map(|_| stepped.step(0.5)).collect();
        let mut batched = build();
        let via_run = batched.run_steady(0.5, 50);
        for (a, b) in via_steps.iter().zip(&via_run) {
            assert_eq!(a.emu.to_bits(), b.emu.to_bits());
            assert_eq!(a.tail_latency_s.to_bits(), b.tail_latency_s.to_bits());
        }
    }

    #[test]
    fn runner_is_deterministic_for_a_seed() {
        let run = |seed| {
            let cfg = ServerConfig::default_haswell();
            let lc = LcWorkload::memkeyval();
            let policy = heracles_for(&lc, &cfg);
            let mut runner = ColoRunner::new(
                cfg,
                lc,
                Some(BeWorkload::stream_llc()),
                policy,
                ColoConfig::fast_test().with_seed(seed),
            );
            runner.run_steady(0.5, 10);
            runner.summary().mean_normalized_latency
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
