//! The policy-driven colocation runner.

use std::collections::VecDeque;

use heracles_core::{ColocationPolicy, Measurements};
use heracles_hw::{Server, ServerConfig};
use heracles_isolation::CfsShares;
use heracles_sim::{LatencyRecorder, SimRng, SimTime};
use heracles_workloads::{BeWorkload, LcWorkload};

use crate::config::ColoConfig;
use crate::record::{ColoSummary, WindowRecord};

/// Runs an LC workload (and optionally a BE workload) on one simulated server
/// under a colocation policy, one measurement window at a time.
///
/// # Example
///
/// ```
/// use heracles_baselines::LcOnly;
/// use heracles_colo::{ColoConfig, ColoRunner};
/// use heracles_hw::ServerConfig;
/// use heracles_workloads::LcWorkload;
///
/// let mut runner = ColoRunner::new(
///     ServerConfig::default_haswell(),
///     LcWorkload::websearch(),
///     None,
///     Box::new(LcOnly::new()),
///     ColoConfig::fast_test(),
/// );
/// let record = runner.step(0.5);
/// assert!(record.slo_met);
/// ```
pub struct ColoRunner {
    server: Server,
    lc: LcWorkload,
    be: Option<BeWorkload>,
    be_alone_progress: f64,
    policy: Box<dyn ColocationPolicy>,
    config: ColoConfig,
    cfs: CfsShares,
    rng: SimRng,
    now: SimTime,
    history: Vec<WindowRecord>,
    /// Latency samples of the most recent windows, merged into one SLO
    /// measurement (the paper's multi-second SLO window).
    recent_latencies: VecDeque<LatencyRecorder>,
}

impl ColoRunner {
    /// Creates a runner and lets the policy set up its initial allocations.
    pub fn new(
        server_config: ServerConfig,
        lc: LcWorkload,
        be: Option<BeWorkload>,
        mut policy: Box<dyn ColocationPolicy>,
        config: ColoConfig,
    ) -> Self {
        let be_alone_progress = be.as_ref().map_or(1.0, |b| b.alone_progress(&server_config));
        let mut server = Server::new(server_config);
        policy.init(&mut server);
        ColoRunner {
            server,
            lc,
            be,
            be_alone_progress,
            policy,
            config,
            cfs: CfsShares::characterization_default(),
            rng: SimRng::new(config.seed),
            now: SimTime::ZERO,
            history: Vec::new(),
            recent_latencies: VecDeque::new(),
        }
    }

    /// The LC workload being served.
    pub fn lc(&self) -> &LcWorkload {
        &self.lc
    }

    /// The BE workload being colocated, if any.
    pub fn be(&self) -> Option<&BeWorkload> {
        self.be.as_ref()
    }

    /// Replaces the colocated BE workload (or removes it with `None`).
    ///
    /// The fleet scheduler attaches and detaches jobs as they are placed,
    /// preempted and completed; the EMU normalization denominator is
    /// re-profiled for the new workload.  The policy is re-initialised so
    /// the incoming job starts from the conservative initial allocation
    /// rather than inheriting the share grown for the previous job — handing
    /// a DRAM-hungry antagonist twenty cores that were tuned for a benign
    /// predecessor would blow through the SLO faster than the controller's
    /// poll can react, exactly like restarting the BE container does on a
    /// real node.
    pub fn set_be(&mut self, be: Option<BeWorkload>) {
        self.be_alone_progress =
            be.as_ref().map_or(1.0, |b| b.alone_progress(self.server.config()));
        self.be = be;
        self.policy.init(&mut self.server);
    }

    /// True if the policy currently allows BE tasks to execute.
    pub fn be_enabled(&self) -> bool {
        self.policy.be_enabled()
    }

    /// Turns the policy's decision tracing on or off (a no-op for policies
    /// that do not trace).
    pub fn set_trace(&mut self, enabled: bool) {
        self.policy.set_trace(enabled);
    }

    /// Drains the decision events the policy buffered since the last call.
    /// The fleet collects these once per step, in server order, so the
    /// parallel leaf stepping never writes to a shared recorder.
    pub fn take_trace(&mut self) -> Vec<heracles_telemetry::TraceEvent> {
        self.policy.take_trace()
    }

    /// Progress (in core-equivalents) the current BE workload achieves when
    /// it runs alone on the whole machine — the denominator that turns a
    /// window's raw BE progress into the normalized `be_throughput`.
    /// Multiplying `be_throughput` back by this value recovers the window's
    /// progress in core-equivalents, which is how the fleet scheduler
    /// accounts job demand in core·seconds.
    pub fn be_alone_progress(&self) -> f64 {
        self.be_alone_progress
    }

    /// The most recent window's record, if any window has run.
    pub fn last_record(&self) -> Option<&WindowRecord> {
        self.history.last()
    }

    /// The simulated server (allocations, counters, configuration).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The policy controlling the experiment.
    pub fn policy(&self) -> &dyn ColocationPolicy {
        self.policy.as_ref()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// All windows recorded so far.
    pub fn history(&self) -> &[WindowRecord] {
        &self.history
    }

    /// Summary statistics over all windows recorded so far.
    pub fn summary(&self) -> ColoSummary {
        ColoSummary::from_records(&self.history)
    }

    /// Summary statistics over the most recent `n` windows.
    pub fn summary_of_last(&self, n: usize) -> ColoSummary {
        let start = self.history.len().saturating_sub(n);
        ColoSummary::from_records(&self.history[start..])
    }

    /// Advances one measurement window at the given LC load and returns its
    /// record.  The policy observes the window's measurements afterwards and
    /// may adjust allocations for the next window.
    pub fn step(&mut self, load: f64) -> WindowRecord {
        // Loads above 1.0 are real: a fleet's front-end balancer re-routes a
        // retired leaf's traffic onto the survivors, and a pool shrunk below
        // its demand runs its leaves *past* their peak — the M/G/c queue
        // then saturates and the tail latency shows it, which is exactly
        // what over-demand costs.  The cap only guards the simulation
        // against absurd inputs.
        let load = load.clamp(0.0, 4.0);
        self.now += self.config.window;
        let cfg = self.server.config().clone();

        let alloc = self.server.allocations().clone();
        let be_running = self.be.is_some()
            && self.policy.be_enabled()
            && (alloc.be_cores() > 0 || alloc.be_shares_lc_cores());

        // Offered demands under the current allocations.
        let lc_footprint = self.lc.footprint_mb(load, &cfg);
        let be_footprint = if be_running {
            self.be.as_ref().map_or(0.0, |b| b.contention_footprint_mb())
        } else {
            0.0
        };
        let cache = self.server.cache_split(lc_footprint, be_footprint);
        let mut demand = self.lc.demand(load, alloc.lc_cores(), cache.lc_mb, &cfg);
        if be_running {
            let be = self.be.as_ref().expect("be_running implies a BE workload");
            let be_demand = be.demand(alloc.be_cores(), cache.be_mb);
            demand.be_active_cores = be_demand.be_active_cores;
            demand.be_compute_activity = be_demand.be_compute_activity;
            demand.be_dram_gbps_per_core = be_demand.be_dram_gbps_per_core;
            demand.be_llc_footprint_mb = be_demand.be_llc_footprint_mb;
            demand.be_net_offered_gbps = be_demand.be_net_offered_gbps;
            demand.smt_antagonist_intensity = be_demand.smt_antagonist_intensity;
        }
        let outcome = self.server.evaluate(&demand);

        // Scheduling interference applies only when the OS is allowed to run
        // BE threads on the LC cores (the OS-only baseline).
        let sched_pressure = if be_running && alloc.be_shares_lc_cores() {
            let be = self.be.as_ref().expect("be_running implies a BE workload");
            (alloc.be_cores() as f64 * be.compute_activity() / alloc.total_cores() as f64)
                .clamp(0.0, 1.0)
        } else {
            0.0
        };
        let cfs = self.cfs;
        let mut extra = move |rng: &mut SimRng| cfs.scheduling_delay_s(rng, sched_pressure);
        let extra_opt: Option<&mut dyn FnMut(&mut SimRng) -> f64> =
            if sched_pressure > 0.0 { Some(&mut extra) } else { None };

        let window = self.lc.simulate_window(
            &mut self.rng,
            load,
            alloc.lc_cores(),
            &outcome,
            &cfg,
            self.config.requests_per_window,
            extra_opt,
        );

        // Aggregate the last few windows into one SLO measurement so that the
        // tail estimate is statistically meaningful (the paper's controller
        // polls latency over 15 s for exactly this reason).
        self.recent_latencies.push_back(window.latencies.clone());
        while self.recent_latencies.len() > self.config.slo_window_count.max(1) {
            self.recent_latencies.pop_front();
        }
        let mut merged = LatencyRecorder::new();
        for rec in &self.recent_latencies {
            merged.merge(rec);
        }
        let tail_latency_s = merged.quantile(self.lc.slo().percentile);
        let normalized_latency = self.lc.slo().normalized(tail_latency_s);

        // BE progress and Effective Machine Utilization.
        let be_progress = if be_running {
            let be = self.be.as_ref().expect("be_running implies a BE workload");
            be.progress(
                alloc.be_cores(),
                outcome.be_freq_ghz,
                outcome.be_cache_mb,
                outcome.be_dram_achieved_gbps,
                outcome.be_net_achieved_gbps,
                &cfg,
            )
        } else {
            0.0
        };
        let be_throughput = be_progress / self.be_alone_progress;
        let lc_throughput = load;
        let mut counters = self.server.counters(&outcome);
        // The hardware model reports the LC pool's utilization from the
        // *offered* demand at nominal service times, but a real utilization
        // counter measures wall-clock busy time — which inflates with the
        // frequency drop and memory stalls of the contended window.  The
        // controller's utilization guard must see the inflated value, or it
        // keeps granting cores while the LC queue sits on its latency knee.
        let effective_busy_cores = window.qps * self.lc.service_time_s(load, &outcome, &cfg);
        counters.lc_cpu_utilization =
            (effective_busy_cores / alloc.lc_cores().max(1) as f64).clamp(0.0, 1.0);

        let measurements = Measurements { tail_latency_s, load, be_progress, counters };
        self.policy.tick(self.now, &mut self.server, &measurements);

        let record = WindowRecord {
            time: self.now,
            load,
            tail_latency_s,
            normalized_latency,
            slo_met: self.lc.slo().is_met(tail_latency_s),
            lc_throughput,
            be_throughput,
            emu: lc_throughput + be_throughput,
            lc_cores: alloc.lc_cores(),
            be_cores: alloc.be_cores(),
            be_ways: if alloc.cat_enabled() { alloc.be_ways() } else { 0 },
            counters,
            outcome,
        };
        self.history.push(record.clone());
        record
    }

    /// Runs `windows` consecutive windows at a constant load and returns the
    /// records (also appended to the history).
    pub fn run_steady(&mut self, load: f64, windows: usize) -> Vec<WindowRecord> {
        (0..windows).map(|_| self.step(load)).collect()
    }

    /// Runs one window per entry of `loads` and returns the records.
    pub fn run_trace(&mut self, loads: &[f64]) -> Vec<WindowRecord> {
        loads.iter().map(|&l| self.step(l)).collect()
    }
}

impl std::fmt::Debug for ColoRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColoRunner")
            .field("lc", &self.lc.name())
            .field("be", &self.be.as_ref().map(|b| b.name().to_string()))
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("windows", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_baselines::{LcOnly, OsOnly};
    use heracles_core::{Heracles, HeraclesConfig, OfflineDramModel};

    fn heracles_for(lc: &LcWorkload, config: &ServerConfig) -> Box<dyn ColocationPolicy> {
        let model = OfflineDramModel::profile(lc, config);
        Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), model))
    }

    #[test]
    fn lc_alone_meets_slo_across_loads() {
        let cfg = ServerConfig::default_haswell();
        let mut runner = ColoRunner::new(
            cfg,
            LcWorkload::websearch(),
            None,
            Box::new(LcOnly::new()),
            ColoConfig::fast_test(),
        );
        for load in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let r = runner.step(load);
            assert!(r.slo_met, "SLO violated at load {load}: {:.2}", r.normalized_latency);
            assert_eq!(r.be_throughput, 0.0);
            assert!((r.emu - load).abs() < 1e-9);
        }
    }

    #[test]
    fn os_only_colocation_with_brain_violates_slo() {
        let cfg = ServerConfig::default_haswell();
        let mut runner = ColoRunner::new(
            cfg,
            LcWorkload::websearch(),
            Some(BeWorkload::brain()),
            Box::new(OsOnly::new()),
            ColoConfig::fast_test(),
        );
        let records = runner.run_steady(0.5, 3);
        let worst = records.iter().map(|r| r.normalized_latency).fold(0.0, f64::max);
        assert!(worst > 1.0, "OS-only colocation should violate the SLO, worst={worst:.2}");
    }

    #[test]
    fn heracles_grows_be_and_preserves_slo() {
        let cfg = ServerConfig::default_haswell();
        let lc = LcWorkload::websearch();
        let policy = heracles_for(&lc, &cfg);
        let mut runner =
            ColoRunner::new(cfg, lc, Some(BeWorkload::brain()), policy, ColoConfig::fast_test());
        let records = runner.run_steady(0.4, 60);
        // After convergence the BE job holds a nontrivial share of the machine.
        let final_be_cores = records.last().unwrap().be_cores;
        assert!(final_be_cores >= 4, "BE has only {final_be_cores} cores");
        // And the steady-state windows meet the SLO.
        let steady = ColoSummary::from_records(&records[20..]);
        assert_eq!(steady.slo_violation_fraction, 0.0, "violations: {steady:?}");
        assert!(steady.mean_emu > 0.5, "EMU {:.2}", steady.mean_emu);
    }

    #[test]
    fn history_and_summary_track_steps() {
        let cfg = ServerConfig::default_haswell();
        let mut runner = ColoRunner::new(
            cfg,
            LcWorkload::ml_cluster(),
            None,
            Box::new(LcOnly::new()),
            ColoConfig::fast_test(),
        );
        runner.run_steady(0.3, 5);
        assert_eq!(runner.history().len(), 5);
        assert_eq!(runner.summary().windows, 5);
        assert_eq!(runner.summary_of_last(2).windows, 2);
        assert!(runner.now().as_secs_f64() >= 5.0);
    }

    #[test]
    fn set_be_swaps_the_workload_and_renormalizes_emu() {
        let cfg = ServerConfig::default_haswell();
        let lc = LcWorkload::websearch();
        let policy = heracles_for(&lc, &cfg);
        let mut runner =
            ColoRunner::new(cfg, lc, Some(BeWorkload::brain()), policy, ColoConfig::fast_test());
        runner.run_steady(0.4, 30);
        let brain_alone = runner.be_alone_progress();
        assert!(runner.last_record().is_some());

        // Detach the job: BE throughput drops to zero, EMU falls back to load.
        runner.set_be(None);
        assert_eq!(runner.be_alone_progress(), 1.0);
        let idle = runner.step(0.4);
        assert_eq!(idle.be_throughput, 0.0);

        // Attach a different job: the normalization denominator is re-profiled.
        runner.set_be(Some(BeWorkload::streetview()));
        assert!(runner.be().is_some());
        assert_ne!(runner.be_alone_progress(), brain_alone);
        let resumed = runner.run_steady(0.4, 30);
        assert!(
            resumed.last().unwrap().be_throughput > 0.0,
            "streetview made no progress after the swap"
        );
    }

    #[test]
    fn runner_is_deterministic_for_a_seed() {
        let run = |seed| {
            let cfg = ServerConfig::default_haswell();
            let lc = LcWorkload::memkeyval();
            let policy = heracles_for(&lc, &cfg);
            let mut runner = ColoRunner::new(
                cfg,
                lc,
                Some(BeWorkload::stream_llc()),
                policy,
                ColoConfig::fast_test().with_seed(seed),
            );
            runner.run_steady(0.5, 10);
            runner.summary().mean_normalized_latency
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
