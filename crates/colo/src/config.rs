//! Harness configuration.

use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the single-server colocation harness.
///
/// # Example
///
/// ```
/// use heracles_colo::ColoConfig;
/// let cfg = ColoConfig::default();
/// assert!(cfg.requests_per_window >= 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColoConfig {
    /// Length of one measurement window.
    pub window: SimDuration,
    /// Number of LC requests simulated per window (a statistical sample of
    /// the window's traffic; enough for stable 99th percentiles).
    pub requests_per_window: usize,
    /// Number of consecutive windows aggregated into one SLO measurement.
    /// The paper defines the SLO over multi-second windows (and the
    /// controller polls latency over 15 s) precisely so that tail estimates
    /// are statistically meaningful; the same aggregation is applied here to
    /// both the reported latency and the controller's input.
    pub slo_window_count: usize,
    /// Seed for all stochastic components of the experiment.
    pub seed: u64,
}

impl Default for ColoConfig {
    fn default() -> Self {
        ColoConfig {
            window: SimDuration::from_secs(1),
            requests_per_window: 3_000,
            slo_window_count: 5,
            seed: 42,
        }
    }
}

impl ColoConfig {
    /// A configuration with a larger per-window sample, for experiments where
    /// single-window tail stability matters more than runtime.
    pub fn high_fidelity() -> Self {
        ColoConfig { requests_per_window: 6_000, ..Self::default() }
    }

    /// A cheap configuration for unit tests.
    pub fn fast_test() -> Self {
        ColoConfig { requests_per_window: 1_500, slo_window_count: 4, ..Self::default() }
    }

    /// Returns a copy with a different seed (used to give every experiment
    /// cell and every cluster leaf an independent random stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_window_is_one_second() {
        assert_eq!(ColoConfig::default().window.as_secs_f64(), 1.0);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let a = ColoConfig::default();
        let b = a.with_seed(7);
        assert_eq!(a.window, b.window);
        assert_eq!(a.requests_per_window, b.requests_per_window);
        assert_ne!(a.seed, b.seed);
    }
}
