//! Fixed-allocation experiments: the interference characterization of
//! Figure 1 and the cores×LLC convexity sweep of Figure 3.
//!
//! In the characterization (§3.2) the LC workload is pinned to "enough cores
//! to satisfy its SLO at the specific load" and a single-resource antagonist
//! runs on the remaining cores — except for the HyperThread antagonist (which
//! shares the LC cores' sibling threads), the network antagonist (which gets
//! exactly one core), and the `brain` row (which runs under OS-only
//! isolation, i.e. CFS shares with no pinning at all).  No controller runs;
//! the point is to measure raw interference.

use heracles_core::{ColocationPolicy, Measurements};
use heracles_hw::{Server, ServerConfig};
use heracles_isolation::CfsShares;
use heracles_sim::SimTime;
use heracles_workloads::{BeKind, BeWorkload, LcWorkload};
use serde::{Deserialize, Serialize};

use crate::config::ColoConfig;
use crate::runner::ColoRunner;

/// One cell of the Figure 1 table: a workload × antagonist × load point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationCell {
    /// The LC workload's name.
    pub lc: String,
    /// The antagonist's name.
    pub antagonist: String,
    /// LC load as a fraction of peak.
    pub load: f64,
    /// Tail latency normalized to the SLO target (the paper colour-codes
    /// anything above 1.0 as a violation and reports ">300%" above 3.0).
    pub normalized_latency: f64,
}

impl CharacterizationCell {
    /// The cell formatted the way Figure 1 prints it (percent of SLO,
    /// saturated at ">300%").
    pub fn formatted(&self) -> String {
        if self.normalized_latency > 3.0 {
            ">300%".to_string()
        } else {
            format!("{:.0}%", self.normalized_latency * 100.0)
        }
    }
}

/// How the characterization pins the two workloads for a given antagonist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// LC on "enough" cores, antagonist on the remaining cores.
    RemainingCores,
    /// Antagonist on the sibling HyperThreads of the LC cores.
    SiblingHyperThreads,
    /// LC on all cores but one; the antagonist (iperf) gets that one core.
    AllButOneCore,
    /// OS-only isolation: no pinning at all, CFS shares (the `brain` row).
    OsScheduled,
}

fn layout_for(antagonist: &BeWorkload) -> Layout {
    if antagonist.is_smt_antagonist() {
        Layout::SiblingHyperThreads
    } else if antagonist.is_network_antagonist() {
        Layout::AllButOneCore
    } else if antagonist.kind() == BeKind::Brain {
        Layout::OsScheduled
    } else {
        Layout::RemainingCores
    }
}

/// A policy that applies a fixed characterization layout and never changes it.
#[derive(Debug, Clone)]
struct PinnedLayout {
    layout: Layout,
    lc_cores: usize,
}

impl ColocationPolicy for PinnedLayout {
    fn name(&self) -> &str {
        "pinned-characterization-layout"
    }

    fn init(&mut self, server: &mut Server) {
        let total = server.topology().total_cores();
        let alloc = server.allocations_mut();
        alloc.clear_cat();
        alloc.set_be_freq_cap_ghz(None);
        alloc.set_be_net_ceil_gbps(None);
        match self.layout {
            Layout::RemainingCores => {
                alloc.set_be_shares_lc_cores(false);
                alloc.set_lc_cores(self.lc_cores);
                alloc.set_be_cores(total - self.lc_cores);
            }
            Layout::SiblingHyperThreads => {
                alloc.set_be_shares_lc_cores(true);
                alloc.set_lc_cores(self.lc_cores);
                alloc.set_be_cores(self.lc_cores);
            }
            Layout::AllButOneCore => {
                alloc.set_be_shares_lc_cores(false);
                alloc.set_lc_cores(total - 1);
                alloc.set_be_cores(1);
            }
            Layout::OsScheduled => {
                CfsShares::characterization_default().configure(server, total);
            }
        }
    }

    fn tick(&mut self, _now: SimTime, _server: &mut Server, _m: &Measurements) {}

    fn be_enabled(&self) -> bool {
        true
    }
}

/// Measures one cell of the Figure 1 characterization.
pub fn characterize_cell(
    lc: &LcWorkload,
    antagonist: &BeWorkload,
    load: f64,
    server_config: &ServerConfig,
    colo: &ColoConfig,
) -> CharacterizationCell {
    let layout = layout_for(antagonist);
    let lc_cores = lc.cores_needed(load, server_config);
    let policy = PinnedLayout { layout, lc_cores };
    let mut runner = ColoRunner::new(
        server_config.clone(),
        lc.clone(),
        Some(antagonist.clone()),
        Box::new(policy),
        *colo,
    );
    // A couple of windows of warm-up, then measure.
    let records = runner.run_steady(load, 3);
    let normalized = records.iter().skip(1).map(|r| r.normalized_latency).fold(0.0, f64::max);
    CharacterizationCell {
        lc: lc.name().to_string(),
        antagonist: antagonist.name().to_string(),
        load,
        normalized_latency: normalized,
    }
}

/// Measures the baseline (no antagonist) tail latency at a load point, with
/// the same "enough cores for the SLO" sizing as the characterization cells.
pub fn baseline_cell(
    lc: &LcWorkload,
    load: f64,
    server_config: &ServerConfig,
    colo: &ColoConfig,
) -> CharacterizationCell {
    let lc_cores = lc.cores_needed(load, server_config);
    let policy = PinnedLayout { layout: Layout::RemainingCores, lc_cores };
    let mut runner =
        ColoRunner::new(server_config.clone(), lc.clone(), None, Box::new(policy), *colo);
    let records = runner.run_steady(load, 3);
    let normalized = records.iter().skip(1).map(|r| r.normalized_latency).fold(0.0, f64::max);
    CharacterizationCell {
        lc: lc.name().to_string(),
        antagonist: "none".to_string(),
        load,
        normalized_latency: normalized,
    }
}

/// The maximum load at which the LC workload still meets its SLO when
/// restricted to a fraction of the machine's cores and LLC ways (one point of
/// the Figure 3 convexity surface).  Returns a load fraction in `[0, 1]`.
pub fn max_load_under_slo(
    lc: &LcWorkload,
    core_fraction: f64,
    llc_fraction: f64,
    server_config: &ServerConfig,
    colo: &ColoConfig,
) -> f64 {
    let total_cores = server_config.total_cores();
    let total_ways = server_config.llc_ways;
    let lc_cores = ((total_cores as f64 * core_fraction).round() as usize).clamp(1, total_cores);
    let lc_ways = ((total_ways as f64 * llc_fraction).round() as usize).clamp(1, total_ways - 1);

    let meets = |load: f64| -> bool {
        let server_cfg = server_config.clone();
        let policy = RestrictedLayout { lc_cores, lc_ways };
        let mut runner = ColoRunner::new(server_cfg, lc.clone(), None, Box::new(policy), *colo);
        let records = runner.run_steady(load, 2);
        records.iter().all(|r| r.slo_met)
    };

    // Binary search over load.
    let mut lo = 0.0;
    let mut hi = 1.0;
    if meets(1.0) {
        return 1.0;
    }
    if !meets(0.02) {
        return 0.0;
    }
    for _ in 0..7 {
        let mid = (lo + hi) / 2.0;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A policy that pins the LC workload to a subset of cores and LLC ways and
/// runs no BE task (used by the convexity sweep).
#[derive(Debug, Clone, Copy)]
struct RestrictedLayout {
    lc_cores: usize,
    lc_ways: usize,
}

impl ColocationPolicy for RestrictedLayout {
    fn name(&self) -> &str {
        "restricted-layout"
    }

    fn init(&mut self, server: &mut Server) {
        let total_ways = server.config().llc_ways;
        let alloc = server.allocations_mut();
        alloc.set_be_shares_lc_cores(false);
        alloc.set_lc_cores(self.lc_cores);
        alloc.set_be_cores(0);
        let lc_ways = self.lc_ways.clamp(1, total_ways - 1);
        alloc.set_cat(lc_ways, total_ways - lc_ways);
        alloc.set_be_freq_cap_ghz(None);
        alloc.set_be_net_ceil_gbps(None);
    }

    fn tick(&mut self, _now: SimTime, _server: &mut Server, _m: &Measurements) {}

    fn be_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> (ServerConfig, ColoConfig) {
        (ServerConfig::default_haswell(), ColoConfig::fast_test())
    }

    #[test]
    fn benign_antagonist_leaves_websearch_healthy() {
        let (server, colo) = cfg();
        let cell = characterize_cell(
            &LcWorkload::websearch(),
            &BeWorkload::llc_small(),
            0.4,
            &server,
            &colo,
        );
        assert!(cell.normalized_latency < 1.3, "got {:.2}", cell.normalized_latency);
    }

    #[test]
    fn dram_antagonist_devastates_websearch_at_low_load() {
        let (server, colo) = cfg();
        let cell = characterize_cell(
            &LcWorkload::websearch(),
            &BeWorkload::stream_dram(),
            0.2,
            &server,
            &colo,
        );
        assert!(cell.normalized_latency > 2.0, "got {:.2}", cell.normalized_latency);
    }

    #[test]
    fn network_antagonist_hurts_only_memkeyval() {
        let (server, colo) = cfg();
        let kv =
            characterize_cell(&LcWorkload::memkeyval(), &BeWorkload::iperf(), 0.5, &server, &colo);
        let ws =
            characterize_cell(&LcWorkload::websearch(), &BeWorkload::iperf(), 0.5, &server, &colo);
        assert!(kv.normalized_latency > 3.0, "memkeyval got {:.2}", kv.normalized_latency);
        assert!(ws.normalized_latency < 1.0, "websearch got {:.2}", ws.normalized_latency);
    }

    #[test]
    fn brain_under_os_isolation_violates_slo() {
        let (server, colo) = cfg();
        let cell =
            characterize_cell(&LcWorkload::ml_cluster(), &BeWorkload::brain(), 0.5, &server, &colo);
        assert!(cell.normalized_latency > 1.2, "got {:.2}", cell.normalized_latency);
    }

    #[test]
    fn formatted_saturates_at_300_percent() {
        let cell = CharacterizationCell {
            lc: "x".into(),
            antagonist: "y".into(),
            load: 0.5,
            normalized_latency: 4.2,
        };
        assert_eq!(cell.formatted(), ">300%");
        let mild = CharacterizationCell { normalized_latency: 0.96, ..cell };
        assert_eq!(mild.formatted(), "96%");
    }

    #[test]
    fn baseline_meets_slo_at_moderate_load() {
        let (server, colo) = cfg();
        let cell = baseline_cell(&LcWorkload::websearch(), 0.5, &server, &colo);
        assert!(cell.normalized_latency <= 1.0, "got {:.2}", cell.normalized_latency);
    }

    #[test]
    fn max_load_shrinks_with_fewer_cores() {
        let (server, colo) = cfg();
        let ws = LcWorkload::websearch();
        let small = max_load_under_slo(&ws, 0.25, 1.0, &server, &colo);
        let large = max_load_under_slo(&ws, 1.0, 1.0, &server, &colo);
        assert!(large > small, "large {large:.2} <= small {small:.2}");
        assert!(large > 0.8);
        assert!(small < 0.5);
    }
}
