//! Single-server colocation harness.
//!
//! This crate wires everything together for one server: an LC workload model,
//! an optional BE workload, the hardware model, and a [`ColocationPolicy`]
//! (Heracles or a baseline).  Time advances in measurement windows; each
//! window the harness
//!
//! 1. derives the offered resource demands from the LC load and the BE task's
//!    profile under the *current* allocations,
//! 2. asks the hardware model for the effective resources and counters,
//! 3. simulates the LC request stream through a discrete-event queue to get
//!    the window's tail latency,
//! 4. computes the BE task's progress (for Effective Machine Utilization),
//! 5. hands the measurements to the policy, which may adjust the allocations
//!    for the next window.
//!
//! The figure-reproduction binaries drive this harness:
//!
//! * [`characterize`] — the fixed-allocation interference characterization of
//!   Figure 1 and the cores×LLC convexity sweep of Figure 3,
//! * [`runner::ColoRunner`] — the policy-driven colocation experiments of
//!   Figures 4–7,
//! * the cluster crate stacks many runners into the Figure 8 experiment.
//!
//! [`ColocationPolicy`]: heracles_core::ColocationPolicy
//! [`characterize`]: crate::characterize

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod characterize;
pub mod config;
pub mod record;
pub mod runner;

pub use characterize::{characterize_cell, max_load_under_slo, CharacterizationCell};
pub use config::ColoConfig;
pub use record::{records_to_csv, ColoSummary, WindowRecord};
pub use runner::{ColoRunner, LeafAdvance};
