//! Per-window records and experiment summaries.

use heracles_hw::{ContentionOutcome, CounterSnapshot};
use heracles_sim::csv::CsvRow;
use heracles_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Everything measured in one harness window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowRecord {
    /// Simulated time at the end of the window.
    pub time: SimTime,
    /// LC load offered during the window (fraction of peak).
    pub load: f64,
    /// Tail latency at the LC workload's SLO percentile, in seconds.
    pub tail_latency_s: f64,
    /// Tail latency normalized to the SLO target (1.0 = exactly at SLO).
    pub normalized_latency: f64,
    /// True if the window met the SLO.
    pub slo_met: bool,
    /// LC throughput contribution to EMU (equal to the served load fraction).
    pub lc_throughput: f64,
    /// BE throughput normalized to the BE task running alone on this server.
    pub be_throughput: f64,
    /// Effective Machine Utilization for the window (LC + BE throughput).
    pub emu: f64,
    /// Cores allocated to the LC workload at the end of the window.
    pub lc_cores: usize,
    /// Cores allocated to BE tasks at the end of the window.
    pub be_cores: usize,
    /// LLC ways allocated to BE tasks at the end of the window (0 if CAT off).
    pub be_ways: usize,
    /// Hardware counters observed during the window.
    pub counters: CounterSnapshot,
    /// The effective resources the window was evaluated under.
    pub outcome: ContentionOutcome,
}

impl WindowRecord {
    /// Column names of [`WindowRecord::csv_row`], in order.
    pub const CSV_HEADER: &'static str = "time_s,load,tail_latency_s,normalized_latency,slo_met,\
         lc_throughput,be_throughput,emu,lc_cores,be_cores,be_ways";

    /// The record as one CSV row (columns per [`WindowRecord::CSV_HEADER`]).
    pub fn csv_row(&self) -> String {
        let mut out = String::new();
        CsvRow::new(&mut out)
            .f64(self.time.as_secs_f64(), 6)
            .f64(self.load, 4)
            .f64(self.tail_latency_s, 6)
            .f64(self.normalized_latency, 4)
            .bool01(self.slo_met)
            .f64(self.lc_throughput, 4)
            .f64(self.be_throughput, 4)
            .f64(self.emu, 4)
            .int(self.lc_cores as u64)
            .int(self.be_cores as u64)
            .int(self.be_ways as u64);
        out
    }
}

/// Renders a window history as a CSV document (header plus one row per
/// window), ready to be dumped to a file for plotting.
///
/// # Example
///
/// ```
/// use heracles_colo::record::records_to_csv;
/// let csv = records_to_csv(&[]);
/// assert!(csv.starts_with("time_s,load"));
/// ```
pub fn records_to_csv(records: &[WindowRecord]) -> String {
    let mut out = String::with_capacity(64 * (records.len() + 1));
    out.push_str(WindowRecord::CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    out
}

/// Summary statistics over a sequence of windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColoSummary {
    /// Number of windows summarised.
    pub windows: usize,
    /// Worst-case normalized tail latency (the paper reports worst-case over
    /// the SLO evaluation window).
    pub worst_normalized_latency: f64,
    /// Mean normalized tail latency.
    pub mean_normalized_latency: f64,
    /// Fraction of windows that violated the SLO.
    pub slo_violation_fraction: f64,
    /// Mean Effective Machine Utilization.
    pub mean_emu: f64,
    /// Minimum Effective Machine Utilization.
    pub min_emu: f64,
    /// Mean BE throughput (normalized to BE running alone).
    pub mean_be_throughput: f64,
    /// Mean DRAM bandwidth utilization (fraction of peak).
    pub mean_dram_utilization: f64,
    /// Mean CPU utilization (fraction of cores busy).
    pub mean_cpu_utilization: f64,
    /// Mean package power as a fraction of TDP.
    pub mean_power_fraction: f64,
    /// Mean LC egress bandwidth in Gbps.
    pub mean_lc_net_gbps: f64,
    /// Mean BE egress bandwidth in Gbps.
    pub mean_be_net_gbps: f64,
}

impl ColoSummary {
    /// Summarises a sequence of windows.
    ///
    /// Returns a zeroed summary if `records` is empty.
    pub fn from_records(records: &[WindowRecord]) -> Self {
        if records.is_empty() {
            return ColoSummary {
                windows: 0,
                worst_normalized_latency: 0.0,
                mean_normalized_latency: 0.0,
                slo_violation_fraction: 0.0,
                mean_emu: 0.0,
                min_emu: 0.0,
                mean_be_throughput: 0.0,
                mean_dram_utilization: 0.0,
                mean_cpu_utilization: 0.0,
                mean_power_fraction: 0.0,
                mean_lc_net_gbps: 0.0,
                mean_be_net_gbps: 0.0,
            };
        }
        let n = records.len() as f64;
        let mean = |f: &dyn Fn(&WindowRecord) -> f64| records.iter().map(f).sum::<f64>() / n;
        ColoSummary {
            windows: records.len(),
            worst_normalized_latency: records
                .iter()
                .map(|r| r.normalized_latency)
                .fold(0.0, f64::max),
            mean_normalized_latency: mean(&|r| r.normalized_latency),
            slo_violation_fraction: records.iter().filter(|r| !r.slo_met).count() as f64 / n,
            mean_emu: mean(&|r| r.emu),
            min_emu: records.iter().map(|r| r.emu).fold(f64::INFINITY, f64::min),
            mean_be_throughput: mean(&|r| r.be_throughput),
            mean_dram_utilization: mean(&|r| r.counters.dram_utilization()),
            mean_cpu_utilization: mean(&|r| r.counters.cpu_utilization),
            mean_power_fraction: mean(&|r| r.counters.power_fraction()),
            mean_lc_net_gbps: mean(&|r| r.counters.nic_lc_gbps),
            mean_be_net_gbps: mean(&|r| r.counters.nic_be_gbps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::{ResourceDemand, Server, ServerConfig};

    fn record(normalized: f64, emu: f64) -> WindowRecord {
        let server = Server::new(ServerConfig::default_haswell());
        let outcome = server.evaluate(&ResourceDemand::default());
        WindowRecord {
            time: SimTime::ZERO,
            load: 0.5,
            tail_latency_s: normalized * 0.025,
            normalized_latency: normalized,
            slo_met: normalized <= 1.0,
            lc_throughput: 0.5,
            be_throughput: emu - 0.5,
            emu,
            lc_cores: 20,
            be_cores: 16,
            be_ways: 4,
            counters: server.counters(&outcome),
            outcome,
        }
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = ColoSummary::from_records(&[]);
        assert_eq!(s.windows, 0);
        assert_eq!(s.mean_emu, 0.0);
    }

    #[test]
    fn csv_export_has_one_row_per_window_plus_header() {
        let records = vec![record(0.5, 0.8), record(1.2, 0.9)];
        let csv = records_to_csv(&records);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], WindowRecord::CSV_HEADER);
        // Every row has exactly as many fields as the header.
        let columns = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), columns, "row {row}");
        }
        // slo_met renders as 1/0.
        assert!(lines[1].contains(",1,"));
        assert!(lines[2].contains(",0,"));
    }

    #[test]
    fn summary_aggregates_correctly() {
        let records = vec![record(0.5, 0.8), record(0.9, 1.0), record(1.2, 0.9)];
        let s = ColoSummary::from_records(&records);
        assert_eq!(s.windows, 3);
        assert!((s.worst_normalized_latency - 1.2).abs() < 1e-12);
        assert!((s.mean_normalized_latency - (0.5 + 0.9 + 1.2) / 3.0).abs() < 1e-12);
        assert!((s.slo_violation_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_emu - 0.9).abs() < 1e-12);
        assert!((s.min_emu - 0.8).abs() < 1e-12);
    }
}
