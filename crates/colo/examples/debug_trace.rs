//! Prints a per-window trace of one Heracles colocation run.
//!
//! Usage: `debug_trace [LOAD] [WINDOWS] [BE]` — e.g.
//! `cargo run -p heracles_colo --example debug_trace -- 0.2 140 brain`.

use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args.next().map_or(0.4, |a| a.parse().expect("LOAD must be a number"));
    let windows: usize = args.next().map_or(60, |a| a.parse().expect("WINDOWS must be an integer"));
    let be = match args.next().as_deref() {
        None | Some("brain") => BeWorkload::brain(),
        Some("streetview") => BeWorkload::streetview(),
        Some("iperf") => BeWorkload::iperf(),
        Some(other) => panic!("unknown BE workload {other:?}"),
    };

    let cfg = ServerConfig::default_haswell();
    let lc = LcWorkload::websearch();
    let model = OfflineDramModel::profile(&lc, &cfg);
    let policy: Box<dyn ColocationPolicy> =
        Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), model));
    let mut runner = ColoRunner::new(cfg, lc, Some(be), policy, ColoConfig::fast_test());
    for i in 0..windows {
        let r = runner.step(load);
        println!(
            "w{:03} lc_cores={:2} be_cores={:2} be_ways={:2} norm_lat={:.2} emu={:.2} dram={:.2} pwr={:.2} lc_freq={:.2} lc_cache={:.1}",
            i,
            r.lc_cores,
            r.be_cores,
            r.be_ways,
            r.normalized_latency,
            r.emu,
            r.counters.dram_utilization(),
            r.counters.power_fraction(),
            r.outcome.lc_freq_ghz,
            r.outcome.lc_cache_mb
        );
    }
}
