use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{Heracles, HeraclesConfig, OfflineDramModel, ColocationPolicy};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeWorkload, LcWorkload};

fn main() {
    let cfg = ServerConfig::default_haswell();
    let lc = LcWorkload::websearch();
    let model = OfflineDramModel::profile(&lc, &cfg);
    let policy: Box<dyn ColocationPolicy> = Box::new(Heracles::new(HeraclesConfig::fast(), lc.slo(), model));
    let mut runner = ColoRunner::new(cfg, lc, Some(BeWorkload::brain()), policy, ColoConfig::fast_test());
    for i in 0..60 {
        let r = runner.step(0.4);
        println!("w{:02} lc_cores={:2} be_cores={:2} be_ways={:2} norm_lat={:.2} dram={:.2} pwr={:.2} lc_freq={:.2} lc_cache={:.1}",
            i, r.lc_cores, r.be_cores, r.be_ways, r.normalized_latency,
            r.counters.dram_utilization(), r.counters.power_fraction(), r.outcome.lc_freq_ghz, r.outcome.lc_cache_mb);
    }
}
