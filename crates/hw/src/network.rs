//! NIC egress model with HTB-style traffic shaping.
//!
//! Within a server, network interference appears on the transmit side when
//! best-effort flows compete with the latency-critical service's responses
//! for the egress link.  Linux HTB (hierarchical token bucket) can cap the
//! total bandwidth of the best-effort class while leaving the LC class
//! unlimited.  Without shaping, the many small "mice" flows of a bandwidth
//! hungry BE task grab a proportional share of the link and the LC responses
//! queue behind them.

use serde::{Deserialize, Serialize};

use crate::config::ServerConfig;

/// Result of offering egress traffic to the NIC for one measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetOutcome {
    /// Bandwidth achieved by the latency-critical class, in Gbps.
    pub lc_achieved_gbps: f64,
    /// Bandwidth achieved by the best-effort class, in Gbps.
    pub be_achieved_gbps: f64,
    /// Link utilization (achieved / line rate).
    pub utilization: f64,
    /// Extra per-response transmit delay experienced by the LC class, in
    /// seconds (queueing behind other traffic plus any backlog when the LC
    /// class itself cannot get its offered bandwidth).
    pub lc_extra_delay_s: f64,
}

/// The egress NIC and its traffic-shaping state.
///
/// # Example
///
/// ```
/// use heracles_hw::{NicModel, ServerConfig};
/// let mut nic = NicModel::new(&ServerConfig::default_haswell());
/// // Unshaped: an iperf-style antagonist starves the LC class.
/// let starved = nic.offer(6.0, 20.0);
/// // Shaped: cap the BE class and the LC class gets its bandwidth back.
/// nic.set_be_ceil_gbps(Some(3.0));
/// let shaped = nic.offer(6.0, 20.0);
/// assert!(shaped.lc_achieved_gbps > starved.lc_achieved_gbps);
/// assert!(shaped.lc_extra_delay_s < starved.lc_extra_delay_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicModel {
    link_gbps: f64,
    mtu_bytes: f64,
    be_ceil_gbps: Option<f64>,
}

impl NicModel {
    /// Creates the NIC model for a server, initially unshaped.
    pub fn new(config: &ServerConfig) -> Self {
        NicModel { link_gbps: config.nic_gbps, mtu_bytes: config.nic_mtu_bytes, be_ceil_gbps: None }
    }

    /// The line rate in Gbps.
    pub fn link_gbps(&self) -> f64 {
        self.link_gbps
    }

    /// The current HTB ceiling for the best-effort class, if any.
    pub fn be_ceil_gbps(&self) -> Option<f64> {
        self.be_ceil_gbps
    }

    /// Sets (or clears) the HTB ceiling for the best-effort class.
    ///
    /// Values are clamped to `[0, line rate]`.
    pub fn set_be_ceil_gbps(&mut self, ceil: Option<f64>) {
        self.be_ceil_gbps = ceil.map(|c| c.clamp(0.0, self.link_gbps));
    }

    /// Serialization time of one MTU-sized transfer at line rate, in seconds.
    pub fn serialization_s(&self) -> f64 {
        self.mtu_bytes * 8.0 / (self.link_gbps * 1e9)
    }

    /// Offers egress demands from the two classes and computes what each
    /// achieves plus the transmit-queueing delay seen by LC responses.
    pub fn offer(&self, lc_offered_gbps: f64, be_offered_gbps: f64) -> NetOutcome {
        let lc_offered = lc_offered_gbps.max(0.0);
        let be_offered = be_offered_gbps.max(0.0);
        // HTB ceiling applies before link contention.
        let be_shaped = match self.be_ceil_gbps {
            Some(ceil) => be_offered.min(ceil),
            None => be_offered,
        };
        let total = lc_offered + be_shaped;
        let (lc_achieved, be_achieved) = if total <= self.link_gbps || total == 0.0 {
            (lc_offered, be_shaped)
        } else if self.be_ceil_gbps.is_some() {
            // With shaping in place the LC class is effectively prioritised:
            // it takes what it needs and the BE class gets the remainder.
            let lc = lc_offered.min(self.link_gbps);
            (lc, (self.link_gbps - lc).max(0.0).min(be_shaped))
        } else {
            // Unshaped: per-flow fair sharing. The BE antagonist's many mice
            // flows give it a share proportional to its offered load.
            let scale = self.link_gbps / total;
            (lc_offered * scale, be_shaped * scale)
        };
        let utilization = ((lc_achieved + be_achieved) / self.link_gbps).clamp(0.0, 1.0);

        // Queueing delay for an LC response: M/G/1-style growth with link
        // utilization, plus a backlog penalty if the LC class is being denied
        // part of its offered bandwidth (its socket buffers then fill and
        // responses wait for multiple milliseconds).
        let ser = self.serialization_s();
        let rho = utilization.min(0.99);
        let mut delay = ser * (1.0 + 2.0 * rho.powi(4) / (1.0 - rho));
        if lc_offered > 0.0 && lc_achieved < lc_offered * 0.999 {
            let shortfall = 1.0 - lc_achieved / lc_offered;
            delay += 0.002 + 0.010 * shortfall;
        }
        NetOutcome {
            lc_achieved_gbps: lc_achieved,
            be_achieved_gbps: be_achieved,
            utilization,
            lc_extra_delay_s: delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> NicModel {
        NicModel::new(&ServerConfig::default_haswell())
    }

    #[test]
    fn uncontended_traffic_is_fully_served() {
        let out = nic().offer(2.0, 3.0);
        assert_eq!(out.lc_achieved_gbps, 2.0);
        assert_eq!(out.be_achieved_gbps, 3.0);
        assert!(out.lc_extra_delay_s < 20e-6);
    }

    #[test]
    fn unshaped_antagonist_starves_lc() {
        let out = nic().offer(6.0, 30.0);
        assert!(out.lc_achieved_gbps < 6.0);
        assert!(out.lc_extra_delay_s > 1e-3, "delay {}", out.lc_extra_delay_s);
        assert!((out.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn htb_ceiling_protects_lc() {
        let mut nic = nic();
        nic.set_be_ceil_gbps(Some(3.0));
        let out = nic.offer(6.0, 30.0);
        assert_eq!(out.lc_achieved_gbps, 6.0);
        assert!(out.be_achieved_gbps <= 3.0 + 1e-9);
        assert!(out.lc_extra_delay_s < 1e-3);
    }

    #[test]
    fn ceiling_is_clamped_to_link_rate() {
        let mut nic = nic();
        nic.set_be_ceil_gbps(Some(50.0));
        assert_eq!(nic.be_ceil_gbps(), Some(10.0));
        nic.set_be_ceil_gbps(Some(-3.0));
        assert_eq!(nic.be_ceil_gbps(), Some(0.0));
    }

    #[test]
    fn shaped_overload_prioritises_lc() {
        let mut nic = nic();
        nic.set_be_ceil_gbps(Some(8.0));
        let out = nic.offer(7.0, 20.0);
        assert_eq!(out.lc_achieved_gbps, 7.0);
        assert!((out.be_achieved_gbps - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_is_harmless() {
        let out = nic().offer(0.0, 0.0);
        assert_eq!(out.utilization, 0.0);
        assert!(out.lc_extra_delay_s < 1e-5);
    }

    #[test]
    fn serialization_time_is_microseconds_at_10g() {
        let s = nic().serialization_s();
        assert!(s > 0.5e-6 && s < 2e-6, "serialization {s}");
    }
}
