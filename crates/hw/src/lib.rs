//! Server hardware model for the Heracles reproduction.
//!
//! The paper runs on dual-socket Haswell servers and controls four isolation
//! mechanisms: cpuset core pinning, Intel CAT way-partitioning of the LLC,
//! per-core DVFS guided by RAPL power readings, and HTB egress traffic
//! shaping.  This crate models the *hardware's* side of those mechanisms: it
//! turns a set of resource allocations plus the offered demands of the
//! colocated workloads into the effective resources each workload receives
//! (frequency, cache capacity, memory access latency, network bandwidth and
//! delay) and into the counter values the controller observes (DRAM bandwidth,
//! per-core bandwidth, RAPL power, core frequency, NIC bytes).
//!
//! The key property the model preserves — and the property Heracles' design
//! depends on (§4.2 of the paper) — is that every shared resource behaves
//! well below saturation and degrades non-linearly as it approaches
//! saturation.
//!
//! # Example
//!
//! ```
//! use heracles_hw::{Server, ServerConfig, ResourceDemand};
//!
//! let mut server = Server::new(ServerConfig::default_haswell());
//! server.allocations_mut().set_lc_cores(18);
//! server.allocations_mut().set_be_cores(18);
//! let outcome = server.evaluate(&ResourceDemand {
//!     lc_active_cores: 12.0,
//!     lc_compute_activity: 0.8,
//!     lc_dram_gbps: 20.0,
//!     lc_llc_footprint_mb: 30.0,
//!     lc_net_gbps: 0.5,
//!     be_active_cores: 18.0,
//!     be_compute_activity: 1.0,
//!     be_dram_gbps_per_core: 2.0,
//!     be_llc_footprint_mb: 40.0,
//!     be_net_offered_gbps: 0.0,
//!     smt_antagonist_intensity: 0.0,
//! });
//! assert!(outcome.lc_freq_ghz > 0.0);
//! assert!(outcome.dram_achieved_gbps <= 120.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod counters;
pub mod memory;
pub mod network;
pub mod power;
pub mod server;
pub mod topology;

pub use cache::LlcModel;
pub use config::ServerConfig;
pub use counters::CounterSnapshot;
pub use memory::DramModel;
pub use network::NicModel;
pub use power::PowerModel;
pub use server::{Allocations, ContentionOutcome, ResourceDemand, Server};
pub use topology::{CoreId, Topology};
