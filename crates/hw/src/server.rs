//! The assembled server: allocation state plus the shared-resource models.
//!
//! A [`Server`] owns the LLC, DRAM, power and NIC models together with the
//! current resource *allocations* (which cores belong to which class, the CAT
//! way split, the BE DVFS cap, the HTB ceiling).  The isolation-mechanism
//! crate mutates the allocations; the colocation harness asks the server to
//! [`evaluate`](Server::evaluate) the offered demands of the colocated
//! workloads under those allocations, producing the effective resources each
//! class receives plus the counters the controller observes.

use serde::{Deserialize, Serialize};

use crate::cache::{CacheSplit, LlcModel};
use crate::config::ServerConfig;
use crate::counters::CounterSnapshot;
use crate::memory::{DramModel, DramOutcome};
use crate::network::{NetOutcome, NicModel};
use crate::power::{PowerModel, PowerOutcome};
use crate::topology::Topology;

/// Resource allocation state: everything the four isolation mechanisms can
/// change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocations {
    total_cores: usize,
    total_ways: usize,
    lc_cores: usize,
    be_cores: usize,
    be_shares_lc_cores: bool,
    cat_enabled: bool,
    lc_ways: usize,
    be_ways: usize,
    be_freq_cap_ghz: Option<f64>,
    be_net_ceil_gbps: Option<f64>,
    package_cap_w: Option<f64>,
}

impl Allocations {
    fn new(config: &ServerConfig) -> Self {
        Allocations {
            total_cores: config.total_cores(),
            total_ways: config.llc_ways,
            lc_cores: config.total_cores(),
            be_cores: 0,
            be_shares_lc_cores: false,
            cat_enabled: false,
            lc_ways: config.llc_ways,
            be_ways: 0,
            be_freq_cap_ghz: None,
            be_net_ceil_gbps: None,
            package_cap_w: None,
        }
    }

    /// Cores currently dedicated to the LC workload.
    pub fn lc_cores(&self) -> usize {
        self.lc_cores
    }

    /// Cores currently dedicated to BE tasks.
    pub fn be_cores(&self) -> usize {
        self.be_cores
    }

    /// Total physical cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.total_cores
    }

    /// True if BE tasks are allowed to run on the LC cores' sibling
    /// HyperThreads (or time-share the same cores, as in the OS-only
    /// baseline).
    pub fn be_shares_lc_cores(&self) -> bool {
        self.be_shares_lc_cores
    }

    /// True if CAT way-partitioning is active.
    pub fn cat_enabled(&self) -> bool {
        self.cat_enabled
    }

    /// Ways assigned to the LC partition (when CAT is active).
    pub fn lc_ways(&self) -> usize {
        self.lc_ways
    }

    /// Ways assigned to the BE partition (when CAT is active).
    pub fn be_ways(&self) -> usize {
        self.be_ways
    }

    /// The per-core DVFS frequency cap on BE cores, if any.
    pub fn be_freq_cap_ghz(&self) -> Option<f64> {
        self.be_freq_cap_ghz
    }

    /// The HTB egress ceiling on the BE class, if any.
    pub fn be_net_ceil_gbps(&self) -> Option<f64> {
        self.be_net_ceil_gbps
    }

    /// The RAPL-style package power cap, if any.
    pub fn package_cap_w(&self) -> Option<f64> {
        self.package_cap_w
    }

    /// Sets the number of cores pinned to the LC workload (clamped to the
    /// machine size).  Cores not assigned to either class stay idle.
    pub fn set_lc_cores(&mut self, cores: usize) {
        self.lc_cores = cores.min(self.total_cores);
        self.be_cores = self.be_cores.min(self.total_cores - self.lc_cores);
    }

    /// Sets the number of cores pinned to BE tasks (clamped so the two
    /// classes never overlap unless [`set_be_shares_lc_cores`] is enabled).
    ///
    /// [`set_be_shares_lc_cores`]: Allocations::set_be_shares_lc_cores
    pub fn set_be_cores(&mut self, cores: usize) {
        if self.be_shares_lc_cores {
            self.be_cores = cores.min(self.total_cores);
        } else {
            self.be_cores = cores.min(self.total_cores.saturating_sub(self.lc_cores));
        }
    }

    /// Allows or forbids BE tasks to share the LC cores (HyperThread sharing
    /// or unpinned OS scheduling).  Heracles always forbids this; the OS-only
    /// baseline and the HyperThread antagonist experiment enable it.
    pub fn set_be_shares_lc_cores(&mut self, shared: bool) {
        self.be_shares_lc_cores = shared;
        if !shared {
            self.be_cores = self.be_cores.min(self.total_cores.saturating_sub(self.lc_cores));
        }
    }

    /// Sets the CAT way split.  Values are clamped to keep at least one way
    /// per class and at most the number of ways in the LLC.
    pub fn set_cat(&mut self, lc_ways: usize, be_ways: usize) {
        let lc = lc_ways.clamp(1, self.total_ways.saturating_sub(1));
        let be = be_ways.clamp(1, self.total_ways - lc);
        self.cat_enabled = true;
        self.lc_ways = lc;
        self.be_ways = be;
    }

    /// Disables CAT partitioning.
    pub fn clear_cat(&mut self) {
        self.cat_enabled = false;
        self.lc_ways = self.total_ways;
        self.be_ways = 0;
    }

    /// Sets (or clears) the per-core DVFS cap for BE cores.
    pub fn set_be_freq_cap_ghz(&mut self, cap: Option<f64>) {
        self.be_freq_cap_ghz = cap.map(|c| c.max(0.0));
    }

    /// Sets (or clears) the HTB egress ceiling for the BE class.
    pub fn set_be_net_ceil_gbps(&mut self, ceil: Option<f64>) {
        self.be_net_ceil_gbps = ceil.map(|c| c.max(0.0));
    }

    /// Sets (or clears) the RAPL-style package power cap.  The power model
    /// treats it as an effective-TDP override, so capping a package below
    /// TDP lowers both classes' frequencies the way RAPL's balancer would.
    pub fn set_package_cap_w(&mut self, cap: Option<f64>) {
        self.package_cap_w = cap.map(|c| c.max(0.0));
    }

    /// Number of cores not assigned to either class.
    pub fn idle_cores(&self) -> usize {
        if self.be_shares_lc_cores {
            self.total_cores.saturating_sub(self.lc_cores.max(self.be_cores))
        } else {
            self.total_cores.saturating_sub(self.lc_cores + self.be_cores)
        }
    }
}

/// The offered demands of the colocated workloads for one measurement window.
///
/// All fields are plain `pub` data: this is the narrow waist between the
/// workload models (which produce demands from load and profiles) and the
/// hardware models (which turn demands into effective resources).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// Number of LC cores that are actually busy (≤ allocated LC cores).
    pub lc_active_cores: f64,
    /// Per-core activity factor of the LC workload (0–1.3).
    pub lc_compute_activity: f64,
    /// DRAM bandwidth demanded by the LC workload, in GB/s.
    pub lc_dram_gbps: f64,
    /// LLC footprint the LC workload would like to keep resident, in MB.
    pub lc_llc_footprint_mb: f64,
    /// Egress bandwidth of LC responses, in Gbps.
    pub lc_net_gbps: f64,
    /// Number of BE cores that are busy.
    pub be_active_cores: f64,
    /// Per-core activity factor of the BE tasks (a power virus exceeds 1).
    pub be_compute_activity: f64,
    /// DRAM bandwidth demanded by the BE tasks per busy core, in GB/s.
    pub be_dram_gbps_per_core: f64,
    /// LLC footprint the BE tasks generate, in MB.
    pub be_llc_footprint_mb: f64,
    /// Egress bandwidth the BE tasks try to send, in Gbps.
    pub be_net_offered_gbps: f64,
    /// Intensity (0–1) of a HyperThread antagonist sharing the LC cores;
    /// only meaningful when the allocation allows core sharing.
    pub smt_antagonist_intensity: f64,
}

/// Effective resources and counters resulting from one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionOutcome {
    /// Frequency of LC cores, in GHz.
    pub lc_freq_ghz: f64,
    /// Frequency of BE cores, in GHz.
    pub be_freq_ghz: f64,
    /// Turbo limit at the current active-core count, in GHz.
    pub turbo_limit_ghz: f64,
    /// RAPL-visible package power, in watts.
    pub package_power_w: f64,
    /// LLC capacity effectively available to the LC workload, in MB.
    pub lc_cache_mb: f64,
    /// LLC capacity effectively available to BE tasks, in MB.
    pub be_cache_mb: f64,
    /// Total offered DRAM demand divided by peak bandwidth.
    pub dram_demand_ratio: f64,
    /// DRAM bandwidth achieved in total, in GB/s.
    pub dram_achieved_gbps: f64,
    /// DRAM bandwidth achieved by the LC class, in GB/s.
    pub lc_dram_achieved_gbps: f64,
    /// DRAM bandwidth achieved by the BE class, in GB/s.
    pub be_dram_achieved_gbps: f64,
    /// Multiplier on uncontended memory access latency.
    pub mem_latency_multiplier: f64,
    /// Egress bandwidth achieved by the LC class, in Gbps.
    pub lc_net_achieved_gbps: f64,
    /// Egress bandwidth achieved by the BE class, in Gbps.
    pub be_net_achieved_gbps: f64,
    /// Egress link utilization (0–1).
    pub net_utilization: f64,
    /// Extra per-response transmit delay for the LC class, in seconds.
    pub lc_net_extra_delay_s: f64,
    /// Multiplicative slowdown of LC compute from HyperThread sharing.
    pub smt_slowdown: f64,
    /// Fraction of the machine's cores that are busy.
    pub cpu_utilization: f64,
    /// Fraction of the LC workload's allocated cores that are busy.
    pub lc_pool_utilization: f64,
}

/// A simulated server: configuration, shared-resource models and the current
/// resource allocations.
#[derive(Debug, Clone)]
pub struct Server {
    config: ServerConfig,
    topology: Topology,
    llc: LlcModel,
    dram: DramModel,
    power: PowerModel,
    nic: NicModel,
    allocations: Allocations,
}

impl Server {
    /// Builds a server from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ServerConfig::validate`].
    pub fn new(config: ServerConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid server configuration: {e}");
        }
        Server {
            topology: Topology::new(&config),
            llc: LlcModel::new(&config),
            dram: DramModel::new(&config),
            power: PowerModel::new(&config),
            nic: NicModel::new(&config),
            allocations: Allocations::new(&config),
            config,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The CPU topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current allocations.
    pub fn allocations(&self) -> &Allocations {
        &self.allocations
    }

    /// Mutable access to the allocations (used by the isolation mechanisms).
    pub fn allocations_mut(&mut self) -> &mut Allocations {
        &mut self.allocations
    }

    /// The DRAM model (used by the offline profiling tools).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The NIC model.
    pub fn nic(&self) -> &NicModel {
        &self.nic
    }

    /// The LLC capacity split the current allocation gives each class for the
    /// stated footprints, without evaluating the other resources.
    pub fn cache_split(&self, lc_footprint_mb: f64, be_footprint_mb: f64) -> CacheSplit {
        self.partitioned_llc().split(lc_footprint_mb, be_footprint_mb)
    }

    fn partitioned_llc(&self) -> LlcModel {
        let mut llc = self.llc.clone();
        if self.allocations.cat_enabled {
            // Allocations clamp the way split, so this cannot fail.
            llc.set_partitions(self.allocations.lc_ways, self.allocations.be_ways)
                .expect("allocations maintain a valid way split");
        } else {
            llc.clear_partitions();
        }
        llc
    }

    /// Evaluates the offered demands under the current allocations.
    pub fn evaluate(&self, demand: &ResourceDemand) -> ContentionOutcome {
        let alloc = &self.allocations;

        // Cache capacity split.
        let cache =
            self.partitioned_llc().split(demand.lc_llc_footprint_mb, demand.be_llc_footprint_mb);

        // Package power and frequencies.
        let lc_active = demand.lc_active_cores.clamp(0.0, alloc.lc_cores as f64);
        let be_core_limit =
            if alloc.be_shares_lc_cores { alloc.total_cores as f64 } else { alloc.be_cores as f64 };
        let be_active = demand.be_active_cores.clamp(0.0, be_core_limit);
        let power: PowerOutcome = self.power.solve_capped(
            lc_active,
            demand.lc_compute_activity.max(0.0),
            be_active,
            demand.be_compute_activity.max(0.0),
            alloc.be_freq_cap_ghz,
            alloc.package_cap_w,
        );

        // DRAM bandwidth. BE demand scales with how fast its cores actually run.
        let be_freq_scale = if self.power.nominal_ghz() > 0.0 {
            power.be_freq_ghz / self.power.nominal_ghz()
        } else {
            1.0
        };
        let be_dram = demand.be_dram_gbps_per_core * be_active * be_freq_scale;
        let dram: DramOutcome = self.dram.offer(demand.lc_dram_gbps, be_dram);

        // Network egress.
        let mut nic = self.nic;
        nic.set_be_ceil_gbps(alloc.be_net_ceil_gbps);
        let net: NetOutcome = nic.offer(demand.lc_net_gbps, demand.be_net_offered_gbps);

        // HyperThread interference.
        let smt_slowdown = if alloc.be_shares_lc_cores && demand.smt_antagonist_intensity > 0.0 {
            let t = demand.smt_antagonist_intensity.clamp(0.0, 1.0);
            self.config.smt_min_penalty
                + (self.config.smt_max_penalty - self.config.smt_min_penalty) * t
        } else {
            1.0
        };

        let busy = if alloc.be_shares_lc_cores {
            (lc_active + be_active).min(alloc.total_cores as f64)
        } else {
            lc_active + be_active
        };

        let lc_pool_utilization = if alloc.lc_cores > 0 {
            (lc_active / alloc.lc_cores as f64).clamp(0.0, 1.0)
        } else {
            0.0
        };

        ContentionOutcome {
            lc_freq_ghz: power.lc_freq_ghz,
            be_freq_ghz: power.be_freq_ghz,
            turbo_limit_ghz: power.turbo_limit_ghz,
            package_power_w: power.package_power_w,
            lc_cache_mb: cache.lc_mb,
            be_cache_mb: cache.be_mb,
            dram_demand_ratio: dram.demand_ratio,
            dram_achieved_gbps: dram.achieved_gbps,
            lc_dram_achieved_gbps: dram.lc_achieved_gbps,
            be_dram_achieved_gbps: dram.be_achieved_gbps,
            mem_latency_multiplier: dram.latency_multiplier,
            lc_net_achieved_gbps: net.lc_achieved_gbps,
            be_net_achieved_gbps: net.be_achieved_gbps,
            net_utilization: net.utilization,
            lc_net_extra_delay_s: net.lc_extra_delay_s,
            smt_slowdown,
            cpu_utilization: (busy / alloc.total_cores as f64).clamp(0.0, 1.0),
            lc_pool_utilization,
        }
    }

    /// The counters the controller observes for a given outcome.
    pub fn counters(&self, outcome: &ContentionOutcome) -> CounterSnapshot {
        CounterSnapshot {
            dram_total_gbps: outcome.dram_achieved_gbps,
            dram_be_gbps: outcome.be_dram_achieved_gbps,
            dram_peak_gbps: self.dram.peak_gbps(),
            lc_freq_ghz: outcome.lc_freq_ghz,
            be_freq_ghz: outcome.be_freq_ghz,
            package_power_w: outcome.package_power_w,
            tdp_w: self.power.tdp_w(),
            cpu_utilization: outcome.cpu_utilization,
            lc_cpu_utilization: outcome.lc_pool_utilization,
            nic_lc_gbps: outcome.lc_net_achieved_gbps,
            nic_be_gbps: outcome.be_net_achieved_gbps,
            nic_link_gbps: self.nic.link_gbps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> ResourceDemand {
        ResourceDemand {
            lc_active_cores: 12.0,
            lc_compute_activity: 0.8,
            lc_dram_gbps: 20.0,
            lc_llc_footprint_mb: 30.0,
            lc_net_gbps: 0.5,
            be_active_cores: 18.0,
            be_compute_activity: 1.0,
            be_dram_gbps_per_core: 2.0,
            be_llc_footprint_mb: 40.0,
            be_net_offered_gbps: 0.0,
            smt_antagonist_intensity: 0.0,
        }
    }

    fn server() -> Server {
        let mut s = Server::new(ServerConfig::default_haswell());
        s.allocations_mut().set_lc_cores(18);
        s.allocations_mut().set_be_cores(18);
        s
    }

    #[test]
    fn allocations_are_clamped() {
        let mut s = Server::new(ServerConfig::default_haswell());
        s.allocations_mut().set_lc_cores(100);
        assert_eq!(s.allocations().lc_cores(), 36);
        s.allocations_mut().set_lc_cores(30);
        s.allocations_mut().set_be_cores(100);
        assert_eq!(s.allocations().be_cores(), 6);
        assert_eq!(s.allocations().idle_cores(), 0);
    }

    #[test]
    fn cat_way_split_is_clamped() {
        let mut s = Server::new(ServerConfig::default_haswell());
        s.allocations_mut().set_cat(100, 100);
        assert!(s.allocations().cat_enabled());
        assert_eq!(s.allocations().lc_ways() + s.allocations().be_ways(), 20);
        s.allocations_mut().set_cat(0, 0);
        assert_eq!(s.allocations().lc_ways(), 1);
        assert_eq!(s.allocations().be_ways(), 1);
    }

    #[test]
    fn evaluation_is_internally_consistent() {
        let s = server();
        let out = s.evaluate(&demand());
        assert!(out.lc_freq_ghz >= s.config().min_freq_ghz);
        assert!(out.lc_cache_mb > 0.0);
        assert!(out.dram_achieved_gbps <= s.dram().peak_gbps() + 1e-9);
        assert!(out.cpu_utilization <= 1.0);
        assert_eq!(out.smt_slowdown, 1.0);
    }

    #[test]
    fn cat_protects_lc_cache_in_evaluation() {
        let mut s = server();
        let mut d = demand();
        d.be_llc_footprint_mb = 500.0;
        let shared = s.evaluate(&d);
        s.allocations_mut().set_cat(14, 6);
        let isolated = s.evaluate(&d);
        assert!(isolated.lc_cache_mb > shared.lc_cache_mb);
    }

    #[test]
    fn dvfs_cap_shows_up_in_outcome() {
        let mut s = server();
        s.allocations_mut().set_be_freq_cap_ghz(Some(1.3));
        let out = s.evaluate(&demand());
        assert!(out.be_freq_ghz <= 1.3 + 1e-9);
        assert!(out.lc_freq_ghz >= out.be_freq_ghz);
    }

    #[test]
    fn htb_ceiling_shows_up_in_outcome() {
        let mut s = server();
        let mut d = demand();
        d.lc_net_gbps = 5.0;
        d.be_net_offered_gbps = 20.0;
        let unshaped = s.evaluate(&d);
        s.allocations_mut().set_be_net_ceil_gbps(Some(2.0));
        let shaped = s.evaluate(&d);
        assert!(shaped.lc_net_achieved_gbps > unshaped.lc_net_achieved_gbps - 1e-9);
        assert!(shaped.be_net_achieved_gbps <= 2.0 + 1e-9);
        assert!(shaped.lc_net_extra_delay_s < unshaped.lc_net_extra_delay_s);
    }

    #[test]
    fn smt_sharing_penalty_applies_only_when_shared() {
        let mut s = server();
        let mut d = demand();
        d.smt_antagonist_intensity = 1.0;
        assert_eq!(s.evaluate(&d).smt_slowdown, 1.0);
        s.allocations_mut().set_be_shares_lc_cores(true);
        let out = s.evaluate(&d);
        assert!(out.smt_slowdown >= s.config().smt_max_penalty - 1e-9);
    }

    #[test]
    fn counters_reflect_outcome() {
        let s = server();
        let out = s.evaluate(&demand());
        let c = s.counters(&out);
        assert_eq!(c.dram_total_gbps, out.dram_achieved_gbps);
        assert_eq!(c.lc_freq_ghz, out.lc_freq_ghz);
        assert!(c.dram_utilization() > 0.0);
        assert!(c.nic_utilization() >= 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let mut cfg = ServerConfig::default_haswell();
        cfg.sockets = 0;
        let _ = Server::new(cfg);
    }
}
