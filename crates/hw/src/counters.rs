//! The counters the controller is allowed to observe.
//!
//! Heracles deliberately uses only information available on production
//! servers: tail latency and load reported by the LC service itself, DRAM
//! bandwidth from the memory-controller counters, an estimate of per-core
//! memory traffic, RAPL package power, per-core frequency, and NIC transmit
//! bytes.  [`CounterSnapshot`] is exactly that observable surface — the
//! controller never sees the model's internal state (e.g. the true latency
//! multiplier), mirroring the information asymmetry of the real system.

use serde::{Deserialize, Serialize};

/// One measurement window's worth of hardware counter readings.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Total DRAM bandwidth observed at the memory controllers, in GB/s.
    pub dram_total_gbps: f64,
    /// Estimated DRAM bandwidth of the best-effort class, in GB/s (derived
    /// from per-core traffic counters).
    pub dram_be_gbps: f64,
    /// Peak streaming DRAM bandwidth of the machine, in GB/s.
    pub dram_peak_gbps: f64,
    /// Average frequency of the cores running the LC workload, in GHz.
    pub lc_freq_ghz: f64,
    /// Average frequency of the cores running BE tasks, in GHz.
    pub be_freq_ghz: f64,
    /// RAPL package power (all sockets), in watts.
    pub package_power_w: f64,
    /// Package TDP (all sockets), in watts.
    pub tdp_w: f64,
    /// Fraction of the server's cores that are busy (0–1).
    pub cpu_utilization: f64,
    /// Fraction of the LC workload's *allocated* cores that are busy (0–1),
    /// as reported by cgroup CPU accounting for the LC container.
    pub lc_cpu_utilization: f64,
    /// NIC transmit bandwidth of the LC class, in Gbps.
    pub nic_lc_gbps: f64,
    /// NIC transmit bandwidth of the BE class, in Gbps.
    pub nic_be_gbps: f64,
    /// NIC line rate, in Gbps.
    pub nic_link_gbps: f64,
}

impl CounterSnapshot {
    /// DRAM bandwidth as a fraction of peak.
    pub fn dram_utilization(&self) -> f64 {
        if self.dram_peak_gbps > 0.0 {
            self.dram_total_gbps / self.dram_peak_gbps
        } else {
            0.0
        }
    }

    /// Estimated DRAM bandwidth of the LC class, in GB/s.
    pub fn dram_lc_gbps(&self) -> f64 {
        (self.dram_total_gbps - self.dram_be_gbps).max(0.0)
    }

    /// Package power as a fraction of TDP.
    pub fn power_fraction(&self) -> f64 {
        if self.tdp_w > 0.0 {
            self.package_power_w / self.tdp_w
        } else {
            0.0
        }
    }

    /// NIC utilization (both classes) as a fraction of line rate.
    pub fn nic_utilization(&self) -> f64 {
        if self.nic_link_gbps > 0.0 {
            (self.nic_lc_gbps + self.nic_be_gbps) / self.nic_link_gbps
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> CounterSnapshot {
        CounterSnapshot {
            dram_total_gbps: 60.0,
            dram_be_gbps: 36.0,
            dram_peak_gbps: 120.0,
            lc_freq_ghz: 2.3,
            be_freq_ghz: 1.8,
            package_power_w: 200.0,
            tdp_w: 290.0,
            cpu_utilization: 0.75,
            lc_cpu_utilization: 0.6,
            nic_lc_gbps: 4.0,
            nic_be_gbps: 2.0,
            nic_link_gbps: 10.0,
        }
    }

    #[test]
    fn derived_ratios() {
        let s = snapshot();
        assert!((s.dram_utilization() - 0.5).abs() < 1e-12);
        assert!((s.dram_lc_gbps() - 24.0).abs() < 1e-12);
        assert!((s.power_fraction() - 200.0 / 290.0).abs() < 1e-12);
        assert!((s.nic_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_ratios_are_zero() {
        let s = CounterSnapshot::default();
        assert_eq!(s.dram_utilization(), 0.0);
        assert_eq!(s.power_fraction(), 0.0);
        assert_eq!(s.nic_utilization(), 0.0);
    }

    #[test]
    fn lc_dram_never_negative() {
        let mut s = snapshot();
        s.dram_be_gbps = 100.0;
        assert_eq!(s.dram_lc_gbps(), 0.0);
    }
}
