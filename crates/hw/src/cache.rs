//! Last-level cache model with way-partitioning (Intel CAT).
//!
//! CAT way-partitions a highly associative LLC into non-overlapping subsets:
//! cores assigned to a partition only *allocate* in their subset (they may hit
//! anywhere, but in steady state their resident footprint is bounded by their
//! partition).  The model therefore reduces to a capacity split: with CAT
//! enabled each class gets its partition's capacity; with CAT disabled the two
//! classes compete for capacity in proportion to the footprint pressure they
//! generate, which is how a streaming antagonist evicts a latency-critical
//! workload's working set.

use serde::{Deserialize, Serialize};

use crate::config::ServerConfig;

/// Effective LLC capacity received by each colocated class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSplit {
    /// Capacity the latency-critical workload can keep resident, in MB.
    pub lc_mb: f64,
    /// Capacity the best-effort tasks can keep resident, in MB.
    pub be_mb: f64,
}

/// The shared last-level cache and its partitioning state.
///
/// # Example
///
/// ```
/// use heracles_hw::{LlcModel, ServerConfig};
/// let cfg = ServerConfig::default_haswell();
/// let mut llc = LlcModel::new(&cfg);
/// llc.set_partitions(14, 6).unwrap();
/// let split = llc.split(30.0, 100.0);
/// // With CAT, the streaming task cannot evict the LC partition.
/// assert!(split.lc_mb >= 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlcModel {
    total_ways: usize,
    mb_per_way: f64,
    partitioned: bool,
    lc_ways: usize,
    be_ways: usize,
}

impl LlcModel {
    /// Creates the LLC model for a server, initially unpartitioned.
    pub fn new(config: &ServerConfig) -> Self {
        LlcModel {
            total_ways: config.llc_ways,
            mb_per_way: config.llc_mb_per_way(),
            partitioned: false,
            lc_ways: config.llc_ways,
            be_ways: 0,
        }
    }

    /// Total number of ways.
    pub fn total_ways(&self) -> usize {
        self.total_ways
    }

    /// Capacity of one way (aggregated over sockets), in MB.
    pub fn mb_per_way(&self) -> f64 {
        self.mb_per_way
    }

    /// Total capacity in MB.
    pub fn total_mb(&self) -> f64 {
        self.total_ways as f64 * self.mb_per_way
    }

    /// True if CAT partitioning is currently in effect.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Ways currently assigned to the LC partition (meaningful only when
    /// partitioned).
    pub fn lc_ways(&self) -> usize {
        self.lc_ways
    }

    /// Ways currently assigned to the BE partition (meaningful only when
    /// partitioned).
    pub fn be_ways(&self) -> usize {
        self.be_ways
    }

    /// Enables CAT with the given way split.
    ///
    /// # Errors
    ///
    /// Returns an error if either class would get zero ways or the total
    /// exceeds the number of ways in the cache.
    pub fn set_partitions(&mut self, lc_ways: usize, be_ways: usize) -> Result<(), String> {
        if lc_ways == 0 || be_ways == 0 {
            return Err("each CAT partition needs at least one way".into());
        }
        if lc_ways + be_ways > self.total_ways {
            return Err(format!(
                "partition of {}+{} ways exceeds the {}-way LLC",
                lc_ways, be_ways, self.total_ways
            ));
        }
        self.partitioned = true;
        self.lc_ways = lc_ways;
        self.be_ways = be_ways;
        Ok(())
    }

    /// Disables CAT; both classes compete for the whole cache.
    pub fn clear_partitions(&mut self) {
        self.partitioned = false;
        self.lc_ways = self.total_ways;
        self.be_ways = 0;
    }

    /// Computes the capacity each class effectively keeps resident given the
    /// footprint pressure each class generates.
    ///
    /// With CAT the answer is simply the partition capacities.  Without CAT,
    /// capacity is shared in proportion to footprint pressure (a streaming
    /// task with a huge footprint takes almost everything), but no class holds
    /// more than its own footprint; capacity freed by a small-footprint class
    /// is given back to the other.
    pub fn split(&self, lc_footprint_mb: f64, be_footprint_mb: f64) -> CacheSplit {
        let lc_fp = lc_footprint_mb.max(0.0);
        let be_fp = be_footprint_mb.max(0.0);
        if self.partitioned {
            return CacheSplit {
                lc_mb: self.lc_ways as f64 * self.mb_per_way,
                be_mb: self.be_ways as f64 * self.mb_per_way,
            };
        }
        let total = self.total_mb();
        if lc_fp + be_fp <= total {
            // Everything fits: no contention.
            return CacheSplit { lc_mb: lc_fp.min(total), be_mb: be_fp.min(total) };
        }
        if lc_fp + be_fp <= 0.0 {
            return CacheSplit { lc_mb: 0.0, be_mb: 0.0 };
        }
        // Proportional competition, then redistribute any slack from a class
        // whose share exceeds its footprint.
        let lc_share = total * lc_fp / (lc_fp + be_fp);
        let be_share = total - lc_share;
        let lc_mb = lc_share.min(lc_fp);
        let be_mb = be_share.min(be_fp);
        let slack = total - lc_mb - be_mb;
        if slack > 0.0 {
            if lc_mb < lc_fp {
                return CacheSplit { lc_mb: (lc_mb + slack).min(lc_fp), be_mb };
            }
            if be_mb < be_fp {
                return CacheSplit { lc_mb, be_mb: (be_mb + slack).min(be_fp) };
            }
        }
        CacheSplit { lc_mb, be_mb }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> LlcModel {
        LlcModel::new(&ServerConfig::default_haswell())
    }

    #[test]
    fn starts_unpartitioned_with_full_capacity() {
        let llc = llc();
        assert!(!llc.is_partitioned());
        assert!((llc.total_mb() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn partition_capacity_is_respected() {
        let mut llc = llc();
        llc.set_partitions(16, 4).unwrap();
        let split = llc.split(200.0, 200.0);
        assert!((split.lc_mb - 16.0 * 4.5).abs() < 1e-9);
        assert!((split.be_mb - 4.0 * 4.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_partitions_rejected() {
        let mut llc = llc();
        assert!(llc.set_partitions(0, 5).is_err());
        assert!(llc.set_partitions(5, 0).is_err());
        assert!(llc.set_partitions(15, 15).is_err());
        assert!(!llc.is_partitioned());
    }

    #[test]
    fn unpartitioned_small_footprints_fit() {
        let llc = llc();
        let split = llc.split(10.0, 20.0);
        assert_eq!(split.lc_mb, 10.0);
        assert_eq!(split.be_mb, 20.0);
    }

    #[test]
    fn unpartitioned_streaming_antagonist_evicts_lc() {
        let llc = llc();
        // LC wants 30 MB, the antagonist streams through 400 MB.
        let split = llc.split(30.0, 400.0);
        assert!(split.lc_mb < 10.0, "LC kept {} MB", split.lc_mb);
        assert!(split.be_mb > 80.0);
    }

    #[test]
    fn cat_protects_lc_from_streaming_antagonist() {
        let mut llc = llc();
        llc.set_partitions(12, 8).unwrap();
        let split = llc.split(30.0, 400.0);
        assert!(split.lc_mb >= 30.0);
    }

    #[test]
    fn clear_partitions_restores_sharing() {
        let mut llc = llc();
        llc.set_partitions(10, 10).unwrap();
        llc.clear_partitions();
        assert!(!llc.is_partitioned());
        let split = llc.split(5.0, 5.0);
        assert_eq!(split.lc_mb, 5.0);
    }

    #[test]
    fn slack_is_redistributed_to_the_needier_class() {
        let llc = llc();
        // LC tiny, BE huge: BE should get nearly the whole cache.
        let split = llc.split(1.0, 1000.0);
        assert!(split.be_mb > 85.0);
        assert!((split.lc_mb + split.be_mb) <= llc.total_mb() + 1e-9);
    }

    #[test]
    fn zero_footprints_get_zero_capacity() {
        let llc = llc();
        let split = llc.split(0.0, 0.0);
        assert_eq!(split.lc_mb, 0.0);
        assert_eq!(split.be_mb, 0.0);
    }
}
