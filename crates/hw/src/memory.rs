//! DRAM bandwidth model.
//!
//! Commercial chips (at the time of the paper) provide no hardware mechanism
//! to *isolate* memory bandwidth; they only provide counters to *measure* it.
//! The model therefore exposes two things: how close the memory system is to
//! its peak streaming bandwidth, and how the average memory access latency
//! inflates as that point is approached.  The latency inflation is the
//! non-linear "inflection point" behaviour that makes DRAM saturation so
//! damaging to tail latency (§3.3, Figure 1, DRAM row).

use serde::{Deserialize, Serialize};

use crate::config::ServerConfig;

/// Result of offering a set of bandwidth demands to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramOutcome {
    /// Total offered demand in GB/s.
    pub demand_gbps: f64,
    /// Demand divided by peak bandwidth; may exceed 1 when oversubscribed.
    pub demand_ratio: f64,
    /// Achieved (delivered) total bandwidth in GB/s, never above peak.
    pub achieved_gbps: f64,
    /// Achieved bandwidth for the latency-critical class in GB/s.
    pub lc_achieved_gbps: f64,
    /// Achieved bandwidth for the best-effort class in GB/s.
    pub be_achieved_gbps: f64,
    /// Multiplier on the uncontended memory access latency.
    pub latency_multiplier: f64,
}

/// The server's aggregate DRAM bandwidth and access latency behaviour.
///
/// # Example
///
/// ```
/// use heracles_hw::{DramModel, ServerConfig};
/// let dram = DramModel::new(&ServerConfig::default_haswell());
/// let calm = dram.offer(10.0, 10.0);
/// let saturated = dram.offer(60.0, 80.0);
/// assert!(saturated.latency_multiplier > 3.0 * calm.latency_multiplier);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    peak_gbps: f64,
    base_latency_ns: f64,
    /// Shape parameters of the latency-inflation curve.
    contention_alpha: f64,
    contention_beta: f64,
    max_multiplier: f64,
}

impl DramModel {
    /// Creates the DRAM model for a server.
    pub fn new(config: &ServerConfig) -> Self {
        DramModel {
            peak_gbps: config.dram_peak_gbps(),
            base_latency_ns: config.dram_base_latency_ns,
            contention_alpha: 0.12,
            contention_beta: 3.0,
            max_multiplier: 40.0,
        }
    }

    /// Peak streaming bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_gbps
    }

    /// Uncontended access latency in nanoseconds.
    pub fn base_latency_ns(&self) -> f64 {
        self.base_latency_ns
    }

    /// Contended access latency in nanoseconds at a given utilization.
    pub fn latency_ns(&self, utilization: f64) -> f64 {
        self.base_latency_ns * self.latency_multiplier(utilization)
    }

    /// The latency inflation factor at a given demand ratio
    /// (`demand / peak`, may exceed one).
    ///
    /// Below ~80% of peak the penalty is small; beyond that it grows
    /// super-linearly, and once demand exceeds peak the queue is unstable and
    /// the factor grows with the overload until a cap.
    pub fn latency_multiplier(&self, demand_ratio: f64) -> f64 {
        let rho = demand_ratio.max(0.0);
        let stable = rho.min(0.97);
        let base = 1.0 + self.contention_alpha * stable.powf(self.contention_beta) / (1.0 - stable);
        let overload_penalty = if rho > 0.97 { 1.0 + 10.0 * (rho - 0.97) } else { 1.0 };
        (base * overload_penalty).min(self.max_multiplier)
    }

    /// Offers the two classes' bandwidth demands to the memory system.
    ///
    /// When the total demand exceeds peak bandwidth the memory controllers
    /// deliver peak bandwidth split proportionally to demand (there is no
    /// hardware isolation), and the access latency multiplier reflects the
    /// oversubscription.
    pub fn offer(&self, lc_demand_gbps: f64, be_demand_gbps: f64) -> DramOutcome {
        let lc = lc_demand_gbps.max(0.0);
        let be = be_demand_gbps.max(0.0);
        let demand = lc + be;
        let ratio = if self.peak_gbps > 0.0 { demand / self.peak_gbps } else { 0.0 };
        let (achieved, lc_achieved, be_achieved) = if demand <= self.peak_gbps || demand == 0.0 {
            (demand, lc, be)
        } else {
            let scale = self.peak_gbps / demand;
            (self.peak_gbps, lc * scale, be * scale)
        };
        DramOutcome {
            demand_gbps: demand,
            demand_ratio: ratio,
            achieved_gbps: achieved,
            lc_achieved_gbps: lc_achieved,
            be_achieved_gbps: be_achieved,
            latency_multiplier: self.latency_multiplier(ratio),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::new(&ServerConfig::default_haswell())
    }

    #[test]
    fn peak_matches_config() {
        assert!((dram().peak_gbps() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn latency_multiplier_is_monotone() {
        let d = dram();
        let mut prev = 0.0;
        for i in 0..=150 {
            let rho = i as f64 / 100.0;
            let m = d.latency_multiplier(rho);
            assert!(m >= prev - 1e-12, "multiplier decreased at rho={rho}");
            assert!(m >= 1.0);
            prev = m;
        }
    }

    #[test]
    fn low_utilization_is_nearly_uncontended() {
        let d = dram();
        assert!(d.latency_multiplier(0.2) < 1.05);
        assert!((d.latency_ns(0.0) - d.base_latency_ns()).abs() < 1e-9);
    }

    #[test]
    fn saturation_blows_up_latency() {
        let d = dram();
        assert!(d.latency_multiplier(0.95) > 2.0);
        assert!(d.latency_multiplier(1.2) > 6.0);
        assert!(d.latency_multiplier(5.0) <= 40.0);
    }

    #[test]
    fn undersubscribed_demand_is_fully_served() {
        let out = dram().offer(20.0, 30.0);
        assert_eq!(out.achieved_gbps, 50.0);
        assert_eq!(out.lc_achieved_gbps, 20.0);
        assert_eq!(out.be_achieved_gbps, 30.0);
        assert!(out.demand_ratio < 0.5);
    }

    #[test]
    fn oversubscribed_demand_is_rationed_proportionally() {
        let out = dram().offer(60.0, 180.0);
        assert!((out.achieved_gbps - 120.0).abs() < 1e-9);
        assert!((out.lc_achieved_gbps - 30.0).abs() < 1e-9);
        assert!((out.be_achieved_gbps - 90.0).abs() < 1e-9);
        assert!(out.demand_ratio > 1.9);
        assert!(out.latency_multiplier > 10.0);
    }

    #[test]
    fn negative_demands_are_clamped() {
        let out = dram().offer(-5.0, 10.0);
        assert_eq!(out.lc_achieved_gbps, 0.0);
        assert_eq!(out.be_achieved_gbps, 10.0);
    }
}
