//! CPU power, Turbo and per-core DVFS model.
//!
//! Modern chips opportunistically raise frequency above nominal when there is
//! power headroom (Turbo Boost) and share a single package power budget (TDP)
//! across all cores.  A power-hungry best-effort task therefore steals Turbo
//! headroom from the latency-critical cores.  The model reproduces that
//! coupling: given how many cores of each class are active, how intense their
//! activity is, and any per-core DVFS cap imposed on the best-effort cores, it
//! finds the highest frequency the package can sustain within TDP and reports
//! the resulting per-class frequencies and RAPL-visible package power.

use serde::{Deserialize, Serialize};

use crate::config::ServerConfig;

/// Frequencies and power resulting from the package power budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerOutcome {
    /// Frequency of the cores running the latency-critical workload, in GHz.
    pub lc_freq_ghz: f64,
    /// Frequency of the cores running best-effort tasks, in GHz.
    pub be_freq_ghz: f64,
    /// The Turbo limit for the current number of active cores, in GHz.
    pub turbo_limit_ghz: f64,
    /// Total package power across sockets, in watts (what RAPL reports).
    pub package_power_w: f64,
    /// Total TDP across sockets, in watts.
    pub tdp_w: f64,
}

impl PowerOutcome {
    /// Package power as a fraction of TDP.
    pub fn power_fraction(&self) -> f64 {
        if self.tdp_w > 0.0 {
            self.package_power_w / self.tdp_w
        } else {
            0.0
        }
    }
}

/// The package power / frequency model.
///
/// # Example
///
/// ```
/// use heracles_hw::{PowerModel, ServerConfig};
/// let power = PowerModel::new(&ServerConfig::default_haswell());
/// // LC alone on 12 cores gets Turbo headroom...
/// let alone = power.solve(12.0, 0.9, 0.0, 0.0, None);
/// // ...which a 24-core power virus takes away.
/// let contended = power.solve(12.0, 0.9, 24.0, 1.3, None);
/// assert!(contended.lc_freq_ghz < alone.lc_freq_ghz);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    nominal_ghz: f64,
    min_ghz: f64,
    max_turbo_ghz: f64,
    step_ghz: f64,
    idle_w: f64,
    core_dyn_w_nominal: f64,
    exponent: f64,
    tdp_w: f64,
    total_cores: usize,
    // Retained to compute the Turbo bin for a given active-core count.
    config_turbo: ServerConfig,
}

impl PowerModel {
    /// Creates the power model for a server.
    pub fn new(config: &ServerConfig) -> Self {
        PowerModel {
            nominal_ghz: config.nominal_freq_ghz,
            min_ghz: config.min_freq_ghz,
            max_turbo_ghz: config.max_turbo_freq_ghz,
            step_ghz: config.freq_step_ghz,
            idle_w: config.idle_w(),
            core_dyn_w_nominal: config.core_dyn_w_nominal,
            exponent: config.freq_power_exponent,
            tdp_w: config.tdp_w(),
            total_cores: config.total_cores(),
            config_turbo: config.clone(),
        }
    }

    /// Nominal (guaranteed) frequency in GHz.
    pub fn nominal_ghz(&self) -> f64 {
        self.nominal_ghz
    }

    /// Minimum DVFS frequency in GHz.
    pub fn min_ghz(&self) -> f64 {
        self.min_ghz
    }

    /// Total package TDP in watts.
    pub fn tdp_w(&self) -> f64 {
        self.tdp_w
    }

    /// Dynamic power of `cores` cores with `activity` running at `freq_ghz`.
    fn dynamic_power(&self, cores: f64, activity: f64, freq_ghz: f64) -> f64 {
        if cores <= 0.0 || activity <= 0.0 {
            return 0.0;
        }
        cores
            * activity
            * self.core_dyn_w_nominal
            * (freq_ghz / self.nominal_ghz).powf(self.exponent)
    }

    /// Total package power for a candidate chip frequency, respecting the
    /// best-effort DVFS cap.
    fn package_power(
        &self,
        freq_ghz: f64,
        lc_cores: f64,
        lc_activity: f64,
        be_cores: f64,
        be_activity: f64,
        be_cap_ghz: Option<f64>,
    ) -> f64 {
        let be_freq = be_cap_ghz.map_or(freq_ghz, |cap| cap.min(freq_ghz)).max(self.min_ghz);
        self.idle_w
            + self.dynamic_power(lc_cores, lc_activity, freq_ghz)
            + self.dynamic_power(be_cores, be_activity, be_freq)
    }

    /// Finds the frequencies the package settles at.
    ///
    /// `lc_cores` / `be_cores` are the number of *active* cores of each class
    /// (fractional values express partial activity), `*_activity` is the
    /// per-core activity factor (1.0 ≈ a fully busy integer-heavy core; a
    /// power virus exceeds 1.0), and `be_cap_ghz` is the per-core DVFS limit
    /// the controller may have placed on the best-effort cores.
    pub fn solve(
        &self,
        lc_cores: f64,
        lc_activity: f64,
        be_cores: f64,
        be_activity: f64,
        be_cap_ghz: Option<f64>,
    ) -> PowerOutcome {
        self.solve_capped(lc_cores, lc_activity, be_cores, be_activity, be_cap_ghz, None)
    }

    /// [`solve`](PowerModel::solve) under an optional RAPL-style package
    /// power cap.
    ///
    /// The cap acts as an effective-TDP override: the frequency walk-down
    /// fits the package into `min(cap, TDP)` instead of TDP, lowering both
    /// classes' frequencies exactly as RAPL's power balancer would, and the
    /// reported package power is clipped at 105% of the cap (the same
    /// transient-overshoot allowance the uncapped model grants TDP).  A
    /// leaf capped at `c` watts therefore never reports more than
    /// `1.05 × c`, which is what lets a fleet coordinator turn a cluster
    /// watt budget into per-leaf caps with a provable sum bound.
    pub fn solve_capped(
        &self,
        lc_cores: f64,
        lc_activity: f64,
        be_cores: f64,
        be_activity: f64,
        be_cap_ghz: Option<f64>,
        package_cap_w: Option<f64>,
    ) -> PowerOutcome {
        let lc_cores = lc_cores.clamp(0.0, self.total_cores as f64);
        let be_cores = be_cores.clamp(0.0, self.total_cores as f64);
        let active = lc_cores + be_cores;
        let turbo_limit = self.config_turbo.turbo_limit_ghz(active.max(1.0));
        let budget = package_cap_w.map_or(self.tdp_w, |cap| cap.clamp(0.0, self.tdp_w));

        // Walk down from the Turbo limit in DVFS steps until the package fits
        // in the budget (this is what the hardware's power balancer converges
        // to).
        let mut freq = turbo_limit;
        let mut power =
            self.package_power(freq, lc_cores, lc_activity, be_cores, be_activity, be_cap_ghz);
        while power > budget && freq > self.min_ghz {
            freq = (freq - self.step_ghz).max(self.min_ghz);
            power =
                self.package_power(freq, lc_cores, lc_activity, be_cores, be_activity, be_cap_ghz);
        }
        // Snap to the DVFS step grid.
        freq = (freq / self.step_ghz).floor() * self.step_ghz;
        freq = freq.clamp(self.min_ghz, turbo_limit);
        let be_freq = be_cap_ghz.map_or(freq, |cap| cap.min(freq)).max(self.min_ghz);
        let power =
            self.package_power(freq, lc_cores, lc_activity, be_cores, be_activity, be_cap_ghz);

        PowerOutcome {
            lc_freq_ghz: freq,
            be_freq_ghz: if be_cores > 0.0 { be_freq } else { freq },
            turbo_limit_ghz: turbo_limit,
            package_power_w: power.min(budget * 1.05),
            tdp_w: self.tdp_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(&ServerConfig::default_haswell())
    }

    #[test]
    fn idle_package_stays_at_turbo() {
        let out = model().solve(1.0, 0.1, 0.0, 0.0, None);
        assert!(out.lc_freq_ghz > 3.0, "got {}", out.lc_freq_ghz);
        assert!(out.package_power_w < 60.0);
    }

    #[test]
    fn lightly_loaded_lc_gets_turbo() {
        let out = model().solve(8.0, 0.8, 0.0, 0.0, None);
        assert!(out.lc_freq_ghz > ServerConfig::default_haswell().nominal_freq_ghz);
    }

    #[test]
    fn power_virus_steals_turbo_headroom() {
        let m = model();
        let alone = m.solve(12.0, 0.9, 0.0, 0.0, None);
        let contended = m.solve(12.0, 0.9, 24.0, 1.3, None);
        assert!(contended.lc_freq_ghz < alone.lc_freq_ghz);
        assert!(contended.package_power_w >= alone.package_power_w);
    }

    #[test]
    fn dvfs_cap_on_be_restores_lc_frequency() {
        let m = model();
        let uncapped = m.solve(12.0, 0.9, 24.0, 1.3, None);
        let capped = m.solve(12.0, 0.9, 24.0, 1.3, Some(m.min_ghz()));
        assert!(capped.lc_freq_ghz >= uncapped.lc_freq_ghz);
        assert!(capped.be_freq_ghz <= uncapped.be_freq_ghz);
        assert!((capped.be_freq_ghz - m.min_ghz()).abs() < 1e-9);
    }

    #[test]
    fn package_power_never_wildly_exceeds_tdp() {
        let out = model().solve(36.0, 1.3, 0.0, 0.0, None);
        assert!(out.package_power_w <= out.tdp_w * 1.05 + 1e-9);
    }

    #[test]
    fn frequencies_respect_bounds() {
        let m = model();
        for be_cores in [0.0, 8.0, 24.0, 36.0] {
            let out = m.solve(10.0, 1.0, be_cores, 1.3, Some(1.5));
            assert!(out.lc_freq_ghz >= m.min_ghz() - 1e-9);
            assert!(out.lc_freq_ghz <= out.turbo_limit_ghz + 1e-9);
            assert!(out.be_freq_ghz <= out.lc_freq_ghz + 1e-9);
        }
    }

    #[test]
    fn package_cap_acts_as_an_effective_tdp() {
        let m = model();
        let uncapped = m.solve(36.0, 1.0, 0.0, 0.0, None);
        let capped = m.solve_capped(36.0, 1.0, 0.0, 0.0, None, Some(120.0));
        assert!(capped.package_power_w <= 120.0 * 1.05 + 1e-9, "{}", capped.package_power_w);
        assert!(capped.lc_freq_ghz <= uncapped.lc_freq_ghz);
        // No cap is exactly the uncapped solve — bit-identical.
        let unchanged = m.solve_capped(12.0, 0.9, 24.0, 1.3, None, None);
        assert_eq!(unchanged, m.solve(12.0, 0.9, 24.0, 1.3, None));
        // A cap above TDP is inert.
        let inert = m.solve_capped(12.0, 0.9, 24.0, 1.3, None, Some(1e6));
        assert_eq!(inert, m.solve(12.0, 0.9, 24.0, 1.3, None));
    }

    #[test]
    fn power_fraction_is_well_defined() {
        let out = model().solve(18.0, 1.0, 18.0, 1.0, None);
        assert!(out.power_fraction() > 0.3 && out.power_fraction() <= 1.05);
    }
}
