//! Server hardware configuration.
//!
//! The defaults mirror the machines used in the paper's evaluation:
//! dual-socket Intel Xeon (Haswell) servers with a high core count, 2.3 GHz
//! nominal frequency, 2.5 MB of LLC per core, CAT way-partitioning support,
//! RAPL power monitoring and a 10 Gbps NIC.

use serde::{Deserialize, Serialize};

/// Static description of the simulated server.
///
/// All rates are aggregate over the whole server unless stated otherwise.
///
/// # Example
///
/// ```
/// use heracles_hw::ServerConfig;
/// let cfg = ServerConfig::default_haswell();
/// assert_eq!(cfg.total_cores(), 36);
/// assert!(cfg.llc_total_mb() > 80.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Number of CPU sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads (HyperThreads) per physical core.
    pub threads_per_core: usize,
    /// Nominal (guaranteed, non-Turbo) core frequency in GHz.
    pub nominal_freq_ghz: f64,
    /// Maximum single-core Turbo frequency in GHz.
    pub max_turbo_freq_ghz: f64,
    /// Minimum DVFS frequency in GHz.
    pub min_freq_ghz: f64,
    /// DVFS step size in GHz (the paper's chips step in 100 MHz increments).
    pub freq_step_ghz: f64,
    /// Number of LLC ways per socket (CAT partitions at way granularity).
    pub llc_ways: usize,
    /// Capacity of one LLC way in MB.
    pub llc_way_mb: f64,
    /// Peak streaming DRAM bandwidth per socket in GB/s.
    pub dram_peak_gbps_per_socket: f64,
    /// Uncontended DRAM access latency in nanoseconds.
    pub dram_base_latency_ns: f64,
    /// Thermal design power per socket in watts.
    pub tdp_w_per_socket: f64,
    /// Idle (uncore + package) power per socket in watts.
    pub idle_w_per_socket: f64,
    /// Dynamic power of one fully-active core at nominal frequency, in watts.
    pub core_dyn_w_nominal: f64,
    /// Exponent relating frequency to dynamic power (`P ∝ f^k`).
    pub freq_power_exponent: f64,
    /// NIC line rate in Gbps (egress, full duplex).
    pub nic_gbps: f64,
    /// Typical network packet/response serialization unit in bytes, used by
    /// the egress queueing-delay model.
    pub nic_mtu_bytes: f64,
    /// Multiplicative slowdown of a thread when the sibling HyperThread runs
    /// a minimal (register-spinloop) antagonist.
    pub smt_min_penalty: f64,
    /// Multiplicative slowdown of a thread when the sibling HyperThread runs
    /// a maximally demanding antagonist.
    pub smt_max_penalty: f64,
}

impl ServerConfig {
    /// The dual-socket Haswell-class configuration used throughout the
    /// evaluation (matches the qualitative description in §3.2 of the paper).
    pub fn default_haswell() -> Self {
        ServerConfig {
            sockets: 2,
            cores_per_socket: 18,
            threads_per_core: 2,
            nominal_freq_ghz: 2.3,
            max_turbo_freq_ghz: 3.3,
            min_freq_ghz: 1.2,
            freq_step_ghz: 0.1,
            llc_ways: 20,
            llc_way_mb: 2.25, // 45 MB per socket = 2.5 MB per core
            dram_peak_gbps_per_socket: 60.0,
            dram_base_latency_ns: 90.0,
            tdp_w_per_socket: 145.0,
            idle_w_per_socket: 28.0,
            core_dyn_w_nominal: 5.5,
            freq_power_exponent: 2.4,
            nic_gbps: 10.0,
            nic_mtu_bytes: 1500.0,
            smt_min_penalty: 1.12,
            smt_max_penalty: 1.65,
        }
    }

    /// An older-generation (Sandy-Bridge-class) server: half the cores of
    /// the Haswell box, a smaller LLC and markedly lower DRAM bandwidth
    /// (4-channel DDR3 vs DDR4).  Real datacenters run mixed generations for
    /// the whole amortization window, so the fleet experiments place over
    /// these alongside the paper's Haswells.
    pub fn older_sandy_bridge() -> Self {
        ServerConfig {
            cores_per_socket: 8,
            nominal_freq_ghz: 2.0,
            max_turbo_freq_ghz: 2.8,
            llc_way_mb: 1.0, // 20 MB per socket = 2.5 MB per core
            dram_peak_gbps_per_socket: 40.0,
            dram_base_latency_ns: 100.0,
            tdp_w_per_socket: 115.0,
            idle_w_per_socket: 32.0,
            core_dyn_w_nominal: 7.0,
            smt_min_penalty: 1.15,
            smt_max_penalty: 1.70,
            ..Self::default_haswell()
        }
    }

    /// A newer-generation (Skylake-class) server: a third more cores than
    /// the Haswell box and much higher DRAM bandwidth (6-channel DDR4),
    /// with the shallower per-core LLC of the newer parts.
    pub fn newer_skylake() -> Self {
        ServerConfig {
            cores_per_socket: 24,
            nominal_freq_ghz: 2.4,
            max_turbo_freq_ghz: 3.5,
            llc_way_mb: 1.65, // 33 MB per socket = 1.375 MB per core
            dram_peak_gbps_per_socket: 100.0,
            dram_base_latency_ns: 85.0,
            tdp_w_per_socket: 165.0,
            idle_w_per_socket: 30.0,
            core_dyn_w_nominal: 5.0,
            nic_gbps: 25.0,
            smt_min_penalty: 1.10,
            smt_max_penalty: 1.60,
            ..Self::default_haswell()
        }
    }

    /// A small single-socket configuration used by fast unit tests.
    pub fn small_test() -> Self {
        ServerConfig {
            sockets: 1,
            cores_per_socket: 8,
            threads_per_core: 2,
            llc_ways: 12,
            llc_way_mb: 1.5,
            dram_peak_gbps_per_socket: 40.0,
            tdp_w_per_socket: 95.0,
            idle_w_per_socket: 18.0,
            ..Self::default_haswell()
        }
    }

    /// Total number of physical cores in the server.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of hardware threads in the server.
    pub fn total_threads(&self) -> usize {
        self.total_cores() * self.threads_per_core
    }

    /// Total LLC capacity across all sockets, in MB.
    pub fn llc_total_mb(&self) -> f64 {
        self.sockets as f64 * self.llc_ways as f64 * self.llc_way_mb
    }

    /// LLC capacity of a single way aggregated over all sockets, in MB.
    ///
    /// The controller programs the same way mask on every socket, so one
    /// "way" of allocation buys `sockets * llc_way_mb` of capacity.
    pub fn llc_mb_per_way(&self) -> f64 {
        self.sockets as f64 * self.llc_way_mb
    }

    /// Peak streaming DRAM bandwidth across all sockets, in GB/s.
    pub fn dram_peak_gbps(&self) -> f64 {
        self.sockets as f64 * self.dram_peak_gbps_per_socket
    }

    /// Total thermal design power across all sockets, in watts.
    pub fn tdp_w(&self) -> f64 {
        self.sockets as f64 * self.tdp_w_per_socket
    }

    /// Total idle power across all sockets, in watts.
    pub fn idle_w(&self) -> f64 {
        self.sockets as f64 * self.idle_w_per_socket
    }

    /// The highest Turbo frequency sustainable when `active_cores` cores are
    /// busy, ignoring the TDP constraint (the classic per-active-core-count
    /// Turbo bin table, approximated linearly).
    pub fn turbo_limit_ghz(&self, active_cores: f64) -> f64 {
        let total = self.total_cores() as f64;
        if total <= 1.0 {
            return self.max_turbo_freq_ghz;
        }
        let fraction_active = (active_cores.max(1.0) - 1.0) / (total - 1.0);
        let span = self.max_turbo_freq_ghz - self.nominal_freq_ghz;
        // All-core turbo retains roughly 40% of the single-core turbo headroom.
        let limit = self.max_turbo_freq_ghz - span * 0.6 * fraction_active.clamp(0.0, 1.0);
        limit.max(self.nominal_freq_ghz)
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency found
    /// (e.g. a zero core count or a Turbo frequency below nominal).
    pub fn validate(&self) -> Result<(), String> {
        if self.sockets == 0 || self.cores_per_socket == 0 || self.threads_per_core == 0 {
            return Err("server must have at least one socket, core and thread".into());
        }
        if self.min_freq_ghz <= 0.0
            || self.nominal_freq_ghz < self.min_freq_ghz
            || self.max_turbo_freq_ghz < self.nominal_freq_ghz
        {
            return Err(format!(
                "frequencies must satisfy 0 < min ({}) <= nominal ({}) <= turbo ({})",
                self.min_freq_ghz, self.nominal_freq_ghz, self.max_turbo_freq_ghz
            ));
        }
        if self.llc_ways == 0 || self.llc_way_mb <= 0.0 {
            return Err("LLC must have at least one way of positive capacity".into());
        }
        if self.dram_peak_gbps_per_socket <= 0.0 {
            return Err("DRAM peak bandwidth must be positive".into());
        }
        if self.tdp_w_per_socket <= self.idle_w_per_socket {
            return Err("TDP must exceed idle power".into());
        }
        if self.nic_gbps <= 0.0 {
            return Err("NIC rate must be positive".into());
        }
        if self.smt_min_penalty < 1.0 || self.smt_max_penalty < self.smt_min_penalty {
            return Err("SMT penalties must satisfy 1 <= min <= max".into());
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::default_haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServerConfig::default_haswell().validate().is_ok());
        assert!(ServerConfig::small_test().validate().is_ok());
        assert!(ServerConfig::older_sandy_bridge().validate().is_ok());
        assert!(ServerConfig::newer_skylake().validate().is_ok());
    }

    #[test]
    fn generations_order_capacity_around_the_haswell_baseline() {
        let older = ServerConfig::older_sandy_bridge();
        let haswell = ServerConfig::default_haswell();
        let newer = ServerConfig::newer_skylake();
        assert!(older.total_cores() < haswell.total_cores());
        assert!(haswell.total_cores() < newer.total_cores());
        assert!(older.dram_peak_gbps() < haswell.dram_peak_gbps());
        assert!(haswell.dram_peak_gbps() < newer.dram_peak_gbps());
        assert!(older.nominal_freq_ghz < haswell.nominal_freq_ghz);
        assert!(haswell.nominal_freq_ghz < newer.nominal_freq_ghz);
    }

    #[test]
    fn derived_totals() {
        let cfg = ServerConfig::default_haswell();
        assert_eq!(cfg.total_cores(), 36);
        assert_eq!(cfg.total_threads(), 72);
        assert!((cfg.llc_total_mb() - 90.0).abs() < 1e-9);
        assert!((cfg.dram_peak_gbps() - 120.0).abs() < 1e-9);
        assert!((cfg.tdp_w() - 290.0).abs() < 1e-9);
    }

    #[test]
    fn turbo_limit_decreases_with_active_cores() {
        let cfg = ServerConfig::default_haswell();
        let one = cfg.turbo_limit_ghz(1.0);
        let all = cfg.turbo_limit_ghz(cfg.total_cores() as f64);
        assert_eq!(one, cfg.max_turbo_freq_ghz);
        assert!(all < one);
        assert!(all >= cfg.nominal_freq_ghz);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = ServerConfig::default_haswell();
        cfg.sockets = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ServerConfig::default_haswell();
        cfg.max_turbo_freq_ghz = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ServerConfig::default_haswell();
        cfg.llc_ways = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ServerConfig::default_haswell();
        cfg.idle_w_per_socket = 200.0;
        assert!(cfg.validate().is_err());
    }
}
