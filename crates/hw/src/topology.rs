//! CPU topology: sockets, physical cores and hardware threads.
//!
//! The controller allocates resources at the granularity of physical cores
//! (the paper shows that sharing a physical core between an LC and a BE
//! HyperThread is not viable), so the topology mainly provides identity and
//! bookkeeping: which cores exist, which socket they belong to, and how a
//! count of cores maps onto sockets.

use serde::{Deserialize, Serialize};

use crate::config::ServerConfig;

/// Identifier of a physical core, dense in `0..total_cores`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The dense index of this core.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The socket / core / thread layout of a server.
///
/// # Example
///
/// ```
/// use heracles_hw::{ServerConfig, Topology};
/// let topo = Topology::new(&ServerConfig::default_haswell());
/// assert_eq!(topo.total_cores(), 36);
/// assert_eq!(topo.socket_of(heracles_hw::CoreId(20)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: usize,
    cores_per_socket: usize,
    threads_per_core: usize,
}

impl Topology {
    /// Builds the topology described by a [`ServerConfig`].
    pub fn new(config: &ServerConfig) -> Self {
        Topology {
            sockets: config.sockets,
            cores_per_socket: config.cores_per_socket,
            threads_per_core: config.threads_per_core,
        }
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of physical cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Total number of physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of hardware threads.
    pub fn total_threads(&self) -> usize {
        self.total_cores() * self.threads_per_core
    }

    /// The socket index a core belongs to (cores are numbered socket-major).
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn socket_of(&self, core: CoreId) -> usize {
        assert!(core.0 < self.total_cores(), "core {} out of range", core.0);
        core.0 / self.cores_per_socket
    }

    /// Iterates over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }

    /// Splits a total core count as evenly as possible across sockets,
    /// returning the per-socket counts.  Used when an allocation of "N cores"
    /// must be spread over both sockets (the LC workload spans sockets; each
    /// BE job is confined to one socket, §4.3).
    pub fn spread_over_sockets(&self, cores: usize) -> Vec<usize> {
        let cores = cores.min(self.total_cores());
        let base = cores / self.sockets;
        let extra = cores % self.sockets;
        (0..self.sockets).map(|s| base + usize::from(s < extra)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_config() {
        let topo = Topology::new(&ServerConfig::default_haswell());
        assert_eq!(topo.sockets(), 2);
        assert_eq!(topo.total_cores(), 36);
        assert_eq!(topo.total_threads(), 72);
        assert_eq!(topo.cores().count(), 36);
    }

    #[test]
    fn socket_assignment_is_socket_major() {
        let topo = Topology::new(&ServerConfig::default_haswell());
        assert_eq!(topo.socket_of(CoreId(0)), 0);
        assert_eq!(topo.socket_of(CoreId(17)), 0);
        assert_eq!(topo.socket_of(CoreId(18)), 1);
        assert_eq!(topo.socket_of(CoreId(35)), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        let topo = Topology::new(&ServerConfig::small_test());
        let _ = topo.socket_of(CoreId(999));
    }

    #[test]
    fn spreading_is_even_and_bounded() {
        let topo = Topology::new(&ServerConfig::default_haswell());
        assert_eq!(topo.spread_over_sockets(10), vec![5, 5]);
        assert_eq!(topo.spread_over_sockets(11), vec![6, 5]);
        assert_eq!(topo.spread_over_sockets(999), vec![18, 18]);
        assert_eq!(topo.spread_over_sockets(0), vec![0, 0]);
    }
}
