//! Offline model of the LC workload's DRAM bandwidth needs.
//!
//! Commercially available chips (at the time of the paper) cannot measure
//! DRAM bandwidth per core accurately, so Heracles needs one piece of offline
//! information: how much bandwidth the LC workload uses at a given load and
//! LLC allocation.  The controller combines this model with the measured
//! total bandwidth to estimate the BE tasks' share and to predict whether a
//! planned growth step would saturate the memory system.
//!
//! The model only has to be approximately right: the paper notes that the
//! websearch binary and shard changed between profiling and evaluation and
//! Heracles still performed well.  Tests exercise that robustness by
//! perturbing the model.

use heracles_hw::ServerConfig;
use heracles_workloads::LcWorkload;
use serde::{Deserialize, Serialize};

/// A lookup table of LC DRAM bandwidth as a function of load and LLC ways.
///
/// # Example
///
/// ```
/// use heracles_core::OfflineDramModel;
/// use heracles_hw::ServerConfig;
/// use heracles_workloads::LcWorkload;
/// let config = ServerConfig::default_haswell();
/// let model = OfflineDramModel::profile(&LcWorkload::websearch(), &config);
/// let low = model.lc_bandwidth_gbps(0.2, 20);
/// let high = model.lc_bandwidth_gbps(0.9, 20);
/// assert!(high > low);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OfflineDramModel {
    workload: String,
    /// Load grid points (fractions of peak).
    loads: Vec<f64>,
    /// LLC way grid points.
    ways: Vec<usize>,
    /// `bandwidth[i][j]` = GB/s at `loads[i]`, `ways[j]`.
    bandwidth_gbps: Vec<Vec<f64>>,
}

impl OfflineDramModel {
    /// Profiles an LC workload offline: sweeps load and LLC allocation and
    /// records the bandwidth the workload model generates at each point.
    ///
    /// On a real deployment this is a measurement campaign on an idle server;
    /// here it queries the same workload model the simulator uses, which is
    /// exactly the information a real profiling run would capture.
    pub fn profile(workload: &LcWorkload, config: &ServerConfig) -> Self {
        let loads: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
        let ways: Vec<usize> = (1..=config.llc_ways).collect();
        let bandwidth_gbps = loads
            .iter()
            .map(|&load| {
                ways.iter()
                    .map(|&w| {
                        let cache_mb = w as f64 * config.llc_mb_per_way();
                        let deficit = workload.cache_deficit(load, cache_mb, config);
                        workload.dram_gbps(load, deficit)
                    })
                    .collect()
            })
            .collect();
        OfflineDramModel { workload: workload.name().to_string(), loads, ways, bandwidth_gbps }
    }

    /// The name of the workload this model was profiled for.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Predicted LC DRAM bandwidth (GB/s) at a given load and LLC way
    /// allocation, interpolating between grid points and clamping outside the
    /// profiled range.
    pub fn lc_bandwidth_gbps(&self, load: f64, lc_ways: usize) -> f64 {
        if self.loads.is_empty() || self.ways.is_empty() {
            return 0.0;
        }
        let col = self.way_column(lc_ways);
        let load = load.clamp(self.loads[0], *self.loads.last().expect("non-empty"));
        // Find the surrounding load grid points.
        let mut hi = self.loads.len() - 1;
        for (i, &l) in self.loads.iter().enumerate() {
            if l >= load {
                hi = i;
                break;
            }
        }
        if hi == 0 {
            return self.bandwidth_gbps[0][col];
        }
        let lo = hi - 1;
        let (l0, l1) = (self.loads[lo], self.loads[hi]);
        let (b0, b1) = (self.bandwidth_gbps[lo][col], self.bandwidth_gbps[hi][col]);
        if (l1 - l0).abs() < 1e-12 {
            return b1;
        }
        b0 + (b1 - b0) * (load - l0) / (l1 - l0)
    }

    fn way_column(&self, lc_ways: usize) -> usize {
        let clamped = lc_ways.clamp(self.ways[0], *self.ways.last().expect("non-empty"));
        self.ways.iter().position(|&w| w == clamped).unwrap_or(self.ways.len() - 1)
    }

    /// Applies a multiplicative error to every table entry, modelling a stale
    /// or imperfect profile (used by robustness tests).
    pub fn perturbed(&self, factor: f64) -> Self {
        let mut copy = self.clone();
        for row in &mut copy.bandwidth_gbps {
            for b in row.iter_mut() {
                *b *= factor;
            }
        }
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OfflineDramModel {
        OfflineDramModel::profile(&LcWorkload::websearch(), &ServerConfig::default_haswell())
    }

    #[test]
    fn bandwidth_grows_with_load() {
        let m = model();
        let mut prev = 0.0;
        for i in 1..=10 {
            let bw = m.lc_bandwidth_gbps(i as f64 / 10.0, 20);
            assert!(bw >= prev);
            prev = bw;
        }
        assert!(prev > 30.0, "websearch at full load should use tens of GB/s, got {prev}");
    }

    #[test]
    fn bandwidth_grows_when_cache_shrinks() {
        let m =
            OfflineDramModel::profile(&LcWorkload::ml_cluster(), &ServerConfig::default_haswell());
        let starved = m.lc_bandwidth_gbps(0.8, 1);
        let comfortable = m.lc_bandwidth_gbps(0.8, 20);
        assert!(starved > comfortable);
    }

    #[test]
    fn lookup_is_clamped_outside_the_grid() {
        let m = model();
        assert_eq!(m.lc_bandwidth_gbps(-1.0, 10), m.lc_bandwidth_gbps(0.05, 10));
        assert_eq!(m.lc_bandwidth_gbps(2.0, 10), m.lc_bandwidth_gbps(1.0, 10));
        assert_eq!(m.lc_bandwidth_gbps(0.5, 0), m.lc_bandwidth_gbps(0.5, 1));
        assert_eq!(m.lc_bandwidth_gbps(0.5, 99), m.lc_bandwidth_gbps(0.5, 20));
    }

    #[test]
    fn interpolation_is_between_grid_points() {
        let m = model();
        let a = m.lc_bandwidth_gbps(0.50, 15);
        let b = m.lc_bandwidth_gbps(0.55, 15);
        let mid = m.lc_bandwidth_gbps(0.525, 15);
        assert!(mid >= a.min(b) - 1e-12 && mid <= a.max(b) + 1e-12);
    }

    #[test]
    fn perturbation_scales_every_entry() {
        let m = model();
        let p = m.perturbed(1.2);
        let base = m.lc_bandwidth_gbps(0.6, 12);
        let scaled = p.lc_bandwidth_gbps(0.6, 12);
        assert!((scaled - base * 1.2).abs() < 1e-9);
    }
}
