//! The top-level Heracles controller (Algorithm 1).
//!
//! The top-level loop polls the LC workload's tail latency and load every 15
//! seconds and decides whether best-effort execution is allowed at all and
//! whether the sub-controllers may grow the BE share:
//!
//! * negative latency slack → disable BE tasks and enter a cooldown period,
//! * load above 85% of peak → disable BE tasks (re-enabled below 80%),
//! * slack below 10% → BE tasks may not grow,
//! * slack below 5% → BE tasks additionally give back cores immediately.
//!
//! The three sub-controllers run on their own faster cycles (2 s for cores &
//! memory, 2 s for power, 1 s for network) and act independently as long as
//! their resource is not saturated.

use heracles_hw::Server;
use heracles_sim::SimTime;
use heracles_telemetry::{TraceEvent, TraceLog};
use heracles_workloads::Slo;
use serde::{Deserialize, Serialize};

use crate::config::HeraclesConfig;
use crate::core_mem::{CoreMemoryController, GradientPhase};
use crate::dram_model::OfflineDramModel;
use crate::measurements::Measurements;
use crate::network::NetworkController;
use crate::policy::ColocationPolicy;
use crate::power::PowerController;

/// Whether best-effort execution is currently allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BeState {
    /// BE tasks may run (and possibly grow).
    Enabled,
    /// BE tasks are disabled (high LC load or controller start-up).
    Disabled,
    /// BE tasks are disabled until the stated time because the SLO was at
    /// risk (negative slack).
    Cooldown {
        /// When colocation may be attempted again.
        until: SimTime,
    },
}

impl BeState {
    /// Short lower-case label used in trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BeState::Enabled => "enabled",
            BeState::Disabled => "disabled",
            BeState::Cooldown { .. } => "cooldown",
        }
    }
}

/// The Heracles controller for one server.
#[derive(Debug, Clone)]
pub struct Heracles {
    config: HeraclesConfig,
    slo: Slo,
    dram_model: OfflineDramModel,
    subs: Option<Subcontrollers>,
    state: BeState,
    growth_allowed: bool,
    last_slack: f64,
    last_poll: Option<SimTime>,
    last_core_mem: Option<SimTime>,
    last_power: Option<SimTime>,
    last_network: Option<SimTime>,
    trace: Option<TraceLog>,
}

/// The BE-visible allocation state a sub-controller may change in one tick,
/// snapshotted before and diffed after so the trace carries *actions*, not
/// every no-op cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AllocSnapshot {
    be_cores: usize,
    be_ways: usize,
    freq_cap_ghz: Option<f64>,
    net_ceil_gbps: Option<f64>,
}

impl AllocSnapshot {
    fn of(server: &Server) -> Self {
        let alloc = server.allocations();
        AllocSnapshot {
            be_cores: alloc.be_cores(),
            be_ways: if alloc.cat_enabled() { alloc.be_ways() } else { 0 },
            freq_cap_ghz: alloc.be_freq_cap_ghz(),
            net_ceil_gbps: alloc.be_net_ceil_gbps(),
        }
    }
}

#[derive(Debug, Clone)]
struct Subcontrollers {
    core_mem: CoreMemoryController,
    power: PowerController,
    network: NetworkController,
}

impl Heracles {
    /// Creates a controller for an LC workload with the given SLO and offline
    /// DRAM bandwidth model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HeraclesConfig::validate`].
    pub fn new(config: HeraclesConfig, slo: Slo, dram_model: OfflineDramModel) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid Heracles configuration: {e}");
        }
        Heracles {
            config,
            slo,
            dram_model,
            subs: None,
            state: BeState::Disabled,
            growth_allowed: false,
            last_slack: 1.0,
            last_poll: None,
            last_core_mem: None,
            last_power: None,
            last_network: None,
            trace: None,
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &HeraclesConfig {
        &self.config
    }

    /// The SLO the controller defends.
    pub fn slo(&self) -> Slo {
        self.slo
    }

    /// The current BE execution state.
    pub fn state(&self) -> BeState {
        self.state
    }

    /// Whether the sub-controllers are currently allowed to grow the BE share.
    pub fn growth_allowed(&self) -> bool {
        self.growth_allowed
    }

    /// The latency slack computed at the last top-level poll.
    pub fn last_slack(&self) -> f64 {
        self.last_slack
    }

    /// The gradient-descent phase of the core & memory sub-controller, if the
    /// controller has been initialised.
    pub fn gradient_phase(&self) -> Option<GradientPhase> {
        self.subs.as_ref().map(|s| s.core_mem.phase())
    }

    fn ensure_subs(&mut self, server: &Server) -> &mut Subcontrollers {
        if self.subs.is_none() {
            self.subs = Some(Subcontrollers {
                core_mem: CoreMemoryController::new(&self.config, self.dram_model.clone()),
                power: PowerController::new(&self.config, server),
                network: NetworkController::new(server),
            });
        }
        self.subs.as_mut().expect("just initialised")
    }

    fn due(last: &mut Option<SimTime>, now: SimTime, period: heracles_sim::SimDuration) -> bool {
        match *last {
            None => {
                *last = Some(now);
                true
            }
            Some(prev) if now.saturating_since(prev) >= period => {
                *last = Some(now);
                true
            }
            _ => false,
        }
    }

    fn top_level(&mut self, now: SimTime, server: &mut Server, m: &Measurements) {
        let slack = m.slack(self.slo.target_s);
        self.last_slack = slack;
        let cfg = self.config.clone();

        // Resolve an expired cooldown before anything else.
        if let BeState::Cooldown { until } = self.state {
            if now >= until {
                self.state = BeState::Disabled;
            }
        }

        if slack < 0.0 {
            // SLO violated or about to be: give everything to the LC workload
            // and back off for a while.
            let subs = self.ensure_subs(server);
            subs.core_mem.disable_be(server);
            subs.power.reset(server);
            subs.network.reset(server);
            self.state = BeState::Cooldown { until: now + cfg.cooldown };
            self.growth_allowed = false;
            return;
        }

        match self.state {
            BeState::Cooldown { .. } => {
                // Still cooling down: keep BE disabled.
                self.growth_allowed = false;
                return;
            }
            BeState::Enabled => {
                if m.load > cfg.load_disable_threshold {
                    let subs = self.ensure_subs(server);
                    subs.core_mem.disable_be(server);
                    subs.power.reset(server);
                    subs.network.reset(server);
                    self.state = BeState::Disabled;
                    self.growth_allowed = false;
                    return;
                }
            }
            BeState::Disabled => {
                if m.load < cfg.load_enable_threshold {
                    let subs = self.ensure_subs(server);
                    subs.core_mem.enable_be(server);
                    self.state = BeState::Enabled;
                }
            }
        }

        // The slack < `slack_reclaim_cores` core give-back runs inside the
        // core & memory sub-controller's own cycle (its Rule 2), which reacts
        // within one sub-controller period instead of one top-level poll.
        self.growth_allowed = self.state == BeState::Enabled && slack >= cfg.slack_disallow_growth;
    }
}

impl ColocationPolicy for Heracles {
    fn name(&self) -> &str {
        "heracles"
    }

    fn init(&mut self, server: &mut Server) {
        let subs = self.ensure_subs(server);
        subs.core_mem.disable_be(server);
        subs.power.reset(server);
        subs.network.reset(server);
        self.state = BeState::Disabled;
        self.growth_allowed = false;
        self.last_poll = None;
        self.last_core_mem = None;
        self.last_power = None;
        self.last_network = None;
    }

    fn tick(&mut self, now: SimTime, server: &mut Server, measurements: &Measurements) {
        self.ensure_subs(server);
        let cfg = self.config.clone();
        let tracing = self.trace.is_some();

        if Self::due(&mut self.last_poll, now, cfg.poll_period) {
            let prev_state = self.state;
            let prev_growth = self.growth_allowed;
            self.top_level(now, server, measurements);
            // Algorithm 1 acted: record the transition (only state changes,
            // not every 15 s poll that reaffirmed the status quo).
            if tracing && (self.state != prev_state || self.growth_allowed != prev_growth) {
                let event = TraceEvent::new(now, "core", "top_level")
                    .str("from", prev_state.label())
                    .str("to", self.state.label())
                    .bool("growth_allowed", self.growth_allowed)
                    .f64("slack", self.last_slack)
                    .f64("load", measurements.load);
                self.trace.as_mut().expect("tracing checked").emit(event);
            }
        }

        let enabled = self.state == BeState::Enabled;
        let growth = self.growth_allowed;
        let slack = measurements.slack(self.slo.target_s);

        if enabled {
            if Self::due(&mut self.last_core_mem, now, cfg.core_mem_period) {
                let before = tracing.then(|| AllocSnapshot::of(server));
                let subs = self.subs.as_mut().expect("initialised");
                subs.core_mem.set_can_grow(growth);
                subs.core_mem.tick(server, measurements, slack);
                if let Some(before) = before {
                    let after = AllocSnapshot::of(server);
                    if before.be_cores != after.be_cores || before.be_ways != after.be_ways {
                        let phase = match self.subs.as_ref().expect("initialised").core_mem.phase()
                        {
                            GradientPhase::GrowLlc => "grow_llc",
                            GradientPhase::GrowCores => "grow_cores",
                        };
                        let event = TraceEvent::new(now, "core", "core_mem")
                            .i64("be_cores", after.be_cores as i64)
                            .i64("cores_delta", after.be_cores as i64 - before.be_cores as i64)
                            .i64("be_ways", after.be_ways as i64)
                            .i64("ways_delta", after.be_ways as i64 - before.be_ways as i64)
                            .str("phase", phase)
                            .f64("slack", slack);
                        self.trace.as_mut().expect("tracing checked").emit(event);
                    }
                }
            }
            if Self::due(&mut self.last_power, now, cfg.power_period) {
                let before = tracing.then(|| AllocSnapshot::of(server));
                let subs = self.subs.as_mut().expect("initialised");
                subs.power.tick(server, &measurements.counters);
                if let Some(before) = before {
                    let after = AllocSnapshot::of(server);
                    if before.freq_cap_ghz != after.freq_cap_ghz {
                        let event = TraceEvent::new(now, "core", "power")
                            .f64("freq_cap_ghz", after.freq_cap_ghz.unwrap_or(0.0))
                            .bool("capped", after.freq_cap_ghz.is_some())
                            .f64("package_power_w", measurements.counters.package_power_w);
                        self.trace.as_mut().expect("tracing checked").emit(event);
                    }
                }
            }
            if Self::due(&mut self.last_network, now, cfg.network_period) {
                let before = tracing.then(|| AllocSnapshot::of(server));
                let subs = self.subs.as_mut().expect("initialised");
                subs.network.tick(server, &measurements.counters);
                if let Some(before) = before {
                    let after = AllocSnapshot::of(server);
                    if before.net_ceil_gbps != after.net_ceil_gbps {
                        let event = TraceEvent::new(now, "core", "network")
                            .f64("net_ceil_gbps", after.net_ceil_gbps.unwrap_or(0.0))
                            .bool("shaped", after.net_ceil_gbps.is_some())
                            .f64("nic_lc_gbps", measurements.counters.nic_lc_gbps);
                        self.trace.as_mut().expect("tracing checked").emit(event);
                    }
                }
            }
        }
    }

    fn be_enabled(&self) -> bool {
        self.state == BeState::Enabled
    }

    fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled.then(TraceLog::new);
    }

    fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(TraceLog::drain).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::{CounterSnapshot, ServerConfig};
    use heracles_sim::SimDuration;
    use heracles_workloads::LcWorkload;

    fn make() -> (Server, Heracles) {
        let config = ServerConfig::default_haswell();
        let ws = LcWorkload::websearch();
        let model = OfflineDramModel::profile(&ws, &config);
        let server = Server::new(config);
        let heracles = Heracles::new(HeraclesConfig::default(), ws.slo(), model);
        (server, heracles)
    }

    fn healthy(load: f64) -> Measurements {
        Measurements {
            tail_latency_s: 0.010,
            load,
            be_progress: 1.0,
            counters: CounterSnapshot {
                dram_total_gbps: 40.0,
                dram_be_gbps: 10.0,
                dram_peak_gbps: 120.0,
                lc_freq_ghz: 2.4,
                be_freq_ghz: 2.4,
                package_power_w: 180.0,
                tdp_w: 290.0,
                cpu_utilization: 0.5,
                lc_cpu_utilization: 0.5,
                nic_lc_gbps: 0.2,
                nic_be_gbps: 0.0,
                nic_link_gbps: 10.0,
            },
        }
    }

    fn violating(load: f64) -> Measurements {
        Measurements { tail_latency_s: 0.030, ..healthy(load) }
    }

    #[test]
    fn starts_disabled_and_enables_at_moderate_load() {
        let (mut server, mut h) = make();
        h.init(&mut server);
        assert!(!h.be_enabled());
        h.tick(SimTime::from_secs(15), &mut server, &healthy(0.4));
        assert!(h.be_enabled());
        assert!(server.allocations().be_cores() >= 1);
    }

    #[test]
    fn high_load_disables_colocation() {
        let (mut server, mut h) = make();
        h.init(&mut server);
        h.tick(SimTime::from_secs(15), &mut server, &healthy(0.4));
        assert!(h.be_enabled());
        h.tick(SimTime::from_secs(30), &mut server, &healthy(0.9));
        assert!(!h.be_enabled());
        assert_eq!(server.allocations().be_cores(), 0);
        // Hysteresis: 0.82 is between the thresholds, stays disabled.
        h.tick(SimTime::from_secs(45), &mut server, &healthy(0.82));
        assert!(!h.be_enabled());
        // Below 0.80: re-enabled.
        h.tick(SimTime::from_secs(60), &mut server, &healthy(0.7));
        assert!(h.be_enabled());
    }

    #[test]
    fn slo_violation_triggers_cooldown() {
        let (mut server, mut h) = make();
        h.init(&mut server);
        h.tick(SimTime::from_secs(15), &mut server, &healthy(0.4));
        assert!(h.be_enabled());
        h.tick(SimTime::from_secs(30), &mut server, &violating(0.4));
        assert!(!h.be_enabled());
        assert!(matches!(h.state(), BeState::Cooldown { .. }));
        assert_eq!(server.allocations().be_cores(), 0);
        // Still in cooldown 60 s later even though latency is healthy again.
        h.tick(SimTime::from_secs(90), &mut server, &healthy(0.4));
        assert!(!h.be_enabled());
        // After the cooldown expires colocation resumes.
        let after = SimTime::from_secs(30)
            + HeraclesConfig::default().cooldown
            + SimDuration::from_secs(30);
        h.tick(after, &mut server, &healthy(0.4));
        assert!(h.be_enabled());
    }

    #[test]
    fn small_slack_disallows_growth_and_reclaims_cores() {
        let (mut server, mut h) = make();
        h.init(&mut server);
        h.tick(SimTime::from_secs(15), &mut server, &healthy(0.4));
        // Grow for a while with comfortable slack.
        let mut t = 15;
        for _ in 0..30 {
            t += 2;
            h.tick(SimTime::from_secs(t), &mut server, &healthy(0.4));
        }
        let grown = server.allocations().be_cores();
        assert!(grown > 2, "BE should have grown, has {grown} cores");
        // Slack of ~6%: growth disallowed but no reclaim.
        let tight = Measurements { tail_latency_s: 0.0235, ..healthy(0.4) };
        t += 15;
        h.tick(SimTime::from_secs(t), &mut server, &tight);
        assert!(!h.growth_allowed());
        assert_eq!(server.allocations().be_cores(), grown);
        // Slack of ~2%: cores reclaimed down to two.
        let very_tight = Measurements { tail_latency_s: 0.0245, ..healthy(0.4) };
        t += 15;
        h.tick(SimTime::from_secs(t), &mut server, &very_tight);
        assert_eq!(server.allocations().be_cores(), 2);
    }

    #[test]
    fn growth_converges_within_about_thirty_seconds() {
        let (mut server, mut h) = make();
        h.init(&mut server);
        // Tick once a second for 45 simulated seconds at low load.
        for t in 1..=45 {
            h.tick(SimTime::from_secs(t), &mut server, &healthy(0.2));
        }
        // The BE job should have acquired a substantial share of the machine.
        assert!(
            server.allocations().be_cores() >= 8,
            "BE only has {} cores after 45 s",
            server.allocations().be_cores()
        );
    }

    #[test]
    fn network_and_power_subcontrollers_act_when_enabled() {
        let (mut server, mut h) = make();
        h.init(&mut server);
        let mut m = healthy(0.4);
        m.counters.nic_lc_gbps = 6.0;
        m.counters.package_power_w = 285.0;
        m.counters.lc_freq_ghz = 2.0;
        for t in [15, 16, 17, 18, 19, 20] {
            h.tick(SimTime::from_secs(t), &mut server, &m);
        }
        // HTB ceiling set according to Algorithm 4 and DVFS cap lowered.
        assert!(server.allocations().be_net_ceil_gbps().is_some());
        assert!(server.allocations().be_freq_cap_ghz().is_some());
    }

    #[test]
    fn tracing_records_decisions_without_perturbing_control() {
        let drive = |traced: bool| {
            let (mut server, mut h) = make();
            h.set_trace(traced);
            h.init(&mut server);
            let mut events = Vec::new();
            // Enable, grow for a while, then violate the SLO to force a
            // cooldown — exercising top-level, core/mem, power and network
            // decision points.
            let mut m = healthy(0.4);
            m.counters.nic_lc_gbps = 6.0;
            m.counters.package_power_w = 285.0;
            m.counters.lc_freq_ghz = 2.0;
            for t in 1..=40 {
                h.tick(SimTime::from_secs(t), &mut server, &m);
                events.extend(h.take_trace());
            }
            h.tick(SimTime::from_secs(61), &mut server, &violating(0.4));
            events.extend(h.take_trace());
            (server.allocations().clone(), h.state(), events)
        };
        let (alloc_on, state_on, events) = drive(true);
        let (alloc_off, state_off, no_events) = drive(false);
        assert_eq!(alloc_on, alloc_off, "tracing must not change allocations");
        assert_eq!(state_on, state_off);
        assert!(no_events.is_empty(), "untraced run must emit nothing");
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"top_level"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"core_mem"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"power"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"network"), "kinds: {kinds:?}");
        let cooldown = events
            .iter()
            .find(|e| {
                e.kind() == "top_level"
                    && e.field("to").map(|v| v.to_bare()) == Some("cooldown".into())
            })
            .expect("the SLO violation must be traced as a cooldown transition");
        assert_eq!(cooldown.scope(), "core");
    }

    #[test]
    #[should_panic]
    fn invalid_config_is_rejected() {
        let config = ServerConfig::default_haswell();
        let ws = LcWorkload::websearch();
        let model = OfflineDramModel::profile(&ws, &config);
        let bad = HeraclesConfig { load_enable_threshold: 0.99, ..Default::default() };
        let _ = Heracles::new(bad, ws.slo(), model);
    }
}
