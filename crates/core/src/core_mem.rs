//! The core & memory sub-controller (Algorithm 2).
//!
//! Core count, LLC allocation and DRAM bandwidth are strongly coupled, so one
//! sub-controller manages cores and cache together.  Its responsibilities:
//!
//! 1. **Never saturate DRAM bandwidth.**  Each cycle it measures total
//!    bandwidth; if it exceeds the limit (90% of peak), it removes enough BE
//!    cores to get back under, using the estimated per-core BE bandwidth.
//! 2. **Grow the BE share by gradient descent** when the top-level controller
//!    allows it.  Offline analysis shows LC performance is a convex function
//!    of cores and cache (Figure 3), so one-dimension-at-a-time descent finds
//!    the optimum.  In the `GROW_LLC` phase it gives the BE partition one
//!    more way as long as that is predicted (and then confirmed) to reduce
//!    total DRAM traffic and the BE job benefits; otherwise it switches to
//!    `GROW_CORES`, which grants one more core at a time while predicted
//!    bandwidth stays under the limit and latency slack is comfortable.
//!
//! The predicted bandwidth of the next step combines the offline LC bandwidth
//! model, the measured BE bandwidth and the bandwidth derivative since the
//! last change, so the controller avoids *trying* allocations that would
//! saturate memory.

use heracles_hw::Server;
use heracles_isolation::{CatPartitioner, Cpuset, DramBwMonitor};
use serde::{Deserialize, Serialize};

use crate::config::HeraclesConfig;
use crate::dram_model::OfflineDramModel;
use crate::measurements::Measurements;

/// Which dimension the gradient descent is currently growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientPhase {
    /// Growing the BE cache partition.
    GrowLlc,
    /// Growing the number of BE cores.
    GrowCores,
}

/// The core & memory sub-controller.
#[derive(Debug, Clone)]
pub struct CoreMemoryController {
    phase: GradientPhase,
    cpuset: Cpuset,
    cat: CatPartitioner,
    dram_monitor: DramBwMonitor,
    dram_model: OfflineDramModel,
    dram_limit_fraction: f64,
    slack_grow_threshold: f64,
    slack_reclaim_threshold: f64,
    reclaim_keep_cores: usize,
    be_initial_cores: usize,
    be_initial_llc_fraction: f64,
    can_grow: bool,
    pending_llc_growth: bool,
    last_be_progress: f64,
    /// Slack observed when the last BE core was added, used to estimate the
    /// per-core latency cost of further growth.
    slack_before_core_growth: Option<f64>,
    /// Exponentially-weighted estimate of how much slack one more BE core
    /// costs (always ≤ 0).
    slack_cost_per_core: f64,
}

impl CoreMemoryController {
    /// Creates the sub-controller.
    pub fn new(config: &HeraclesConfig, dram_model: OfflineDramModel) -> Self {
        CoreMemoryController {
            phase: GradientPhase::GrowLlc,
            cpuset: Cpuset::new(),
            cat: CatPartitioner::new(),
            dram_monitor: DramBwMonitor::new(),
            dram_model,
            dram_limit_fraction: config.dram_limit_fraction,
            slack_grow_threshold: config.slack_disallow_growth,
            slack_reclaim_threshold: config.slack_reclaim_cores,
            reclaim_keep_cores: config.be_cores_kept_on_reclaim,
            be_initial_cores: config.be_initial_cores.max(1),
            be_initial_llc_fraction: config.be_initial_llc_fraction,
            can_grow: false,
            pending_llc_growth: false,
            last_be_progress: 0.0,
            slack_before_core_growth: None,
            slack_cost_per_core: -0.05,
        }
    }

    /// The current gradient-descent phase.
    pub fn phase(&self) -> GradientPhase {
        self.phase
    }

    /// Whether the top-level controller currently allows BE growth.
    pub fn can_grow(&self) -> bool {
        self.can_grow
    }

    /// Sets whether BE tasks may acquire more resources.
    pub fn set_can_grow(&mut self, allowed: bool) {
        self.can_grow = allowed;
    }

    /// Gives the server entirely to the LC workload (BE disabled).
    pub fn disable_be(&mut self, server: &mut Server) {
        let total = server.topology().total_cores();
        let _ = self.cpuset.pin(server, total, 0);
        // Keep a minimal one-way BE partition programmed so re-enabling is a
        // single MSR update; it is unused while no BE task runs.
        let ways = server.config().llc_ways;
        let _ = self.cat.set_ways(server, ways - 1, 1);
        self.dram_monitor.reset();
        self.pending_llc_growth = false;
    }

    /// Bootstraps a freshly (re-)enabled BE job: one core and a small slice
    /// of the LLC, starting in the `GROW_LLC` phase.
    pub fn enable_be(&mut self, server: &mut Server) {
        let total = server.topology().total_cores();
        let ways = server.config().llc_ways;
        let be_cores = self.be_initial_cores.min(total - 1);
        let be_ways =
            ((ways as f64 * self.be_initial_llc_fraction).round() as usize).clamp(1, ways - 1);
        let _ = self.cpuset.pin(server, total - be_cores, be_cores);
        let _ = self.cat.set_ways(server, ways - be_ways, be_ways);
        self.phase = GradientPhase::GrowLlc;
        self.pending_llc_growth = false;
        self.dram_monitor.reset();
    }

    /// Shrinks the BE job to at most `keep` cores (the slack < 5% reaction of
    /// Algorithm 1, which removes all but two BE cores).
    pub fn reclaim_be_cores(&mut self, server: &mut Server, keep: usize) {
        let be = server.allocations().be_cores();
        if be > keep {
            self.remove_be_cores(server, be - keep);
        }
    }

    /// Removes up to `count` BE cores, handing them back to the LC workload.
    pub fn remove_be_cores(&mut self, server: &mut Server, count: usize) {
        if count == 0 {
            return;
        }
        self.cpuset.move_be_to_lc(server, count);
    }

    /// Runs one control cycle.
    ///
    /// `slack` is the latest latency slack computed by the top-level
    /// controller; growth steps additionally require it to be comfortable.
    pub fn tick(&mut self, server: &mut Server, measurements: &Measurements, slack: f64) {
        // Update the estimate of how much latency slack one BE core costs,
        // based on the slack change observed since the previous core growth.
        if let Some(before) = self.slack_before_core_growth.take() {
            let observed = (slack - before).min(0.0);
            self.slack_cost_per_core = 0.5 * self.slack_cost_per_core + 0.5 * observed;
        }
        let reading = self.dram_monitor.measure(&measurements.counters);
        let peak = measurements.counters.dram_peak_gbps.max(1e-9);
        let limit = self.dram_limit_fraction * peak;
        let be_cores = server.allocations().be_cores();

        // Rule 1: DRAM bandwidth saturation overrides everything.
        if reading.total_gbps > limit && be_cores > 0 {
            let per_core = reading.be_gbps_per_core(be_cores).max(0.25);
            let overage = reading.total_gbps - limit;
            let remove = ((overage / per_core).ceil() as usize).clamp(1, be_cores);
            self.remove_be_cores(server, remove);
            self.last_be_progress = measurements.be_progress;
            return;
        }

        // Rule 2: when slack gets critically small, give cores back *now*
        // rather than waiting for the next top-level poll — Algorithm 1's
        // "give back cores immediately" reaction runs at this sub-controller's
        // cadence, because tail latency can cross from tight to violating
        // within a couple of measurement windows.
        if slack < self.slack_reclaim_threshold && be_cores > self.reclaim_keep_cores {
            self.reclaim_be_cores(server, self.reclaim_keep_cores);
            self.last_be_progress = measurements.be_progress;
            return;
        }

        // Rule 3: the pool-size-aware utilization ceiling is enforced
        // continuously, not only when a core step is tried — growing the BE
        // cache partition or its bandwidth share inflates LC service times
        // *after* the last core move passed its projection, and a small LC
        // pool drifts into its latency knee without any new allocation
        // event to re-trigger the growth guard.
        let lc_cores = server.allocations().lc_cores();
        if measurements.counters.lc_cpu_utilization > Self::utilization_ceiling(lc_cores) + 0.02
            && be_cores > self.reclaim_keep_cores
        {
            self.remove_be_cores(server, 1);
            self.last_be_progress = measurements.be_progress;
            return;
        }

        if !self.can_grow || be_cores == 0 {
            self.pending_llc_growth = false;
            self.last_be_progress = measurements.be_progress;
            return;
        }

        match self.phase {
            GradientPhase::GrowLlc => {
                self.grow_llc_step(server, measurements, reading.be_gbps, limit, slack)
            }
            GradientPhase::GrowCores => {
                self.grow_cores_step(server, measurements, &reading, limit, slack)
            }
        }
        self.last_be_progress = measurements.be_progress;
    }

    /// The LC pool utilization beyond which one more BE core is never
    /// taken, as a function of the pool size *after* the step.
    ///
    /// The paper's 85% guard is calibrated for the wide pools of a 36-core
    /// Haswell; by square-root staffing, a small pool hits its latency knee
    /// at lower utilization (a tail burst has fewer servers to drain it),
    /// which is exactly where the coarse one-core-at-a-time granularity of
    /// a 16-core box would otherwise overshoot — so the ceiling backs off
    /// as `1 - 0.55/sqrt(cores)`, capped at the paper's 85% for wide pools.
    fn utilization_ceiling(cores: usize) -> f64 {
        (1.0 - 0.55 / (cores.max(1) as f64).sqrt()).min(0.85)
    }

    fn lc_bw_model_gbps(&self, server: &Server, load: f64) -> f64 {
        let (lc_ways, _) = self.cat.current_split(server);
        self.dram_model.lc_bandwidth_gbps(load, lc_ways)
    }

    fn grow_llc_step(
        &mut self,
        server: &mut Server,
        m: &Measurements,
        be_bw: f64,
        limit: f64,
        slack: f64,
    ) {
        if self.pending_llc_growth {
            // We grew the BE partition last cycle; check whether it helped.
            self.pending_llc_growth = false;
            if self.dram_monitor.derivative_gbps() >= 0.0 || slack < self.slack_grow_threshold {
                // Total bandwidth did not drop (the extra cache is not
                // reducing BE misses) or the LC workload's latency slack has
                // become uncomfortable: roll back and try cores instead.
                self.cat.shrink_be_way(server);
                self.phase = GradientPhase::GrowCores;
                return;
            }
            if m.be_progress <= self.last_be_progress * 1.01 {
                // The BE job did not benefit; stop growing the cache.
                self.phase = GradientPhase::GrowCores;
            }
            return;
        }
        // The paper grows the BE cache allocation only while the LC workload
        // keeps meeting its SLO (with margin), bandwidth saturation is
        // avoided, and the BE job benefits.
        if slack <= self.slack_grow_threshold {
            return;
        }
        let predicted =
            self.lc_bw_model_gbps(server, m.load) + be_bw + self.dram_monitor.derivative_gbps();
        if predicted > limit {
            self.phase = GradientPhase::GrowCores;
            return;
        }
        if self.cat.grow_be_way(server).is_some() {
            self.pending_llc_growth = true;
        } else {
            // LC partition is already at its minimum; nothing left to grow here.
            self.phase = GradientPhase::GrowCores;
        }
    }

    fn grow_cores_step(
        &mut self,
        server: &mut Server,
        m: &Measurements,
        reading: &heracles_isolation::DramBwReading,
        limit: f64,
        slack: f64,
    ) {
        let be_cores = server.allocations().be_cores();
        let per_core = reading.be_gbps_per_core(be_cores).max(0.25);
        let needed = self.lc_bw_model_gbps(server, m.load) + reading.be_gbps + per_core;
        if needed > limit {
            self.phase = GradientPhase::GrowLlc;
            return;
        }
        // Avoid trying an allocation that would push the LC workload below
        // the growth threshold: project the slack after taking one more core
        // using the cost observed for previous core-growth steps.  The
        // assumed minimum cost — which keeps the last step before the
        // latency knee from ever being taken — scales with the fraction of
        // the machine one core represents (5% on a 36-core box, as the
        // paper's machines; proportionally more on a small one, where a
        // single gradient step is that much coarser).
        let cost_floor = -(1.8 / server.config().total_cores().max(1) as f64).max(0.05);
        let projected = slack + self.slack_cost_per_core.min(cost_floor);
        // Project the LC pool's CPU utilization after giving up one more
        // core; stepping past the pool's utilization ceiling would put the
        // LC workload on the steep part of its latency curve, so such
        // allocations are never tried (this is the "avoid trying suboptimal
        // allocations" rule of Algorithm 2 applied to cores).
        let lc_cores = server.allocations().lc_cores();
        let projected_util = if lc_cores > 1 {
            m.counters.lc_cpu_utilization * lc_cores as f64 / (lc_cores as f64 - 1.0)
        } else {
            1.0
        };
        if slack > self.slack_grow_threshold
            && projected > self.slack_grow_threshold
            && projected_util < Self::utilization_ceiling(lc_cores.saturating_sub(1))
        {
            // Keep at least two cores for the LC workload at all times.
            if lc_cores > 2 && self.cpuset.move_lc_to_be(server, 1, 2) > 0 {
                self.slack_before_core_growth = Some(slack);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::{CounterSnapshot, ServerConfig};
    use heracles_workloads::LcWorkload;

    fn setup() -> (Server, CoreMemoryController) {
        let config = ServerConfig::default_haswell();
        let model = OfflineDramModel::profile(&LcWorkload::websearch(), &config);
        let server = Server::new(config);
        let ctl = CoreMemoryController::new(&HeraclesConfig::default(), model);
        (server, ctl)
    }

    fn measurements(load: f64, total_bw: f64, be_bw: f64, be_progress: f64) -> Measurements {
        Measurements {
            tail_latency_s: 0.010,
            load,
            be_progress,
            counters: CounterSnapshot {
                dram_total_gbps: total_bw,
                dram_be_gbps: be_bw,
                dram_peak_gbps: 120.0,
                ..CounterSnapshot::default()
            },
        }
    }

    #[test]
    fn enable_bootstraps_one_core_and_small_partition() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        assert_eq!(server.allocations().be_cores(), 1);
        assert_eq!(server.allocations().be_ways(), 2); // 10% of 20 ways
        assert_eq!(ctl.phase(), GradientPhase::GrowLlc);
    }

    #[test]
    fn disable_returns_everything_to_lc() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.disable_be(&mut server);
        assert_eq!(server.allocations().be_cores(), 0);
        assert_eq!(server.allocations().lc_cores(), 36);
    }

    #[test]
    fn dram_saturation_removes_be_cores() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        // Grow BE to several cores first.
        ctl.set_can_grow(true);
        ctl.phase = GradientPhase::GrowCores;
        for _ in 0..6 {
            ctl.tick(&mut server, &measurements(0.3, 40.0, 10.0, 1.0), 0.5);
        }
        let before = server.allocations().be_cores();
        assert!(before >= 3, "expected growth, got {before}");
        // Now saturate DRAM: 118 GB/s measured, BE responsible for 60.
        ctl.tick(&mut server, &measurements(0.3, 118.0, 60.0, 1.0), 0.5);
        let after = server.allocations().be_cores();
        assert!(after < before, "cores should be reclaimed ({before} -> {after})");
    }

    #[test]
    fn growth_requires_permission_and_slack() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.phase = GradientPhase::GrowCores;
        // Not allowed to grow.
        ctl.set_can_grow(false);
        ctl.tick(&mut server, &measurements(0.3, 40.0, 10.0, 1.0), 0.5);
        assert_eq!(server.allocations().be_cores(), 1);
        // Allowed, but slack too small.
        ctl.set_can_grow(true);
        ctl.tick(&mut server, &measurements(0.3, 40.0, 10.0, 1.0), 0.05);
        assert_eq!(server.allocations().be_cores(), 1);
        // Allowed with comfortable slack.
        ctl.tick(&mut server, &measurements(0.3, 40.0, 10.0, 1.0), 0.5);
        assert_eq!(server.allocations().be_cores(), 2);
    }

    #[test]
    fn core_growth_stops_when_prediction_hits_the_limit() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.set_can_grow(true);
        ctl.phase = GradientPhase::GrowCores;
        // BE already uses 70 GB/s on 1 core: adding a core would blow the limit.
        ctl.tick(&mut server, &measurements(0.5, 100.0, 70.0, 1.0), 0.5);
        assert_eq!(server.allocations().be_cores(), 1);
        assert_eq!(ctl.phase(), GradientPhase::GrowLlc);
    }

    #[test]
    fn llc_growth_rolls_back_when_bandwidth_rises() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.set_can_grow(true);
        let before_ways = server.allocations().be_ways();
        // First tick grows the BE partition by one way.
        ctl.tick(&mut server, &measurements(0.3, 40.0, 10.0, 1.0), 0.5);
        assert_eq!(server.allocations().be_ways(), before_ways + 1);
        // Bandwidth went *up* after the growth: roll back and switch phases.
        ctl.tick(&mut server, &measurements(0.3, 55.0, 20.0, 1.0), 0.5);
        assert_eq!(server.allocations().be_ways(), before_ways);
        assert_eq!(ctl.phase(), GradientPhase::GrowCores);
    }

    #[test]
    fn llc_growth_continues_while_it_helps() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.set_can_grow(true);
        let start_ways = server.allocations().be_ways();
        // Alternate grow / confirm cycles with decreasing bandwidth and
        // increasing BE progress: cache growth keeps helping.
        let mut bw = 50.0;
        let mut progress = 1.0;
        for _ in 0..6 {
            ctl.tick(&mut server, &measurements(0.3, bw, 15.0, progress), 0.5);
            bw -= 2.0;
            progress += 0.2;
        }
        assert!(server.allocations().be_ways() > start_ways + 1);
        assert_eq!(ctl.phase(), GradientPhase::GrowLlc);
    }

    #[test]
    fn reclaim_leaves_the_requested_cores() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.set_can_grow(true);
        ctl.phase = GradientPhase::GrowCores;
        for _ in 0..8 {
            ctl.tick(&mut server, &measurements(0.3, 40.0, 10.0, 1.0), 0.5);
        }
        assert!(server.allocations().be_cores() > 2);
        ctl.reclaim_be_cores(&mut server, 2);
        assert_eq!(server.allocations().be_cores(), 2);
        // Reclaiming again is a no-op.
        ctl.reclaim_be_cores(&mut server, 2);
        assert_eq!(server.allocations().be_cores(), 2);
    }

    #[test]
    fn lc_always_keeps_at_least_two_cores() {
        let (mut server, mut ctl) = setup();
        ctl.enable_be(&mut server);
        ctl.set_can_grow(true);
        ctl.phase = GradientPhase::GrowCores;
        for _ in 0..100 {
            ctl.tick(&mut server, &measurements(0.05, 20.0, 5.0, 1.0), 0.9);
        }
        assert!(server.allocations().lc_cores() >= 2);
    }
}
