//! The policy interface shared by Heracles and the baseline controllers.
//!
//! A colocation policy owns the decision of how the server's resources are
//! split between the LC workload and BE tasks.  The experiment harness calls
//! [`ColocationPolicy::tick`] once per measurement window with the latest
//! observations; the policy responds by mutating the server's allocations
//! through the isolation mechanisms.

use heracles_hw::Server;
use heracles_sim::SimTime;
use heracles_telemetry::TraceEvent;

use crate::measurements::Measurements;

/// A controller that decides how LC and BE tasks share a server.
///
/// Policies are `Send` so that a harness holding one (a `ColoRunner` leaf in
/// a cluster or fleet) can be stepped on a worker thread; all policies are
/// plain owned state, so the bound costs implementations nothing.
pub trait ColocationPolicy: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Puts the server into this policy's initial state (called once before
    /// the first window).
    fn init(&mut self, server: &mut Server);

    /// Reacts to one measurement window.  `now` is the simulated time at the
    /// end of the window.
    fn tick(&mut self, now: SimTime, server: &mut Server, measurements: &Measurements);

    /// True if BE tasks are currently allowed to execute.
    fn be_enabled(&self) -> bool;

    /// Turns decision tracing on or off.  The default ignores the request:
    /// the baseline policies make no decisions worth tracing, and a policy
    /// that never emits costs the harness nothing.
    fn set_trace(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Drains the decision events buffered since the last call (empty unless
    /// the policy traces and [`set_trace`](Self::set_trace) enabled it).
    fn take_trace(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial policy used to check that the trait is object-safe and that
    /// harness-style dynamic dispatch works.
    struct AlwaysOff;

    impl ColocationPolicy for AlwaysOff {
        fn name(&self) -> &str {
            "always-off"
        }
        fn init(&mut self, server: &mut Server) {
            let total = server.topology().total_cores();
            server.allocations_mut().set_lc_cores(total);
            server.allocations_mut().set_be_cores(0);
        }
        fn tick(&mut self, _now: SimTime, _server: &mut Server, _m: &Measurements) {}
        fn be_enabled(&self) -> bool {
            false
        }
    }

    #[test]
    fn trait_is_object_safe() {
        use heracles_hw::ServerConfig;
        let mut server = Server::new(ServerConfig::small_test());
        let mut policy: Box<dyn ColocationPolicy> = Box::new(AlwaysOff);
        policy.init(&mut server);
        policy.tick(SimTime::ZERO, &mut server, &Measurements::default());
        assert_eq!(policy.name(), "always-off");
        assert!(!policy.be_enabled());
        assert_eq!(server.allocations().be_cores(), 0);
    }
}
