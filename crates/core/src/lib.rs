//! # Heracles
//!
//! Heracles is a real-time, feedback-based controller that lets a
//! latency-critical (LC) service share its servers with best-effort (BE)
//! batch tasks without violating the LC service's tail-latency SLO.  It
//! implements the *iso-latency* policy: as long as the measured tail latency
//! leaves positive slack against the SLO target, BE tasks may grow their share
//! of the machine; when slack shrinks or a shared resource approaches
//! saturation, BE tasks are throttled or evicted.
//!
//! The controller coordinates four isolation mechanisms — core pinning
//! (cpuset), LLC way-partitioning (Intel CAT), per-core DVFS guided by RAPL,
//! and HTB egress traffic shaping — through one top-level loop and three
//! sub-controllers, exactly as in Algorithms 1–4 of the paper:
//!
//! * [`Heracles`] — the top-level controller (Algorithm 1): polls tail
//!   latency and load every 15 s, disables colocation on SLO risk or high
//!   load, and tells the sub-controllers whether BE tasks may grow.
//! * [`CoreMemoryController`] — cores + cache (Algorithm 2): avoids DRAM
//!   bandwidth saturation using measured bandwidth and an
//!   [`OfflineDramModel`] of the LC workload, and grows the BE share by
//!   gradient descent, alternating between growing the BE cache partition
//!   and growing BE cores.
//! * [`PowerController`] — power (Algorithm 3): keeps the LC cores at their
//!   guaranteed frequency by lowering the BE cores' DVFS cap when the package
//!   approaches TDP.
//! * [`NetworkController`] — network (Algorithm 4): caps BE egress bandwidth
//!   to what the link can spare after the LC traffic plus headroom.
//!
//! Baseline policies and the experiment harness implement
//! [`ColocationPolicy`], so Heracles and the baselines can be swapped in the
//! same experiments.
//!
//! # Example
//!
//! ```
//! use heracles_core::{Heracles, HeraclesConfig, Measurements, ColocationPolicy, OfflineDramModel};
//! use heracles_hw::{Server, ServerConfig};
//! use heracles_sim::SimTime;
//! use heracles_workloads::LcWorkload;
//!
//! let config = ServerConfig::default_haswell();
//! let websearch = LcWorkload::websearch();
//! let dram_model = OfflineDramModel::profile(&websearch, &config);
//! let mut server = Server::new(config);
//! let mut heracles = Heracles::new(HeraclesConfig::default(), websearch.slo(), dram_model);
//! heracles.init(&mut server);
//!
//! // One control epoch with a healthy latency reading.
//! let m = Measurements {
//!     tail_latency_s: 0.010,
//!     load: 0.45,
//!     be_progress: 0.0,
//!     counters: Default::default(),
//! };
//! heracles.tick(SimTime::from_secs(15), &mut server, &m);
//! assert!(heracles.be_enabled());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod controller;
pub mod core_mem;
pub mod dram_model;
pub mod measurements;
pub mod network;
pub mod policy;
pub mod power;

pub use config::HeraclesConfig;
pub use controller::{BeState, Heracles};
pub use core_mem::{CoreMemoryController, GradientPhase};
pub use dram_model::OfflineDramModel;
pub use measurements::Measurements;
pub use network::NetworkController;
pub use policy::ColocationPolicy;
pub use power::PowerController;
