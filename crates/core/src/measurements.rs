//! The measurements the controller polls each cycle.
//!
//! Heracles deliberately relies only on signals available on production
//! servers: the tail latency and load reported by the LC service itself, the
//! hardware counters in [`CounterSnapshot`], and the (coarse) progress the BE
//! tasks report about themselves.

use heracles_hw::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// One controller cycle's worth of observations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Measurements {
    /// Tail latency of the LC workload over the last window, at its SLO
    /// percentile, in seconds.
    pub tail_latency_s: f64,
    /// LC load as a fraction of the server's peak load.
    pub load: f64,
    /// Progress the BE tasks achieved over the last window, in
    /// core-equivalents (used only to detect whether growing a resource
    /// actually benefits the BE job).
    pub be_progress: f64,
    /// Hardware counter readings for the last window.
    pub counters: CounterSnapshot,
}

impl Measurements {
    /// Latency slack against a target: `(target - latency) / target`.
    pub fn slack(&self, target_s: f64) -> f64 {
        if target_s <= 0.0 {
            return 0.0;
        }
        (target_s - self.tail_latency_s) / target_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_computation() {
        let m = Measurements { tail_latency_s: 0.020, load: 0.5, ..Measurements::default() };
        assert!((m.slack(0.025) - 0.2).abs() < 1e-12);
        assert!(m.slack(0.010) < 0.0);
        assert_eq!(m.slack(0.0), 0.0);
    }
}
