//! The network sub-controller (Algorithm 4).
//!
//! Once a second it measures the egress bandwidth of the LC workload's flows
//! and sets the total bandwidth limit of all other (BE) flows to
//! `LinkRate − LCBandwidth − max(0.05·LinkRate, 0.10·LCBandwidth)`, leaving
//! headroom for load spikes.  The LC flows are never limited.

use heracles_hw::{CounterSnapshot, Server};
use heracles_isolation::HtbShaper;

/// The network sub-controller.
#[derive(Debug, Clone)]
pub struct NetworkController {
    htb: HtbShaper,
    last_ceiling_gbps: Option<f64>,
}

impl NetworkController {
    /// Creates the sub-controller for a server.
    pub fn new(server: &Server) -> Self {
        NetworkController { htb: HtbShaper::new(server), last_ceiling_gbps: None }
    }

    /// The most recently applied BE ceiling, if any.
    pub fn last_ceiling_gbps(&self) -> Option<f64> {
        self.last_ceiling_gbps
    }

    /// Runs one control cycle.
    pub fn tick(&mut self, server: &mut Server, counters: &CounterSnapshot) {
        let lc_tx = counters.nic_lc_gbps;
        if let Ok(ceil) = self.htb.apply_heracles_policy(server, lc_tx) {
            self.last_ceiling_gbps = Some(ceil);
        }
    }

    /// Removes the BE ceiling (used when BE execution is disabled).
    pub fn reset(&mut self, server: &mut Server) {
        let _ = self.htb.set_be_ceil_gbps(server, None);
        self.last_ceiling_gbps = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    fn counters(lc_gbps: f64) -> CounterSnapshot {
        CounterSnapshot { nic_lc_gbps: lc_gbps, nic_link_gbps: 10.0, ..CounterSnapshot::default() }
    }

    #[test]
    fn ceiling_tracks_lc_bandwidth() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut ctl = NetworkController::new(&server);
        ctl.tick(&mut server, &counters(2.0));
        let low_lc = server.allocations().be_net_ceil_gbps().unwrap();
        ctl.tick(&mut server, &counters(7.0));
        let high_lc = server.allocations().be_net_ceil_gbps().unwrap();
        assert!(high_lc < low_lc);
        assert_eq!(ctl.last_ceiling_gbps(), Some(high_lc));
    }

    #[test]
    fn saturated_lc_leaves_be_nothing() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut ctl = NetworkController::new(&server);
        ctl.tick(&mut server, &counters(9.8));
        assert_eq!(server.allocations().be_net_ceil_gbps(), Some(0.0));
    }

    #[test]
    fn reset_removes_the_ceiling() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut ctl = NetworkController::new(&server);
        ctl.tick(&mut server, &counters(3.0));
        ctl.reset(&mut server);
        assert_eq!(server.allocations().be_net_ceil_gbps(), None);
        assert_eq!(ctl.last_ceiling_gbps(), None);
    }
}
