//! The power sub-controller (Algorithm 3).
//!
//! Every cycle it reads package power through RAPL and the frequency of the
//! LC cores.  If the package is close to TDP *and* the LC cores are below
//! their guaranteed frequency, it lowers the DVFS cap of the BE cores by one
//! step, shifting power budget to the LC cores.  If there is power headroom
//! and the LC cores are at (or above) their guaranteed frequency, it raises
//! the BE cap to maximize BE performance.  Both conditions must hold before
//! acting, to avoid confusing active-idle frequency dips with power capping.

use heracles_hw::{CounterSnapshot, Server};
use heracles_isolation::{FreqMonitor, PerCoreDvfs, RaplMonitor};

use crate::config::HeraclesConfig;

/// The power sub-controller.
#[derive(Debug, Clone)]
pub struct PowerController {
    threshold: f64,
    guaranteed_ghz: f64,
    dvfs: PerCoreDvfs,
    rapl: RaplMonitor,
    freq: FreqMonitor,
}

impl PowerController {
    /// Creates the sub-controller for a server.
    pub fn new(config: &HeraclesConfig, server: &Server) -> Self {
        PowerController {
            threshold: config.power_threshold,
            guaranteed_ghz: config.guaranteed_lc_freq_ghz,
            dvfs: PerCoreDvfs::new(server),
            rapl: RaplMonitor::new(),
            freq: FreqMonitor::new(),
        }
    }

    /// The guaranteed LC frequency this controller defends, in GHz.
    pub fn guaranteed_ghz(&self) -> f64 {
        self.guaranteed_ghz
    }

    /// The DVFS mechanism (for inspection in tests and reports).
    pub fn dvfs(&self) -> &PerCoreDvfs {
        &self.dvfs
    }

    /// Runs one control cycle.
    pub fn tick(&mut self, server: &mut Server, counters: &CounterSnapshot) {
        let power = self.rapl.read(counters);
        let freq = self.freq.read(counters);
        if power.near_tdp(self.threshold) && freq.lc_ghz < self.guaranteed_ghz {
            // Shift power from BE to LC cores.
            let _ = self.dvfs.lower_be(server);
        } else if !power.near_tdp(self.threshold) && freq.lc_ghz >= self.guaranteed_ghz {
            // Headroom available: let BE cores run faster.
            let _ = self.dvfs.raise_be(server);
        }
    }

    /// Clears the BE frequency cap (used when BE execution is disabled).
    pub fn reset(&mut self, server: &mut Server) {
        let _ = self.dvfs.set_be_cap_ghz(server, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    fn setup() -> (Server, PowerController) {
        let server = Server::new(ServerConfig::default_haswell());
        let ctl = PowerController::new(&HeraclesConfig::default(), &server);
        (server, ctl)
    }

    fn counters(power_frac: f64, lc_ghz: f64) -> CounterSnapshot {
        CounterSnapshot {
            package_power_w: power_frac * 290.0,
            tdp_w: 290.0,
            lc_freq_ghz: lc_ghz,
            be_freq_ghz: 2.0,
            ..CounterSnapshot::default()
        }
    }

    #[test]
    fn lowers_be_when_power_capped_and_lc_slow() {
        let (mut server, mut ctl) = setup();
        let before = server.allocations().be_freq_cap_ghz();
        ctl.tick(&mut server, &counters(0.96, 2.0));
        let after = server.allocations().be_freq_cap_ghz().unwrap();
        assert!(before.is_none() || after < before.unwrap());
        // Repeated pressure keeps lowering towards the minimum.
        for _ in 0..40 {
            ctl.tick(&mut server, &counters(0.96, 2.0));
        }
        assert!((server.allocations().be_freq_cap_ghz().unwrap() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn raises_be_when_headroom_and_lc_fast() {
        let (mut server, mut ctl) = setup();
        ctl.dvfs.set_be_cap_ghz(&mut server, Some(1.2)).unwrap();
        ctl.tick(&mut server, &counters(0.5, 2.4));
        assert!(server.allocations().be_freq_cap_ghz().unwrap() > 1.2);
    }

    #[test]
    fn mixed_signals_take_no_action() {
        let (mut server, mut ctl) = setup();
        ctl.dvfs.set_be_cap_ghz(&mut server, Some(2.0)).unwrap();
        // Near TDP but LC already at guaranteed frequency: do nothing.
        ctl.tick(&mut server, &counters(0.95, 2.35));
        assert_eq!(server.allocations().be_freq_cap_ghz(), Some(2.0));
        // Headroom but LC below guaranteed (e.g. active-idle): do nothing.
        ctl.tick(&mut server, &counters(0.5, 1.8));
        assert_eq!(server.allocations().be_freq_cap_ghz(), Some(2.0));
    }

    #[test]
    fn reset_clears_the_cap() {
        let (mut server, mut ctl) = setup();
        ctl.tick(&mut server, &counters(0.96, 2.0));
        assert!(server.allocations().be_freq_cap_ghz().is_some());
        ctl.reset(&mut server);
        assert!(server.allocations().be_freq_cap_ghz().is_none());
    }
}
