//! Controller configuration.
//!
//! The constants mirror the ones the paper reports as empirically tuned:
//! a 15-second top-level poll, BE execution disabled above 85% load and
//! re-enabled below 80%, growth disallowed below 10% latency slack, cores
//! reclaimed below 5% slack, a multi-minute cooldown after an SLO violation,
//! a DRAM bandwidth limit of 90% of peak, a power threshold of 90% of TDP,
//! and 2-second / 2-second / 1-second cycles for the core & memory, power and
//! network sub-controllers.

use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the Heracles controller.
///
/// # Example
///
/// ```
/// use heracles_core::HeraclesConfig;
/// let cfg = HeraclesConfig::default();
/// assert_eq!(cfg.poll_period.as_secs_f64(), 15.0);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeraclesConfig {
    /// Top-level controller poll period (latency/load polling).
    pub poll_period: SimDuration,
    /// Core & memory sub-controller cycle time.
    pub core_mem_period: SimDuration,
    /// Power sub-controller cycle time.
    pub power_period: SimDuration,
    /// Network sub-controller cycle time.
    pub network_period: SimDuration,
    /// BE execution is disabled when LC load exceeds this fraction of peak.
    pub load_disable_threshold: f64,
    /// BE execution is re-enabled when LC load drops below this fraction.
    pub load_enable_threshold: f64,
    /// BE growth is disallowed when latency slack falls below this fraction.
    pub slack_disallow_growth: f64,
    /// BE cores are reclaimed when latency slack falls below this fraction.
    pub slack_reclaim_cores: f64,
    /// How long colocation stays disabled after a latency-slack violation.
    pub cooldown: SimDuration,
    /// DRAM bandwidth limit as a fraction of peak streaming bandwidth.
    pub dram_limit_fraction: f64,
    /// Package power threshold (fraction of TDP) above which the power
    /// sub-controller shifts power away from BE cores.
    pub power_threshold: f64,
    /// Guaranteed frequency for LC cores in GHz (measured as the frequency
    /// the LC workload achieves running alone at full load).
    pub guaranteed_lc_freq_ghz: f64,
    /// Number of BE cores left in place when slack drops below
    /// [`slack_reclaim_cores`](Self::slack_reclaim_cores) (Algorithm 1 removes
    /// all but two).
    pub be_cores_kept_on_reclaim: usize,
    /// Cores given to a BE job when it is first (re-)enabled.
    pub be_initial_cores: usize,
    /// Fraction of the LLC given to a BE job when it is first enabled
    /// (the paper starts BE jobs with 10% of the LLC).
    pub be_initial_llc_fraction: f64,
}

impl Default for HeraclesConfig {
    fn default() -> Self {
        HeraclesConfig {
            poll_period: SimDuration::from_secs(15),
            core_mem_period: SimDuration::from_secs(2),
            power_period: SimDuration::from_secs(2),
            network_period: SimDuration::from_secs(1),
            load_disable_threshold: 0.85,
            load_enable_threshold: 0.80,
            slack_disallow_growth: 0.10,
            slack_reclaim_cores: 0.05,
            cooldown: SimDuration::from_secs(300),
            dram_limit_fraction: 0.90,
            power_threshold: 0.90,
            guaranteed_lc_freq_ghz: 2.3,
            be_cores_kept_on_reclaim: 2,
            be_initial_cores: 1,
            be_initial_llc_fraction: 0.10,
        }
    }
}

impl HeraclesConfig {
    /// A configuration with shorter cooldown and poll periods, useful for
    /// fast experiments and tests where simulated wall-clock time is scarce.
    pub fn fast() -> Self {
        HeraclesConfig {
            poll_period: SimDuration::from_secs(15),
            cooldown: SimDuration::from_secs(60),
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found (e.g. an enable
    /// threshold above the disable threshold).
    pub fn validate(&self) -> Result<(), String> {
        if self.poll_period.is_zero()
            || self.core_mem_period.is_zero()
            || self.power_period.is_zero()
            || self.network_period.is_zero()
        {
            return Err("controller periods must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.load_disable_threshold)
            || !(0.0..=1.0).contains(&self.load_enable_threshold)
            || self.load_enable_threshold > self.load_disable_threshold
        {
            return Err("load thresholds must satisfy enable <= disable, both in [0, 1]".into());
        }
        if self.slack_reclaim_cores > self.slack_disallow_growth {
            return Err("core-reclaim slack must not exceed growth-disallow slack".into());
        }
        if !(0.0..=1.0).contains(&self.dram_limit_fraction)
            || !(0.0..=1.5).contains(&self.power_threshold)
        {
            return Err("resource limits must be fractions".into());
        }
        if self.guaranteed_lc_freq_ghz <= 0.0 {
            return Err("guaranteed LC frequency must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.be_initial_llc_fraction) {
            return Err("initial BE LLC fraction must be in [0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let cfg = HeraclesConfig::default();
        assert_eq!(cfg.poll_period.as_secs_f64(), 15.0);
        assert_eq!(cfg.load_disable_threshold, 0.85);
        assert_eq!(cfg.load_enable_threshold, 0.80);
        assert_eq!(cfg.slack_disallow_growth, 0.10);
        assert_eq!(cfg.slack_reclaim_cores, 0.05);
        assert_eq!(cfg.dram_limit_fraction, 0.90);
        assert_eq!(cfg.power_threshold, 0.90);
        assert_eq!(cfg.be_cores_kept_on_reclaim, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn fast_config_is_valid() {
        assert!(HeraclesConfig::fast().validate().is_ok());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let cfg = HeraclesConfig { load_enable_threshold: 0.95, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = HeraclesConfig { slack_reclaim_cores: 0.5, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = HeraclesConfig { poll_period: SimDuration::ZERO, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = HeraclesConfig { guaranteed_lc_freq_ghz: 0.0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }
}
