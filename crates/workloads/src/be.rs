//! Best-effort workloads and single-resource antagonists.
//!
//! A best-effort (BE) task matters to the controller only through the
//! pressure it puts on each shared resource — cores, LLC capacity, DRAM
//! bandwidth, package power and network egress — and through the throughput
//! it achieves (which feeds Effective Machine Utilization).  Each profile
//! here captures those pressures for one of the paper's BE workloads:
//!
//! * the synthetic antagonists of §3.2 (LLC streaming at small/medium/big
//!   footprints, DRAM streaming, a HyperThread spinloop, a CPU power virus,
//!   and iperf network streaming), and
//! * the production batch jobs of §5.1 (`brain`, a deep-learning image
//!   labeller that is compute- and LLC-hungry with high DRAM bandwidth, and
//!   `streetview`, an image-stitching job that hammers the DRAM subsystem).

use heracles_hw::{ResourceDemand, Server, ServerConfig};
use serde::{Deserialize, Serialize};

/// Which best-effort workload a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeKind {
    /// Streams through a quarter-LLC-sized array (`LLC (small)` antagonist).
    LlcSmall,
    /// Streams through a half-LLC-sized array (`LLC (med)` / `stream-LLC`).
    LlcMedium,
    /// Streams through a nearly LLC-sized array (`LLC (big)` antagonist).
    LlcBig,
    /// Streams through an array far larger than the LLC (`DRAM` /
    /// `stream-DRAM`).
    StreamDram,
    /// A register-only spinloop pinned on the LC cores' sibling HyperThreads.
    Spinloop,
    /// A CPU power virus that maximises per-core power draw.
    CpuPwr,
    /// iperf-style network streaming with many low-bandwidth "mice" flows.
    Iperf,
    /// Google brain: deep learning on images (production batch workload).
    Brain,
    /// Google Street View panorama stitching (production batch workload).
    Streetview,
}

/// A best-effort workload profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeWorkload {
    kind: BeKind,
    name: String,
    /// Data footprint the task streams through / keeps hot, in MB.
    llc_footprint_mb: f64,
    /// How aggressively it competes for unpartitioned LLC capacity relative
    /// to a latency-critical workload's accesses (streaming ≫ 1).
    llc_pressure_weight: f64,
    /// DRAM bandwidth per busy core when it holds all the cache it wants, GB/s.
    dram_gbps_per_core_min: f64,
    /// DRAM bandwidth per busy core when fully cache-starved, GB/s.
    dram_gbps_per_core_max: f64,
    /// Per-core activity factor (power model input; a power virus exceeds 1).
    compute_activity: f64,
    /// Egress bandwidth generated per busy core, in Gbps.
    net_gbps_per_core: f64,
    /// Intensity of interference on a shared HyperThread (0 = the minimal
    /// spinloop of the characterization, 1 = maximally demanding sibling).
    smt_intensity: f64,
    /// Fraction of throughput lost when fully cache-starved.
    cache_sensitivity: f64,
    /// Fraction of throughput governed by achieved DRAM bandwidth.
    memory_intensity: f64,
}

impl BeWorkload {
    /// The `LLC (small)` antagonist: streams through about a quarter of the LLC.
    pub fn llc_small() -> Self {
        BeWorkload {
            kind: BeKind::LlcSmall,
            name: "LLC (small)".to_string(),
            llc_footprint_mb: 22.0,
            llc_pressure_weight: 3.0,
            dram_gbps_per_core_min: 0.25,
            dram_gbps_per_core_max: 2.0,
            compute_activity: 0.60,
            net_gbps_per_core: 0.0,
            smt_intensity: 0.6,
            cache_sensitivity: 0.30,
            memory_intensity: 0.6,
        }
    }

    /// The `LLC (med)` antagonist (also the `stream-LLC` BE task of §5.1):
    /// streams through about half of the LLC.
    pub fn llc_medium() -> Self {
        BeWorkload {
            kind: BeKind::LlcMedium,
            name: "LLC (med)".to_string(),
            llc_footprint_mb: 45.0,
            llc_pressure_weight: 3.5,
            dram_gbps_per_core_min: 0.4,
            dram_gbps_per_core_max: 3.0,
            compute_activity: 0.65,
            net_gbps_per_core: 0.0,
            smt_intensity: 0.7,
            cache_sensitivity: 0.40,
            memory_intensity: 0.7,
        }
    }

    /// `stream-LLC` from the evaluation (§5.1) — the same as [`llc_medium`].
    ///
    /// [`llc_medium`]: BeWorkload::llc_medium
    pub fn stream_llc() -> Self {
        let mut w = Self::llc_medium();
        w.name = "stream-LLC".to_string();
        w
    }

    /// The `LLC (big)` antagonist: streams through almost the whole LLC.
    /// In practice its refill traffic behaves nearly like DRAM streaming,
    /// which is why the paper's Figure 1 rows for `LLC (big)` and `DRAM`
    /// look alike.
    pub fn llc_big() -> Self {
        BeWorkload {
            kind: BeKind::LlcBig,
            name: "LLC (big)".to_string(),
            llc_footprint_mb: 85.0,
            llc_pressure_weight: 4.0,
            dram_gbps_per_core_min: 2.5,
            dram_gbps_per_core_max: 4.0,
            compute_activity: 0.70,
            net_gbps_per_core: 0.0,
            smt_intensity: 0.8,
            cache_sensitivity: 0.30,
            memory_intensity: 0.8,
        }
    }

    /// The `DRAM` streaming antagonist (also `stream-DRAM` in §5.1): streams
    /// through an array far larger than the LLC, saturating memory bandwidth
    /// when given enough cores.
    pub fn stream_dram() -> Self {
        BeWorkload {
            kind: BeKind::StreamDram,
            name: "stream-DRAM".to_string(),
            llc_footprint_mb: 2_000.0,
            llc_pressure_weight: 4.0,
            dram_gbps_per_core_min: 4.0,
            dram_gbps_per_core_max: 4.2,
            compute_activity: 0.70,
            net_gbps_per_core: 0.0,
            smt_intensity: 0.9,
            cache_sensitivity: 0.05,
            memory_intensity: 1.0,
        }
    }

    /// The HyperThread antagonist: a tight register-only spinloop pinned on
    /// the sibling HyperThreads of the LC cores (the *lower bound* of
    /// HyperThread interference).
    pub fn spinloop() -> Self {
        BeWorkload {
            kind: BeKind::Spinloop,
            name: "HyperThread".to_string(),
            llc_footprint_mb: 0.01,
            llc_pressure_weight: 1.0,
            dram_gbps_per_core_min: 0.0,
            dram_gbps_per_core_max: 0.0,
            compute_activity: 0.35,
            net_gbps_per_core: 0.0,
            smt_intensity: 0.20,
            cache_sensitivity: 0.0,
            memory_intensity: 0.0,
        }
    }

    /// The CPU power virus: maximises switching activity and power draw.
    pub fn cpu_pwr() -> Self {
        BeWorkload {
            kind: BeKind::CpuPwr,
            name: "CPU power".to_string(),
            llc_footprint_mb: 1.0,
            llc_pressure_weight: 1.0,
            dram_gbps_per_core_min: 0.05,
            dram_gbps_per_core_max: 0.1,
            compute_activity: 1.40,
            net_gbps_per_core: 0.0,
            smt_intensity: 1.0,
            cache_sensitivity: 0.0,
            memory_intensity: 0.05,
        }
    }

    /// iperf: saturates the egress link with many low-bandwidth "mice" flows
    /// from a single core.
    pub fn iperf() -> Self {
        BeWorkload {
            kind: BeKind::Iperf,
            name: "iperf".to_string(),
            llc_footprint_mb: 2.0,
            llc_pressure_weight: 1.0,
            dram_gbps_per_core_min: 0.1,
            dram_gbps_per_core_max: 0.2,
            compute_activity: 0.35,
            net_gbps_per_core: 9.2,
            smt_intensity: 0.4,
            cache_sensitivity: 0.0,
            memory_intensity: 0.1,
        }
    }

    /// Google brain: deep learning on images.  Very compute intensive,
    /// sensitive to LLC size, high DRAM bandwidth requirements.
    pub fn brain() -> Self {
        BeWorkload {
            kind: BeKind::Brain,
            name: "brain".to_string(),
            llc_footprint_mb: 55.0,
            llc_pressure_weight: 2.5,
            dram_gbps_per_core_min: 1.2,
            dram_gbps_per_core_max: 2.8,
            compute_activity: 1.05,
            net_gbps_per_core: 0.02,
            smt_intensity: 0.85,
            cache_sensitivity: 0.45,
            memory_intensity: 0.5,
        }
    }

    /// Google Street View panorama stitching.  Highly demanding on the DRAM
    /// subsystem.
    pub fn streetview() -> Self {
        BeWorkload {
            kind: BeKind::Streetview,
            name: "streetview".to_string(),
            llc_footprint_mb: 25.0,
            llc_pressure_weight: 3.0,
            dram_gbps_per_core_min: 3.6,
            dram_gbps_per_core_max: 4.4,
            compute_activity: 0.80,
            net_gbps_per_core: 0.02,
            smt_intensity: 0.85,
            cache_sensitivity: 0.15,
            memory_intensity: 0.9,
        }
    }

    /// The eight interference sources of the Figure 1 characterization, in
    /// the order the paper's rows list them (brain is run under the OS-only
    /// baseline).
    pub fn characterization_antagonists() -> Vec<BeWorkload> {
        vec![
            Self::llc_small(),
            Self::llc_medium(),
            Self::llc_big(),
            Self::stream_dram(),
            Self::spinloop(),
            Self::cpu_pwr(),
            Self::iperf(),
            Self::brain(),
        ]
    }

    /// The BE workloads used in the single-server evaluation (§5.1/§5.2).
    pub fn evaluation_set() -> Vec<BeWorkload> {
        vec![
            Self::stream_llc(),
            Self::stream_dram(),
            Self::cpu_pwr(),
            Self::brain(),
            Self::streetview(),
            Self::iperf(),
        ]
    }

    /// The production BE workloads used for the EMU and cluster results.
    pub fn production_set() -> Vec<BeWorkload> {
        vec![Self::brain(), Self::streetview()]
    }

    /// The workload's kind.
    pub fn kind(&self) -> BeKind {
        self.kind
    }

    /// The workload's name as used in the paper's figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data footprint the task would like resident in the LLC, in MB.
    pub fn footprint_mb(&self) -> f64 {
        self.llc_footprint_mb
    }

    /// The footprint weighted by how aggressively the task competes for
    /// unpartitioned cache capacity (used as the contention pressure passed
    /// to the cache model).
    pub fn contention_footprint_mb(&self) -> f64 {
        self.llc_footprint_mb * self.llc_pressure_weight
    }

    /// Per-core activity factor.
    pub fn compute_activity(&self) -> f64 {
        self.compute_activity
    }

    /// Intensity of interference when sharing a HyperThread with an LC core.
    pub fn smt_intensity(&self) -> f64 {
        self.smt_intensity
    }

    /// DRAM bandwidth per busy core when fully cache-starved, in GB/s.
    pub fn dram_gbps_per_core_when_starved(&self) -> f64 {
        self.dram_gbps_per_core_max
    }

    /// Fraction of the task's throughput governed by achieved DRAM bandwidth
    /// (1.0 for pure streaming, 0.0 for compute-bound tasks).  Placement uses
    /// this to prefer high-bandwidth server generations for DRAM-hungry jobs.
    pub fn memory_intensity(&self) -> f64 {
        self.memory_intensity
    }

    /// True if this task's interference comes purely through HyperThread
    /// sharing (the spinloop antagonist).
    pub fn is_smt_antagonist(&self) -> bool {
        self.kind == BeKind::Spinloop
    }

    /// True if this task generates enough egress traffic to contend for the
    /// NIC.
    pub fn is_network_antagonist(&self) -> bool {
        self.net_gbps_per_core > 1.0
    }

    /// Fraction of the task's working set that does not fit in `cache_mb`.
    pub fn cache_deficit(&self, cache_mb: f64) -> f64 {
        if self.llc_footprint_mb <= 0.0 {
            return 0.0;
        }
        (1.0 - cache_mb.max(0.0) / self.llc_footprint_mb).clamp(0.0, 1.0)
    }

    /// DRAM bandwidth demanded per busy core given how much cache it has, GB/s.
    pub fn dram_gbps_per_core(&self, cache_mb: f64) -> f64 {
        let deficit = self.cache_deficit(cache_mb);
        self.dram_gbps_per_core_min
            + (self.dram_gbps_per_core_max - self.dram_gbps_per_core_min) * deficit
    }

    /// Egress bandwidth offered by `cores` busy cores, in Gbps.
    pub fn network_gbps(&self, cores: usize) -> f64 {
        self.net_gbps_per_core * cores as f64
    }

    /// The best-effort half of a [`ResourceDemand`] for a measurement window,
    /// given how many cores the task runs on and the LLC capacity it
    /// currently enjoys.
    pub fn demand(&self, cores: usize, cache_mb: f64) -> ResourceDemand {
        ResourceDemand {
            be_active_cores: cores as f64,
            be_compute_activity: self.compute_activity,
            be_dram_gbps_per_core: self.dram_gbps_per_core(cache_mb),
            be_llc_footprint_mb: self.contention_footprint_mb(),
            be_net_offered_gbps: self.network_gbps(cores),
            smt_antagonist_intensity: self.smt_intensity,
            ..ResourceDemand::default()
        }
    }

    /// Progress achieved in one window, in core-equivalents: the number of
    /// cores the task runs on, scaled by how fast those cores run relative to
    /// nominal and by how much cache capacity / memory bandwidth / network
    /// bandwidth shortfalls slow it down.
    ///
    /// Dividing this by the progress the task achieves when it runs alone on
    /// the whole machine gives the normalized BE throughput used in the
    /// paper's Effective Machine Utilization metric.
    pub fn progress(
        &self,
        cores: usize,
        be_freq_ghz: f64,
        be_cache_mb: f64,
        be_dram_achieved_gbps: f64,
        be_net_achieved_gbps: f64,
        config: &ServerConfig,
    ) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let freq_scale = (be_freq_ghz / config.nominal_freq_ghz).max(0.0);
        let cache_eff = 1.0 - self.cache_sensitivity * self.cache_deficit(be_cache_mb);
        let dram_demanded = self.dram_gbps_per_core(be_cache_mb) * cores as f64 * freq_scale;
        let dram_ratio = if dram_demanded > 0.0 {
            (be_dram_achieved_gbps / dram_demanded).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let mem_eff = (1.0 - self.memory_intensity) + self.memory_intensity * dram_ratio;
        let net_offered = self.network_gbps(cores);
        let net_eff = if net_offered > 0.0 {
            (be_net_achieved_gbps / net_offered).clamp(0.0, 1.0).max(0.05)
        } else {
            1.0
        };
        let net_eff = if self.is_network_antagonist() { net_eff } else { 1.0 };
        cores as f64 * freq_scale * cache_eff * mem_eff * net_eff
    }

    /// Progress the task achieves running *alone* on the whole machine (all
    /// cores, the whole LLC, no colocated LC workload).  This is the
    /// normalization denominator of the EMU metric.
    pub fn alone_progress(&self, config: &ServerConfig) -> f64 {
        let mut server = Server::new(config.clone());
        let total = config.total_cores();
        {
            let alloc = server.allocations_mut();
            alloc.set_lc_cores(0);
            alloc.set_be_cores(total);
            alloc.clear_cat();
            alloc.set_be_freq_cap_ghz(None);
            alloc.set_be_net_ceil_gbps(None);
        }
        let cache = server.cache_split(0.0, self.contention_footprint_mb());
        let demand = self.demand(total, cache.be_mb);
        let outcome = server.evaluate(&demand);
        self.progress(
            total,
            outcome.be_freq_ghz,
            outcome.be_cache_mb,
            outcome.be_dram_achieved_gbps,
            outcome.be_net_achieved_gbps,
            config,
        )
        .max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServerConfig {
        ServerConfig::default_haswell()
    }

    #[test]
    fn antagonist_set_matches_figure_1_rows() {
        let rows = BeWorkload::characterization_antagonists();
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "LLC (small)",
                "LLC (med)",
                "LLC (big)",
                "stream-DRAM",
                "HyperThread",
                "CPU power",
                "iperf",
                "brain"
            ]
        );
    }

    #[test]
    fn llc_antagonist_footprints_are_ordered() {
        let small = BeWorkload::llc_small().footprint_mb();
        let med = BeWorkload::llc_medium().footprint_mb();
        let big = BeWorkload::llc_big().footprint_mb();
        let total = config().llc_total_mb();
        assert!(small < med && med < big);
        assert!((small - total / 4.0).abs() < total * 0.05);
        assert!((med - total / 2.0).abs() < total * 0.05);
        assert!(big > total * 0.9);
        assert!(BeWorkload::stream_dram().footprint_mb() > total * 5.0);
    }

    #[test]
    fn dram_demand_grows_when_cache_starved() {
        for w in BeWorkload::characterization_antagonists() {
            let starved = w.dram_gbps_per_core(0.0);
            let satisfied = w.dram_gbps_per_core(w.footprint_mb());
            assert!(starved >= satisfied, "{}", w.name());
        }
        // A starved stream-DRAM task saturates the machine with ~30 cores.
        let dram = BeWorkload::stream_dram();
        assert!(dram.dram_gbps_per_core(0.0) * 30.0 > config().dram_peak_gbps());
    }

    #[test]
    fn power_virus_is_the_most_power_hungry() {
        let virus = BeWorkload::cpu_pwr();
        for w in BeWorkload::characterization_antagonists() {
            assert!(virus.compute_activity() >= w.compute_activity());
        }
        assert!(virus.compute_activity() > 1.0);
    }

    #[test]
    fn iperf_saturates_the_link_from_one_core() {
        let iperf = BeWorkload::iperf();
        assert!(iperf.is_network_antagonist());
        assert!(iperf.network_gbps(1) > 9.0);
        assert!(!BeWorkload::brain().is_network_antagonist());
    }

    #[test]
    fn spinloop_is_the_minimal_smt_antagonist() {
        let spin = BeWorkload::spinloop();
        assert!(spin.is_smt_antagonist());
        assert!(spin.footprint_mb() < 0.1);
        for w in BeWorkload::characterization_antagonists() {
            if !w.is_smt_antagonist() {
                assert!(w.smt_intensity() >= spin.smt_intensity(), "{}", w.name());
            }
        }
    }

    #[test]
    fn progress_scales_with_cores_and_frequency() {
        let cfg = config();
        let brain = BeWorkload::brain();
        let p8 = brain.progress(8, 2.3, 50.0, 20.0, 1.0, &cfg);
        let p16 = brain.progress(16, 2.3, 50.0, 45.0, 1.0, &cfg);
        assert!(p16 > p8 * 1.5);
        let slow = brain.progress(8, 1.2, 50.0, 20.0, 1.0, &cfg);
        assert!(slow < p8);
        assert_eq!(brain.progress(0, 2.3, 50.0, 20.0, 1.0, &cfg), 0.0);
    }

    #[test]
    fn cache_starvation_hurts_brain_more_than_streetview() {
        let cfg = config();
        let brain = BeWorkload::brain();
        let sv = BeWorkload::streetview();
        let brain_loss = 1.0
            - brain.progress(8, 2.3, 0.0, 100.0, 1.0, &cfg)
                / brain.progress(8, 2.3, 100.0, 100.0, 1.0, &cfg);
        let sv_loss = 1.0
            - sv.progress(8, 2.3, 0.0, 100.0, 1.0, &cfg)
                / sv.progress(8, 2.3, 100.0, 100.0, 1.0, &cfg);
        assert!(brain_loss > sv_loss);
    }

    #[test]
    fn dram_shortfall_limits_memory_bound_progress() {
        let cfg = config();
        let sv = BeWorkload::streetview();
        let full = sv.progress(30, 2.3, 25.0, 30.0 * sv.dram_gbps_per_core(25.0), 1.0, &cfg);
        let limited = sv.progress(30, 2.3, 25.0, 60.0, 1.0, &cfg);
        assert!(limited < full * 0.75, "limited {limited} vs full {full}");
    }

    #[test]
    fn alone_progress_is_positive_and_bounded() {
        let cfg = config();
        for w in BeWorkload::evaluation_set() {
            let alone = w.alone_progress(&cfg);
            assert!(alone > 0.0, "{}", w.name());
            // Cannot exceed the machine's core count times the max turbo ratio.
            assert!(alone <= cfg.total_cores() as f64 * 1.5, "{}", w.name());
        }
        // A DRAM-bound task running alone is limited by bandwidth, not cores.
        let sv_alone = BeWorkload::streetview().alone_progress(&cfg);
        assert!(sv_alone < cfg.total_cores() as f64 * 0.95);
        // A compute-bound task running alone uses essentially every core.
        let pwr_alone = BeWorkload::cpu_pwr().alone_progress(&cfg);
        assert!(pwr_alone > cfg.total_cores() as f64 * 0.5);
    }

    #[test]
    fn demand_reflects_profile() {
        let brain = BeWorkload::brain();
        let d = brain.demand(12, 10.0);
        assert_eq!(d.be_active_cores, 12.0);
        assert!(d.be_dram_gbps_per_core > brain.dram_gbps_per_core(brain.footprint_mb()));
        assert!(d.be_llc_footprint_mb > brain.footprint_mb());
        assert_eq!(d.lc_active_cores, 0.0);
    }
}
