//! Service-level objective bookkeeping.
//!
//! Each LC workload has an SLO defined as a tail-latency target at a given
//! percentile (99%-ile for `websearch` and `memkeyval`, 95%-ile for
//! `ml_cluster`).  The figures in the paper report latency *normalized to the
//! SLO target*, and the controller works with the *latency slack*
//! `(target - measured) / target`.

use serde::{Deserialize, Serialize};

/// A tail-latency service-level objective.
///
/// # Example
///
/// ```
/// use heracles_workloads::Slo;
/// let slo = Slo::new(0.025, 0.99);
/// assert_eq!(slo.normalized(0.0125), 0.5);
/// assert!(slo.is_met(0.020));
/// assert!(!slo.is_met(0.030));
/// assert!((slo.slack(0.020) - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Latency target in seconds.
    pub target_s: f64,
    /// The percentile (in `(0, 1]`) at which the target applies.
    pub percentile: f64,
}

impl Slo {
    /// Creates an SLO.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive or the percentile is outside
    /// `(0, 1]`.
    pub fn new(target_s: f64, percentile: f64) -> Self {
        assert!(target_s > 0.0, "SLO target must be positive");
        assert!(percentile > 0.0 && percentile <= 1.0, "percentile must be in (0, 1]");
        Slo { target_s, percentile }
    }

    /// Latency normalized to the target (1.0 = exactly at the SLO).
    pub fn normalized(&self, latency_s: f64) -> f64 {
        latency_s / self.target_s
    }

    /// True if the measured tail latency meets the SLO.
    pub fn is_met(&self, latency_s: f64) -> bool {
        latency_s <= self.target_s
    }

    /// The latency slack `(target - measured) / target`; negative when the
    /// SLO is violated.
    pub fn slack(&self, latency_s: f64) -> f64 {
        (self.target_s - latency_s) / self.target_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_and_normalization_are_consistent() {
        let slo = Slo::new(0.040, 0.99);
        let lat = 0.030;
        assert!((slo.slack(lat) + slo.normalized(lat) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn violation_has_negative_slack() {
        let slo = Slo::new(0.0005, 0.99);
        assert!(slo.slack(0.001) < 0.0);
        assert!(!slo.is_met(0.001));
    }

    #[test]
    #[should_panic]
    fn zero_target_is_rejected() {
        let _ = Slo::new(0.0, 0.99);
    }

    #[test]
    #[should_panic]
    fn bad_percentile_is_rejected() {
        let _ = Slo::new(0.01, 1.5);
    }
}
