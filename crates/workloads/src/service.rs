//! First-class LC services: the catalog of latency-critical demand a fleet
//! serves.
//!
//! The paper assumes a cluster-wide front-end load balancer that divides
//! each LC service's diurnal traffic across its leaves.  Modelling that
//! requires the *service* — not the server — to own the demand: an
//! [`LcService`] couples a workload profile (with its SLO) to an aggregate
//! diurnal demand curve and a fleet share, and a [`ServiceCatalog`] is the
//! set of services a fleet serves.  The fleet's traffic plane reads the
//! catalog's offered QPS every step and routes it onto whatever leaves are
//! in service — so a retired leaf's share does not evaporate, it lands on
//! the survivors.
//!
//! A [`ServiceMix`] is the compact, copyable spec (share per service) that
//! configurations and CLIs carry; [`ServiceCatalog::build`] expands it into
//! full descriptors deterministically from a seed.

use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::lc::{LcKind, LcWorkload};
use crate::trace::DiurnalTrace;

/// Number of distinct LC services the catalog can carry (one slot per
/// [`LcKind`], in kind-index order: websearch, ml_cluster, memkeyval).
pub const NUM_SERVICES: usize = 3;

/// One latency-critical service as the traffic plane sees it: the workload
/// profile (which carries the SLO and the per-reference-server peak QPS),
/// the aggregate diurnal demand curve, and the share of the fleet's leaves
/// provisioned for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcService {
    workload: LcWorkload,
    demand: DiurnalTrace,
    fleet_share: f64,
    /// Phase offset of the demand curve, in seconds: real services do not
    /// peak together (search peaks with the workday, caching with the
    /// evening), and the offset is what keeps a mixed fleet spanning the
    /// load range at any instant.
    phase_s: f64,
}

impl LcService {
    /// Creates a service descriptor.
    ///
    /// # Panics
    ///
    /// Panics unless `fleet_share` is in `(0, 1]` and `phase_s` is finite
    /// and non-negative.
    pub fn new(workload: LcWorkload, demand: DiurnalTrace, fleet_share: f64, phase_s: f64) -> Self {
        assert!(
            fleet_share.is_finite() && fleet_share > 0.0 && fleet_share <= 1.0,
            "fleet share must be in (0, 1], got {fleet_share}"
        );
        assert!(phase_s.is_finite() && phase_s >= 0.0, "phase must be non-negative, got {phase_s}");
        LcService { workload, demand, fleet_share, phase_s }
    }

    /// The service's kind.
    pub fn kind(&self) -> LcKind {
        self.workload.kind()
    }

    /// The workload profile (SLO, peak QPS, resource demands).
    pub fn workload(&self) -> &LcWorkload {
        &self.workload
    }

    /// The aggregate diurnal demand curve.
    pub fn demand(&self) -> &DiurnalTrace {
        &self.demand
    }

    /// Fraction of the fleet's leaves provisioned for this service.
    pub fn fleet_share(&self) -> f64 {
        self.fleet_share
    }

    /// The demand curve's phase offset, in seconds.
    pub fn phase_s(&self) -> f64 {
        self.phase_s
    }

    /// The service's aggregate demand at `at_s` seconds of (already
    /// time-compressed) wall time, as a fraction of its provisioned peak
    /// capacity.  The curve wraps around its period, shifted by the
    /// service's phase.
    pub fn demand_fraction(&self, at_s: f64) -> f64 {
        let period = self.demand.duration().as_secs_f64();
        let t = (at_s + self.phase_s).rem_euclid(period);
        self.demand.load_at(heracles_sim::SimTime::from_secs_f64(t))
    }
}

/// The set of LC services a fleet serves, with their demand curves and
/// fleet shares — the input the traffic plane routes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCatalog {
    services: Vec<LcService>,
}

impl ServiceCatalog {
    /// Expands a [`ServiceMix`] into full service descriptors,
    /// deterministically from `seed`.
    ///
    /// Each active service gets the 12-hour diurnal curve of its class
    /// (seeded per service, so their noise differs) with the demand phases
    /// spread over `phase_spread` of the period: service *i* of *k* active
    /// services is offset by `period * phase_spread * i / k`.  With one
    /// service the spread is inert; with several it is what keeps the fleet
    /// spanning the load range at any instant.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not [`validate`](ServiceMix::validate) or
    /// `phase_spread` is outside `[0, 1]`.
    pub fn build(mix: ServiceMix, seed: u64, phase_spread: f64) -> Self {
        mix.validate().unwrap_or_else(|e| panic!("invalid service mix: {e}"));
        assert!(
            phase_spread.is_finite() && (0.0..=1.0).contains(&phase_spread),
            "phase spread must be in [0, 1], got {phase_spread}"
        );
        let shares = mix.shares();
        let active: Vec<LcKind> =
            LcKind::all().into_iter().filter(|k| shares[k.index()] > 0.0).collect();
        let period = SimDuration::from_secs(12 * 3600);
        let services = active
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                // Diurnal swings per class: search rides the workday hard,
                // ml inference is flatter, the key-value cache swings the
                // widest (fan-out caching amplifies front-end diurnality).
                let (min_load, max_load) = match kind {
                    LcKind::Websearch => (0.20, 0.90),
                    LcKind::MlCluster => (0.30, 0.80),
                    LcKind::Memkeyval => (0.15, 0.90),
                };
                let demand = DiurnalTrace::new(
                    period,
                    min_load,
                    max_load,
                    0.03,
                    seed ^ (0x5E41 + kind.index() as u64 * 0x9E37),
                );
                let phase_s = period.as_secs_f64() * phase_spread * i as f64 / active.len() as f64;
                LcService::new(LcWorkload::of_kind(kind), demand, shares[kind.index()], phase_s)
            })
            .collect();
        ServiceCatalog { services }
    }

    /// The services, in kind-index order (only services with a positive
    /// share are present).
    pub fn services(&self) -> &[LcService] {
        &self.services
    }

    /// Number of services in the catalog.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if the catalog is empty (never the case for a built catalog).
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// One service by kind, if the catalog carries it.
    pub fn get(&self, kind: LcKind) -> Option<&LcService> {
        self.services.iter().find(|s| s.kind() == kind)
    }

    /// Fleet shares indexed by [`LcKind::index`] (zero for absent services).
    pub fn shares(&self) -> [f64; NUM_SERVICES] {
        let mut shares = [0.0; NUM_SERVICES];
        for s in &self.services {
            shares[s.kind().index()] = s.fleet_share();
        }
        shares
    }

    /// Assigns a service to each of `fleet` server ids by proportional
    /// error diffusion over the fleet shares, so each service's leaves
    /// interleave evenly across the id range.  A pure function of the
    /// catalog and the fleet size.
    pub fn assignments(&self, fleet: usize) -> Vec<LcKind> {
        let kinds: Vec<LcKind> = self.services.iter().map(|s| s.kind()).collect();
        diffuse_assignments(&self.shares(), &kinds, fleet)
    }
}

/// Proportional error diffusion of `fleet` leaves over `shares`, choosing
/// only among `active` kinds — the one assignment rule the catalog, the
/// mix's leaf-count preview and hence the config validation all share.
fn diffuse_assignments(
    shares: &[f64; NUM_SERVICES],
    active: &[LcKind],
    fleet: usize,
) -> Vec<LcKind> {
    let mut credit = [0.0f64; NUM_SERVICES];
    let mut out = Vec::with_capacity(fleet);
    for _ in 0..fleet {
        let mut pick = active[0].index();
        for kind in active {
            let k = kind.index();
            credit[k] += shares[k];
            if credit[k] > credit[pick] + 1e-12 {
                pick = k;
            }
        }
        credit[pick] -= 1.0;
        out.push(LcKind::all()[pick]);
    }
    out
}

/// The compact, copyable service-mix spec a fleet configuration carries:
/// the share of the fleet's leaves provisioned for each LC service.
///
/// Parses from the CLI spelling `websearch:0.5,memkeyval:0.3,ml_cluster:0.2`
/// (shares must be non-negative and sum to 1), plus the shorthands
/// `websearch` (the single-service fleet) and `mixed` (a representative
/// three-service front end).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMix {
    /// Share of the fleet serving websearch.
    pub websearch: f64,
    /// Share of the fleet serving ml_cluster.
    pub ml_cluster: f64,
    /// Share of the fleet serving memkeyval.
    pub memkeyval: f64,
}

impl ServiceMix {
    /// Every leaf serves websearch (the pre-catalog fleet).
    pub fn websearch_only() -> Self {
        ServiceMix { websearch: 1.0, ml_cluster: 0.0, memkeyval: 0.0 }
    }

    /// A representative mixed front end: half websearch, the rest split
    /// between the cache tier and ml inference.
    pub fn mixed_frontend() -> Self {
        ServiceMix { websearch: 0.5, ml_cluster: 0.2, memkeyval: 0.3 }
    }

    /// The shares indexed by [`LcKind::index`].
    pub fn shares(&self) -> [f64; NUM_SERVICES] {
        [self.websearch, self.ml_cluster, self.memkeyval]
    }

    /// Number of services with a positive share.
    pub fn active_services(&self) -> usize {
        self.shares().iter().filter(|&&s| s > 0.0).count()
    }

    /// How many leaves each service would get on a `fleet` of the given
    /// size, indexed by [`LcKind::index`] — exactly the counts
    /// [`ServiceCatalog::assignments`] produces.  Lets configuration
    /// validation reject a (mix, fleet size) pair whose error diffusion
    /// strands an active service with zero leaves: such a service's demand
    /// would silently never be offered, the precise failure a first-class
    /// catalog exists to rule out.
    pub fn leaf_counts(&self, fleet: usize) -> [usize; NUM_SERVICES] {
        let shares = self.shares();
        let active: Vec<LcKind> =
            LcKind::all().into_iter().filter(|k| shares[k.index()] > 0.0).collect();
        let mut counts = [0usize; NUM_SERVICES];
        if active.is_empty() {
            return counts;
        }
        for kind in diffuse_assignments(&shares, &active, fleet) {
            counts[kind.index()] += 1;
        }
        counts
    }

    /// True if only websearch is served.
    pub fn is_websearch_only(&self) -> bool {
        self.ml_cluster <= 0.0 && self.memkeyval <= 0.0 && self.websearch > 0.0
    }

    /// Validates that every share is finite and non-negative, at least one
    /// is positive, and the shares sum to 1 (within a small tolerance).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        let shares = self.shares();
        for (kind, share) in LcKind::all().into_iter().zip(shares) {
            if !share.is_finite() || share < 0.0 {
                return Err(format!(
                    "service share for {} must be finite and non-negative (got {share})",
                    kind.name()
                ));
            }
        }
        let total: f64 = shares.iter().sum();
        if total <= 0.0 {
            return Err("at least one service needs a positive share".into());
        }
        if (total - 1.0).abs() > 1e-3 {
            return Err(format!("service shares must sum to 1 (got {total})"));
        }
        Ok(())
    }
}

impl Default for ServiceMix {
    fn default() -> Self {
        Self::websearch_only()
    }
}

impl std::str::FromStr for ServiceMix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "websearch" => return Ok(Self::websearch_only()),
            "mixed" => return Ok(Self::mixed_frontend()),
            _ => {}
        }
        let mut mix = ServiceMix { websearch: 0.0, ml_cluster: 0.0, memkeyval: 0.0 };
        let mut seen = [false; NUM_SERVICES];
        for pair in s.split(',') {
            let (name, share) = pair.split_once(':').ok_or_else(|| {
                format!(
                    "invalid service spec {pair:?} (expected NAME:SHARE, e.g. \
                     websearch:0.5,memkeyval:0.3,ml_cluster:0.2)"
                )
            })?;
            let share: f64 = share
                .parse()
                .map_err(|e| format!("invalid share {share:?} for service {name:?}: {e}"))?;
            let (idx, slot) = match name {
                "websearch" => (0, &mut mix.websearch),
                "ml_cluster" => (1, &mut mix.ml_cluster),
                "memkeyval" => (2, &mut mix.memkeyval),
                other => {
                    return Err(format!(
                        "unknown service {other:?} (expected websearch, ml_cluster or memkeyval)"
                    ))
                }
            };
            if seen[idx] {
                return Err(format!("service {name:?} listed twice"));
            }
            seen[idx] = true;
            *slot = share;
        }
        mix.validate()?;
        Ok(mix)
    }
}

impl std::fmt::Display for ServiceMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_websearch_only() {
            return write!(f, "websearch");
        }
        let mut first = true;
        for (kind, share) in LcKind::all().into_iter().zip(self.shares()) {
            if share > 0.0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{}:{:.2}", kind.name(), share)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_active_services_with_spread_phases() {
        let catalog = ServiceCatalog::build(ServiceMix::mixed_frontend(), 7, 1.0);
        assert_eq!(catalog.len(), 3);
        let phases: Vec<f64> = catalog.services().iter().map(|s| s.phase_s()).collect();
        assert_eq!(phases[0], 0.0);
        assert!(phases[1] > 0.0 && phases[2] > phases[1]);
        // Shares round-trip.
        assert_eq!(catalog.shares(), [0.5, 0.2, 0.3]);
        // A websearch-only mix builds a one-service catalog.
        let solo = ServiceCatalog::build(ServiceMix::websearch_only(), 7, 1.0);
        assert_eq!(solo.len(), 1);
        assert_eq!(solo.services()[0].kind(), LcKind::Websearch);
        assert!(solo.get(LcKind::Memkeyval).is_none());
    }

    #[test]
    fn demand_fraction_wraps_and_respects_phase() {
        let catalog = ServiceCatalog::build(ServiceMix::mixed_frontend(), 3, 1.0);
        for s in catalog.services() {
            let period = s.demand().duration().as_secs_f64();
            // Wrapping: one full period later the demand repeats.
            let a = s.demand_fraction(1234.0);
            let b = s.demand_fraction(1234.0 + period);
            assert!((a - b).abs() < 1e-12, "{}: {a} vs {b}", s.workload().name());
            assert!((0.0..=1.0).contains(&a));
        }
        // The phase offsets decorrelate the services: at the websearch
        // valley, at least one other service is far from its own valley.
        let ws = catalog.get(LcKind::Websearch).unwrap();
        let others_max = catalog
            .services()
            .iter()
            .filter(|s| s.kind() != LcKind::Websearch)
            .map(|s| s.demand_fraction(0.0))
            .fold(0.0, f64::max);
        assert!(others_max > ws.demand_fraction(0.0) + 0.2, "phases did not decorrelate");
    }

    #[test]
    fn assignments_are_proportional_and_interleaved() {
        let catalog = ServiceCatalog::build(ServiceMix::mixed_frontend(), 7, 1.0);
        let assigned = catalog.assignments(10);
        assert_eq!(assigned.len(), 10);
        let count = |k: LcKind| assigned.iter().filter(|&&a| a == k).count();
        assert_eq!(count(LcKind::Websearch), 5);
        assert_eq!(count(LcKind::MlCluster), 2);
        assert_eq!(count(LcKind::Memkeyval), 3);
        // Deterministic.
        assert_eq!(assigned, catalog.assignments(10));
        // Websearch leaves do not cluster at one end of the id range.
        let first_half = assigned[..5].iter().filter(|&&a| a == LcKind::Websearch).count();
        assert!((2..=3).contains(&first_half), "{assigned:?}");
    }

    #[test]
    fn mix_parses_the_cli_spelling_and_rejects_bad_specs() {
        let mix: ServiceMix = "websearch:0.5,memkeyval:0.3,ml_cluster:0.2".parse().unwrap();
        assert_eq!(mix, ServiceMix { websearch: 0.5, ml_cluster: 0.2, memkeyval: 0.3 });
        assert_eq!("websearch".parse::<ServiceMix>().unwrap(), ServiceMix::websearch_only());
        assert_eq!("mixed".parse::<ServiceMix>().unwrap(), ServiceMix::mixed_frontend());

        for bad in [
            "websearch:0.5",                              // shares must sum to 1
            "websearch:0.5,memkeyval:0.6",                // sums past 1
            "gmail:1.0",                                  // unknown service
            "websearch:0.5,websearch:0.5",                // duplicate
            "websearch:half,memkeyval:0.5",               // unparsable share
            "websearch=1.0",                              // malformed pair
            "websearch:-0.5,memkeyval:1.5",               // negative share
            "websearch:0.0,ml_cluster:0.0,memkeyval:0.0", // all zero
        ] {
            let err = bad.parse::<ServiceMix>().expect_err(bad);
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn leaf_counts_match_assignments_and_expose_starved_services() {
        let mix = ServiceMix::mixed_frontend();
        let catalog = ServiceCatalog::build(mix, 7, 1.0);
        for fleet in [3usize, 4, 7, 10, 33] {
            let mut from_assignments = [0usize; NUM_SERVICES];
            for k in catalog.assignments(fleet) {
                from_assignments[k.index()] += 1;
            }
            assert_eq!(mix.leaf_counts(fleet), from_assignments, "fleet {fleet}");
        }
        // A skewed mix on a small fleet starves its minority services —
        // the counts make that visible before any traffic is lost.
        let skewed = ServiceMix { websearch: 0.9, ml_cluster: 0.05, memkeyval: 0.05 };
        let counts = skewed.leaf_counts(6);
        assert_eq!(counts[0], 6, "{counts:?}");
        assert_eq!(counts[1] + counts[2], 0, "{counts:?}");
    }

    #[test]
    fn mix_display_round_trips() {
        assert_eq!(ServiceMix::websearch_only().to_string(), "websearch");
        let mixed = ServiceMix::mixed_frontend();
        let round: ServiceMix = mixed.to_string().parse().unwrap();
        assert_eq!(round, mixed);
    }

    #[test]
    fn catalogs_are_deterministic_per_seed() {
        let a = ServiceCatalog::build(ServiceMix::mixed_frontend(), 11, 1.0);
        let b = ServiceCatalog::build(ServiceMix::mixed_frontend(), 11, 1.0);
        let c = ServiceCatalog::build(ServiceMix::mixed_frontend(), 12, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds built identical demand curves");
    }
}
