//! Workload models for the Heracles reproduction.
//!
//! The paper evaluates three production latency-critical (LC) services —
//! `websearch`, `ml_cluster` and `memkeyval` — colocated with production
//! batch jobs (`brain`, `streetview`) and synthetic antagonists that stress a
//! single shared resource (LLC streaming at three footprints, DRAM streaming,
//! a HyperThread spinloop, a CPU power virus, and iperf network streaming).
//! None of the production binaries or traces are available, so this crate
//! models each workload by the *pressure it puts on each shared resource* and
//! (for the LC services) by how its per-request service time responds to the
//! effective resources it receives.  The profiles are calibrated to the
//! qualitative descriptions in §3.1 of the paper and to the sensitivity
//! patterns of Figure 1.
//!
//! * [`LcWorkload`] — a latency-critical service: SLO, peak throughput,
//!   per-request compute / cache / memory / network demands, and a
//!   service-time model that is evaluated through a discrete-event queue to
//!   produce tail latencies.
//! * [`BeWorkload`] — a best-effort task: per-core DRAM/LLC/power/network
//!   pressure and a throughput model used for Effective Machine Utilization.
//! * [`DiurnalTrace`] — the synthetic 12-hour diurnal load trace used by the
//!   cluster experiment (Figure 8).
//! * [`LcService`] / [`ServiceCatalog`] — first-class LC services: each
//!   service owns an aggregate diurnal demand curve, an SLO and a fleet
//!   share, so a fleet's traffic plane routes *service* demand onto leaves
//!   instead of every server privately owning a trace.
//! * [`Slo`] — SLO bookkeeping (target, percentile, normalized latency).
//!
//! # Example
//!
//! ```
//! use heracles_workloads::{LcWorkload, BeWorkload};
//! let lc = LcWorkload::websearch();
//! let be = BeWorkload::brain();
//! assert_eq!(lc.name(), "websearch");
//! assert!(lc.slo().target_s > 0.001);
//! assert!(be.dram_gbps_per_core_when_starved() > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod be;
pub mod lc;
pub mod service;
pub mod slo;
pub mod trace;

pub use be::{BeKind, BeWorkload};
pub use lc::{LcKind, LcWorkload, WindowResult};
pub use service::{LcService, ServiceCatalog, ServiceMix, NUM_SERVICES};
pub use slo::Slo;
pub use trace::DiurnalTrace;
