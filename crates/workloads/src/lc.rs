//! Latency-critical workload models.
//!
//! Each LC service is described by a per-request resource profile (compute
//! time, cache footprint, memory traffic, response size) and an SLO.  Given
//! the effective resources the hardware model grants for a measurement window
//! (frequency, cache capacity, memory latency inflation, network delay), the
//! model produces a service-time distribution and runs it through a
//! discrete-event M/G/c queue to obtain the tail latency the controller
//! observes — the same black-box relationship the real controller has with
//! the real services.
//!
//! The three profiles are calibrated to §3.1 of the paper:
//!
//! * **websearch** — compute-intensive leaf with a large DRAM-resident index;
//!   moderate DRAM bandwidth (~40% of peak at full load), small hot working
//!   set, tens-of-ms 99%-ile SLO, negligible network bandwidth.
//! * **ml_cluster** — real-time text clustering against an in-memory model;
//!   more memory-bandwidth-intensive (~60% at peak), slightly less compute
//!   intensive, small per-request working set that adds up with load,
//!   tens-of-ms 95%-ile SLO.
//! * **memkeyval** — in-memory key-value store; hundreds of thousands of
//!   requests per second, hundreds-of-microseconds 99%-ile SLO, low DRAM
//!   bandwidth (~20% at peak) but network-bound at high load.

use heracles_hw::{ContentionOutcome, ResourceDemand, ServerConfig};
use heracles_sim::{LatencyRecorder, MultiServerQueue, SimRng};
use serde::{Deserialize, Serialize};

use crate::slo::Slo;

/// Which of the three production LC services a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LcKind {
    /// The query-serving leaf of a production web search service.
    Websearch,
    /// A real-time text-clustering (machine-learning inference) service.
    MlCluster,
    /// An in-memory key-value store (memcached-like caching service).
    Memkeyval,
}

impl LcKind {
    /// All service kinds, in catalog (index) order.
    pub fn all() -> [LcKind; 3] {
        [LcKind::Websearch, LcKind::MlCluster, LcKind::Memkeyval]
    }

    /// The kind's index into per-service tables (0 = websearch,
    /// 1 = ml_cluster, 2 = memkeyval).
    pub fn index(self) -> usize {
        match self {
            LcKind::Websearch => 0,
            LcKind::MlCluster => 1,
            LcKind::Memkeyval => 2,
        }
    }

    /// The service's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            LcKind::Websearch => "websearch",
            LcKind::MlCluster => "ml_cluster",
            LcKind::Memkeyval => "memkeyval",
        }
    }
}

impl std::str::FromStr for LcKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "websearch" => Ok(LcKind::Websearch),
            "ml_cluster" => Ok(LcKind::MlCluster),
            "memkeyval" => Ok(LcKind::Memkeyval),
            other => Err(format!(
                "unknown LC service {other:?} (expected websearch, ml_cluster or memkeyval)"
            )),
        }
    }
}

/// A latency-critical workload profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcWorkload {
    kind: LcKind,
    name: String,
    slo: Slo,
    /// Requests per second at 100% load on one server.
    peak_qps: f64,
    /// Pure compute time per request at nominal frequency, in seconds.
    core_time_s: f64,
    /// Coefficient of variation of the per-request service time.
    service_cov: f64,
    /// Per-core activity factor while serving (power model input).
    compute_activity: f64,
    /// Footprint of instructions and shared data, in MB.
    static_footprint_mb: f64,
    /// Additional LLC footprint per in-flight request, in MB.
    per_request_footprint_mb: f64,
    /// DRAM traffic per request with a warm cache, in bytes.
    dram_bytes_base: f64,
    /// Additional DRAM traffic per request when fully cache-starved, in bytes.
    dram_bytes_capacity: f64,
    /// Average number of overlapping outstanding misses (memory-level
    /// parallelism), which divides the per-miss stall penalty.
    memory_level_parallelism: f64,
    /// Egress bytes per response.
    response_bytes: f64,
    /// Minimum number of cores the service is ever given.
    min_cores: usize,
    /// Core-allocation utilization target used when sizing "enough cores to
    /// satisfy the SLO at a given load" (§3.2 characterization setup).
    sizing_utilization: f64,
}

/// The result of simulating one measurement window of an LC workload.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// All per-request latencies observed in the window.
    pub latencies: LatencyRecorder,
    /// The tail latency at the SLO percentile, in seconds.
    pub tail_latency_s: f64,
    /// Tail latency normalized to the SLO target (1.0 = exactly at SLO).
    pub normalized_tail: f64,
    /// Mean latency in seconds.
    pub mean_latency_s: f64,
    /// Offered load as a fraction of peak QPS.
    pub offered_load: f64,
    /// Offered queries per second.
    pub qps: f64,
}

impl LcWorkload {
    /// The websearch leaf-node profile.
    pub fn websearch() -> Self {
        LcWorkload {
            kind: LcKind::Websearch,
            name: "websearch".to_string(),
            slo: Slo::new(0.025, 0.99),
            peak_qps: 2_900.0,
            core_time_s: 8.0e-3,
            service_cov: 0.20,
            compute_activity: 0.95,
            static_footprint_mb: 14.0,
            per_request_footprint_mb: 0.65,
            dram_bytes_base: 17.0e6,
            dram_bytes_capacity: 11.0e6,
            memory_level_parallelism: 9.0,
            response_bytes: 12_000.0,
            min_cores: 2,
            sizing_utilization: 0.70,
        }
    }

    /// The ml_cluster text-clustering profile.
    pub fn ml_cluster() -> Self {
        LcWorkload {
            kind: LcKind::MlCluster,
            name: "ml_cluster".to_string(),
            slo: Slo::new(0.020, 0.95),
            peak_qps: 3_950.0,
            core_time_s: 4.5e-3,
            service_cov: 0.25,
            compute_activity: 0.75,
            static_footprint_mb: 8.0,
            per_request_footprint_mb: 1.25,
            dram_bytes_base: 19.0e6,
            dram_bytes_capacity: 16.0e6,
            memory_level_parallelism: 8.0,
            response_bytes: 2_000.0,
            min_cores: 2,
            sizing_utilization: 0.70,
        }
    }

    /// The memkeyval in-memory key-value store profile.
    pub fn memkeyval() -> Self {
        LcWorkload {
            kind: LcKind::Memkeyval,
            name: "memkeyval".to_string(),
            slo: Slo::new(500.0e-6, 0.99),
            peak_qps: 570_000.0,
            core_time_s: 45.0e-6,
            service_cov: 0.55,
            compute_activity: 0.95,
            static_footprint_mb: 10.0,
            per_request_footprint_mb: 0.45,
            dram_bytes_base: 45.0e3,
            dram_bytes_capacity: 90.0e3,
            memory_level_parallelism: 6.0,
            response_bytes: 1_800.0,
            min_cores: 2,
            sizing_utilization: 0.70,
        }
    }

    /// All three production LC workloads, in the order the paper lists them.
    pub fn all() -> Vec<LcWorkload> {
        vec![Self::websearch(), Self::ml_cluster(), Self::memkeyval()]
    }

    /// The profile of one service kind.
    pub fn of_kind(kind: LcKind) -> Self {
        match kind {
            LcKind::Websearch => Self::websearch(),
            LcKind::MlCluster => Self::ml_cluster(),
            LcKind::Memkeyval => Self::memkeyval(),
        }
    }

    /// The workload's kind.
    pub fn kind(&self) -> LcKind {
        self.kind
    }

    /// The workload's name as used in the paper.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload's SLO.
    pub fn slo(&self) -> Slo {
        self.slo
    }

    /// Requests per second at 100% load.
    pub fn peak_qps(&self) -> f64 {
        self.peak_qps
    }

    /// The same service with its peak QPS scaled by `ratio`, modelling a
    /// capacity-weighted front-end load balancer: a server with half the
    /// compute of the reference machine is sent half the traffic, so a load
    /// fraction keeps meaning "fraction of what *this* box can serve".
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` is positive and finite.
    pub fn scaled_to_capacity(&self, ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio > 0.0, "capacity ratio must be positive, got {ratio}");
        LcWorkload { peak_qps: self.peak_qps * ratio, ..self.clone() }
    }

    /// Per-core activity factor while serving.
    pub fn compute_activity(&self) -> f64 {
        self.compute_activity
    }

    /// Queries per second at a given load fraction.
    pub fn qps(&self, load: f64) -> f64 {
        self.peak_qps * load.max(0.0)
    }

    /// Baseline per-request service time (nominal frequency, warm cache, no
    /// contention), in seconds.
    pub fn base_service_time_s(&self, config: &ServerConfig) -> f64 {
        self.core_time_s + self.memory_stall_s(self.dram_bytes_base, 1.0, config)
    }

    fn memory_stall_s(&self, bytes: f64, latency_multiplier: f64, config: &ServerConfig) -> f64 {
        let misses = bytes / 64.0;
        misses * config.dram_base_latency_ns * 1e-9 * latency_multiplier
            / self.memory_level_parallelism
    }

    /// The LLC footprint the service would like to keep resident at a given
    /// load, in MB.  The per-request component grows with the number of
    /// requests in flight, which is how a workload with a tiny per-request
    /// working set still builds up large cache pressure at high load (§3.1's
    /// description of ml_cluster).
    pub fn footprint_mb(&self, load: f64, config: &ServerConfig) -> f64 {
        let inflight = self.qps(load) * self.base_service_time_s(config);
        self.static_footprint_mb + self.per_request_footprint_mb * inflight
    }

    /// Fraction of the working set that does not fit in the given cache
    /// capacity (0 = fits entirely, 1 = completely starved).
    pub fn cache_deficit(&self, load: f64, cache_mb: f64, config: &ServerConfig) -> f64 {
        let footprint = self.footprint_mb(load, config);
        if footprint <= 0.0 {
            return 0.0;
        }
        (1.0 - cache_mb.max(0.0) / footprint).clamp(0.0, 1.0)
    }

    /// DRAM bandwidth the service generates at a given load and cache
    /// deficit, in GB/s.
    pub fn dram_gbps(&self, load: f64, cache_deficit: f64) -> f64 {
        let bytes = self.dram_bytes_base + self.dram_bytes_capacity * cache_deficit.clamp(0.0, 1.0);
        self.qps(load) * bytes / 1e9
    }

    /// Egress network bandwidth of responses at a given load, in Gbps.
    pub fn network_gbps(&self, load: f64) -> f64 {
        self.qps(load) * self.response_bytes * 8.0 / 1e9
    }

    /// Number of cores that are kept busy serving at a given load (core-seconds
    /// of demand per second), before any allocation cap.
    pub fn cpu_demand_cores(&self, load: f64, config: &ServerConfig) -> f64 {
        self.qps(load) * self.base_service_time_s(config)
    }

    /// "Enough cores to satisfy the SLO at this load": the allocation used by
    /// the characterization experiments (§3.2), sized for a target utilization
    /// with a small safety margin.
    pub fn cores_needed(&self, load: f64, config: &ServerConfig) -> usize {
        let demand = self.cpu_demand_cores(load, config) / self.sizing_utilization;
        (demand.ceil() as usize).clamp(self.min_cores, config.total_cores())
    }

    /// The resource demand this workload contributes for a measurement
    /// window, given its load and the cache capacity it currently enjoys.
    pub fn demand(
        &self,
        load: f64,
        allocated_cores: usize,
        cache_mb: f64,
        config: &ServerConfig,
    ) -> ResourceDemand {
        let deficit = self.cache_deficit(load, cache_mb, config);
        ResourceDemand {
            lc_active_cores: self.cpu_demand_cores(load, config).min(allocated_cores as f64),
            lc_compute_activity: self.compute_activity,
            lc_dram_gbps: self.dram_gbps(load, deficit),
            lc_llc_footprint_mb: self.footprint_mb(load, config),
            lc_net_gbps: self.network_gbps(load),
            ..ResourceDemand::default()
        }
    }

    /// Mean per-request service time under the effective resources of a
    /// window, in seconds.
    pub fn service_time_s(
        &self,
        load: f64,
        outcome: &ContentionOutcome,
        config: &ServerConfig,
    ) -> f64 {
        let freq_scale = if outcome.lc_freq_ghz > 0.0 {
            config.nominal_freq_ghz / outcome.lc_freq_ghz
        } else {
            1.0
        };
        let compute = self.core_time_s * freq_scale * outcome.smt_slowdown;
        let deficit = self.cache_deficit(load, outcome.lc_cache_mb, config);
        let bytes = self.dram_bytes_base + self.dram_bytes_capacity * deficit;
        let stall = self.memory_stall_s(bytes, outcome.mem_latency_multiplier, config);
        compute + stall
    }

    /// Simulates one measurement window: `requests` arrivals at the offered
    /// load are served by `serving_cores` cores under the effective resources
    /// in `outcome`, and each response additionally experiences the window's
    /// network transmit delay plus an optional per-request extra delay
    /// (used for the OS-only baseline's scheduling interference).
    ///
    /// Returns the latency distribution and its SLO-percentile tail.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_window(
        &self,
        rng: &mut SimRng,
        load: f64,
        serving_cores: usize,
        outcome: &ContentionOutcome,
        config: &ServerConfig,
        requests: usize,
        mut extra_delay: Option<&mut dyn FnMut(&mut SimRng) -> f64>,
    ) -> WindowResult {
        let qps = self.qps(load);
        let serving_cores = serving_cores.max(1);
        let mean_service = self.service_time_s(load, outcome, config);
        let cov = self.service_cov;
        let queue = MultiServerQueue::new(serving_cores);
        let base = queue.run(rng, qps, requests, |r| r.lognormal(mean_service, cov));

        let mut latencies = LatencyRecorder::with_capacity(base.len());
        for &sample in base.samples() {
            let extra = match extra_delay.as_deref_mut() {
                Some(f) => f(rng),
                None => 0.0,
            };
            latencies.record(sample + outcome.lc_net_extra_delay_s + extra);
        }
        let tail = latencies.quantile(self.slo.percentile);
        WindowResult {
            mean_latency_s: latencies.mean(),
            normalized_tail: self.slo.normalized(tail),
            tail_latency_s: tail,
            latencies,
            offered_load: load,
            qps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::{Server, ServerConfig};

    fn config() -> ServerConfig {
        ServerConfig::default_haswell()
    }

    fn uncontended_outcome(server: &Server, lc: &LcWorkload, load: f64) -> ContentionOutcome {
        let cache = server.cache_split(lc.footprint_mb(load, server.config()), 0.0);
        let demand = lc.demand(load, server.config().total_cores(), cache.lc_mb, server.config());
        server.evaluate(&demand)
    }

    #[test]
    fn profiles_match_paper_descriptions() {
        let ws = LcWorkload::websearch();
        let ml = LcWorkload::ml_cluster();
        let kv = LcWorkload::memkeyval();
        // SLOs: tens of ms at 99%/95% for websearch/ml_cluster, hundreds of us for memkeyval.
        assert!(ws.slo().target_s >= 0.010 && ws.slo().target_s <= 0.060);
        assert_eq!(ws.slo().percentile, 0.99);
        assert!(ml.slo().target_s >= 0.010 && ml.slo().target_s <= 0.060);
        assert_eq!(ml.slo().percentile, 0.95);
        assert!(kv.slo().target_s < 0.001);
        // memkeyval serves hundreds of thousands of QPS.
        assert!(kv.peak_qps() > 100_000.0);
        // DRAM bandwidth at peak load: websearch ~40%, ml_cluster ~60%, memkeyval ~20% of 120 GB/s.
        let cfg = config();
        let peak = cfg.dram_peak_gbps();
        assert!((ws.dram_gbps(1.0, 0.0) / peak - 0.40).abs() < 0.05);
        assert!((ml.dram_gbps(1.0, 0.0) / peak - 0.60).abs() < 0.07);
        assert!((kv.dram_gbps(1.0, 0.0) / peak - 0.20).abs() < 0.05);
        // memkeyval is network-bound at peak (well over half the 10 Gbps link).
        assert!(kv.network_gbps(1.0) > 6.0);
        // websearch and ml_cluster are not.
        assert!(ws.network_gbps(1.0) < 1.0);
        assert!(ml.network_gbps(1.0) < 1.0);
    }

    #[test]
    fn footprint_grows_with_load() {
        let cfg = config();
        for lc in LcWorkload::all() {
            assert!(lc.footprint_mb(0.9, &cfg) > lc.footprint_mb(0.1, &cfg));
        }
    }

    #[test]
    fn cache_deficit_behaviour() {
        let cfg = config();
        let ws = LcWorkload::websearch();
        assert_eq!(ws.cache_deficit(0.5, 1_000.0, &cfg), 0.0);
        assert!(ws.cache_deficit(0.5, 1.0, &cfg) > 0.8);
        assert!(ws.cache_deficit(0.5, 0.0, &cfg) <= 1.0);
    }

    #[test]
    fn cores_needed_is_monotone_and_bounded() {
        let cfg = config();
        for lc in LcWorkload::all() {
            let mut prev = 0;
            for load in [0.05, 0.25, 0.5, 0.75, 0.95] {
                let cores = lc.cores_needed(load, &cfg);
                assert!(cores >= prev, "{} cores decreased with load", lc.name());
                assert!(cores >= 2 && cores <= cfg.total_cores());
                prev = cores;
            }
            // At full load the service needs most of the machine.
            assert!(lc.cores_needed(1.0, &cfg) > cfg.total_cores() * 3 / 4);
        }
    }

    #[test]
    fn peak_load_fits_on_the_machine() {
        let cfg = config();
        for lc in LcWorkload::all() {
            let demand = lc.cpu_demand_cores(1.0, &cfg);
            assert!(
                demand < cfg.total_cores() as f64 * 0.92,
                "{} needs {demand:.1} cores at peak",
                lc.name()
            );
        }
    }

    #[test]
    fn unloaded_latency_meets_slo_with_room_to_spare() {
        let cfg = config();
        let server = Server::new(cfg.clone());
        let mut rng = SimRng::new(1);
        for lc in LcWorkload::all() {
            let out = uncontended_outcome(&server, &lc, 0.3);
            let result =
                lc.simulate_window(&mut rng, 0.3, cfg.total_cores(), &out, &cfg, 4000, None);
            assert!(
                result.normalized_tail < 0.85,
                "{} at 30% load on the whole machine is at {:.0}% of SLO",
                lc.name(),
                result.normalized_tail * 100.0
            );
        }
    }

    #[test]
    fn saturating_memory_latency_violates_slo() {
        let cfg = config();
        let server = Server::new(cfg.clone());
        let mut rng = SimRng::new(2);
        let ws = LcWorkload::websearch();
        let mut out = uncontended_outcome(&server, &ws, 0.4);
        out.mem_latency_multiplier = 12.0;
        let cores = ws.cores_needed(0.4, &cfg);
        let result = ws.simulate_window(&mut rng, 0.4, cores, &out, &cfg, 4000, None);
        assert!(result.normalized_tail > 1.5, "got {:.2}", result.normalized_tail);
    }

    #[test]
    fn network_delay_is_added_to_every_response() {
        let cfg = config();
        let server = Server::new(cfg.clone());
        let mut rng = SimRng::new(3);
        let kv = LcWorkload::memkeyval();
        let mut out = uncontended_outcome(&server, &kv, 0.3);
        out.lc_net_extra_delay_s = 0.004;
        let cores = kv.cores_needed(0.3, &cfg);
        let result = kv.simulate_window(&mut rng, 0.3, cores, &out, &cfg, 3000, None);
        // 4 ms of network delay on a 500 us SLO is a massive violation.
        assert!(result.normalized_tail > 3.0);
    }

    #[test]
    fn extra_delay_hook_is_applied() {
        let cfg = config();
        let server = Server::new(cfg.clone());
        let mut rng = SimRng::new(4);
        let ws = LcWorkload::websearch();
        let out = uncontended_outcome(&server, &ws, 0.2);
        let cores = ws.cores_needed(0.2, &cfg);
        let mut add = |_: &mut SimRng| 0.050;
        let with = ws.simulate_window(&mut rng, 0.2, cores, &out, &cfg, 2000, Some(&mut add));
        assert!(with.normalized_tail > 2.0);
    }

    #[test]
    fn capacity_scaling_scales_qps_and_core_demand() {
        let cfg = config();
        let ws = LcWorkload::websearch();
        let half = ws.scaled_to_capacity(0.5);
        assert!((half.peak_qps() - ws.peak_qps() * 0.5).abs() < 1e-9);
        assert!((half.qps(0.8) - ws.qps(0.8) * 0.5).abs() < 1e-9);
        // Core demand at the same load fraction halves with the traffic.
        let full_demand = ws.cpu_demand_cores(0.6, &cfg);
        let half_demand = half.cpu_demand_cores(0.6, &cfg);
        assert!((half_demand - full_demand * 0.5).abs() < 1e-9);
        // The SLO itself is unchanged: it is a property of the service.
        assert_eq!(half.slo(), ws.slo());
    }

    #[test]
    #[should_panic(expected = "capacity ratio")]
    fn capacity_scaling_rejects_nonpositive_ratio() {
        LcWorkload::websearch().scaled_to_capacity(0.0);
    }

    #[test]
    fn window_result_is_deterministic_for_a_seed() {
        let cfg = config();
        let server = Server::new(cfg.clone());
        let ws = LcWorkload::websearch();
        let out = uncontended_outcome(&server, &ws, 0.5);
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            ws.simulate_window(&mut rng, 0.5, 20, &out, &cfg, 3000, None).tail_latency_s
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
