//! Load traces.
//!
//! The cluster experiment (Figure 8) replays a 12-hour trace that captures
//! the part of the daily diurnal pattern where websearch is not fully loaded
//! and colocation has high potential: load swings between roughly 20% and
//! 90% of peak.  The production trace is not available, so [`DiurnalTrace`]
//! generates a synthetic trace with the same shape — a smooth diurnal swing
//! plus bounded high-frequency noise — deterministically from a seed.

use heracles_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A synthetic diurnal load trace.
///
/// # Example
///
/// ```
/// use heracles_workloads::DiurnalTrace;
/// use heracles_sim::SimTime;
/// let trace = DiurnalTrace::websearch_12h(42);
/// let load = trace.load_at(SimTime::from_secs(6 * 3600));
/// assert!(load >= trace.min_load() - 0.05 && load <= trace.max_load() + 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalTrace {
    duration: SimDuration,
    min_load: f64,
    max_load: f64,
    noise_amplitude: f64,
    /// Pre-sampled smooth noise offsets, one per noise interval.
    noise: Vec<f64>,
    noise_interval: SimDuration,
}

impl DiurnalTrace {
    /// The 12-hour websearch trace used by the cluster experiment: load
    /// rises from ~20% to ~90% and falls back, with ±3% noise.
    pub fn websearch_12h(seed: u64) -> Self {
        Self::new(SimDuration::from_secs(12 * 3600), 0.20, 0.90, 0.03, seed)
    }

    /// Creates a trace spanning `duration` with load varying smoothly between
    /// `min_load` and `max_load`, plus uniform noise of ±`noise_amplitude`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not `0 <= min <= max <= 1` or the duration is
    /// zero.
    pub fn new(
        duration: SimDuration,
        min_load: f64,
        max_load: f64,
        noise_amplitude: f64,
        seed: u64,
    ) -> Self {
        assert!(!duration.is_zero(), "trace duration must be positive");
        assert!(
            (0.0..=1.0).contains(&min_load)
                && (0.0..=1.0).contains(&max_load)
                && min_load <= max_load,
            "load bounds must satisfy 0 <= min <= max <= 1"
        );
        let noise_interval = SimDuration::from_secs(300);
        let intervals = (duration.as_secs_f64() / noise_interval.as_secs_f64()).ceil() as usize + 2;
        let mut rng = SimRng::new(seed).fork(0xD1);
        let noise = (0..intervals).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
        DiurnalTrace { duration, min_load, max_load, noise_amplitude, noise, noise_interval }
    }

    /// Total duration of the trace.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The lower bound of the diurnal swing.
    pub fn min_load(&self) -> f64 {
        self.min_load
    }

    /// The upper bound of the diurnal swing.
    pub fn max_load(&self) -> f64 {
        self.max_load
    }

    /// The load fraction at a given time into the trace.
    ///
    /// The diurnal component is half a sine period over the trace duration
    /// (low → high → low), so a 12-hour trace captures the rising and falling
    /// side of a day.  Values are clamped to `[0, 1]`.
    pub fn load_at(&self, time: SimTime) -> f64 {
        let t = time.as_secs_f64().min(self.duration.as_secs_f64());
        let phase = t / self.duration.as_secs_f64();
        let mid = (self.min_load + self.max_load) / 2.0;
        let amp = (self.max_load - self.min_load) / 2.0;
        let diurnal = mid - amp * (2.0 * std::f64::consts::PI * phase).cos();
        let idx = (t / self.noise_interval.as_secs_f64()) as usize;
        let noise = self.noise_amplitude * self.noise.get(idx).copied().unwrap_or(0.0);
        (diurnal + noise).clamp(0.0, 1.0)
    }

    /// Samples the trace every `step`, returning `(time, load)` pairs.
    pub fn samples(&self, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "sampling step must be positive");
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + self.duration;
        while t <= end {
            out.push((t, self.load_at(t)));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_hour_trace_spans_twenty_to_ninety_percent() {
        let trace = DiurnalTrace::websearch_12h(7);
        let samples = trace.samples(SimDuration::from_secs(60));
        let min = samples.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
        let max = samples.iter().map(|(_, l)| *l).fold(0.0, f64::max);
        assert!((0.15..=0.30).contains(&min), "min {min}");
        assert!((0.80..=0.95).contains(&max), "max {max}");
    }

    #[test]
    fn trace_rises_then_falls() {
        let trace = DiurnalTrace::websearch_12h(7);
        let start = trace.load_at(SimTime::from_secs(600));
        let middle = trace.load_at(SimTime::from_secs(6 * 3600));
        let end = trace.load_at(SimTime::from_secs(12 * 3600 - 600));
        assert!(middle > start + 0.3);
        assert!(middle > end + 0.3);
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = DiurnalTrace::websearch_12h(3);
        let b = DiurnalTrace::websearch_12h(3);
        let c = DiurnalTrace::websearch_12h(4);
        let t = SimTime::from_secs(4321);
        assert_eq!(a.load_at(t), b.load_at(t));
        assert_ne!(a.load_at(t), c.load_at(t));
    }

    #[test]
    fn loads_are_always_valid_fractions() {
        let trace = DiurnalTrace::new(SimDuration::from_secs(3600), 0.0, 1.0, 0.2, 9);
        for (_, load) in trace.samples(SimDuration::from_secs(30)) {
            assert!((0.0..=1.0).contains(&load));
        }
    }

    #[test]
    fn times_beyond_the_trace_are_clamped() {
        let trace = DiurnalTrace::websearch_12h(1);
        let end = trace.load_at(SimTime::from_secs(12 * 3600));
        let beyond = trace.load_at(SimTime::from_secs(40 * 3600));
        assert_eq!(end, beyond);
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_panic() {
        let _ = DiurnalTrace::new(SimDuration::from_secs(10), 0.9, 0.2, 0.0, 1);
    }

    #[test]
    #[should_panic]
    fn zero_duration_panics() {
        let _ = DiurnalTrace::new(SimDuration::ZERO, 0.1, 0.9, 0.0, 1);
    }
}
