//! A static, load-independent partitioning of the server.
//!
//! The paper's interference analysis (§3.3) concludes that any static policy
//! is either too conservative (leaving utilization on the table) or overly
//! optimistic (causing SLO violations as load changes).  This policy gives
//! BE tasks a fixed fraction of the cores, cache ways and network bandwidth,
//! never adapting, so the ablation benchmarks can quantify that trade-off.

use heracles_core::{ColocationPolicy, Measurements};
use heracles_hw::Server;
use heracles_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A fixed split of the machine between the LC workload and BE tasks.
///
/// # Example
///
/// ```
/// use heracles_baselines::StaticPartition;
/// use heracles_core::ColocationPolicy;
/// use heracles_hw::{Server, ServerConfig};
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut policy = StaticPartition::half_and_half();
/// policy.init(&mut server);
/// assert_eq!(server.allocations().be_cores(), 18);
/// assert!(server.allocations().cat_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticPartition {
    /// Fraction of physical cores given to BE tasks.
    pub be_core_fraction: f64,
    /// Fraction of LLC ways given to BE tasks.
    pub be_llc_fraction: f64,
    /// Fraction of the NIC line rate BE tasks may use.
    pub be_net_fraction: f64,
    /// DVFS cap applied to BE cores, in GHz (None = uncapped).
    pub be_freq_cap_ghz: Option<f64>,
}

impl StaticPartition {
    /// An even split of cores and cache, 30% of the link, no DVFS cap.
    pub fn half_and_half() -> Self {
        StaticPartition {
            be_core_fraction: 0.5,
            be_llc_fraction: 0.5,
            be_net_fraction: 0.3,
            be_freq_cap_ghz: None,
        }
    }

    /// A conservative split: BE gets a quarter of the cores and cache, 10% of
    /// the link, and is pinned at a low frequency.
    pub fn conservative() -> Self {
        StaticPartition {
            be_core_fraction: 0.25,
            be_llc_fraction: 0.25,
            be_net_fraction: 0.10,
            be_freq_cap_ghz: Some(1.5),
        }
    }

    /// Creates a custom split.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`.
    pub fn new(be_core_fraction: f64, be_llc_fraction: f64, be_net_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&be_core_fraction)
                && (0.0..=1.0).contains(&be_llc_fraction)
                && (0.0..=1.0).contains(&be_net_fraction),
            "fractions must be in [0, 1]"
        );
        StaticPartition {
            be_core_fraction,
            be_llc_fraction,
            be_net_fraction,
            be_freq_cap_ghz: None,
        }
    }
}

impl ColocationPolicy for StaticPartition {
    fn name(&self) -> &str {
        "static-partition"
    }

    fn init(&mut self, server: &mut Server) {
        let total_cores = server.topology().total_cores();
        let total_ways = server.config().llc_ways;
        let link = server.config().nic_gbps;
        let be_cores = ((total_cores as f64 * self.be_core_fraction).round() as usize)
            .clamp(0, total_cores.saturating_sub(1));
        let be_ways =
            ((total_ways as f64 * self.be_llc_fraction).round() as usize).clamp(1, total_ways - 1);
        let alloc = server.allocations_mut();
        alloc.set_be_shares_lc_cores(false);
        alloc.set_lc_cores(total_cores - be_cores);
        alloc.set_be_cores(be_cores);
        alloc.set_cat(total_ways - be_ways, be_ways);
        alloc.set_be_freq_cap_ghz(self.be_freq_cap_ghz);
        alloc.set_be_net_ceil_gbps(Some(link * self.be_net_fraction));
    }

    fn tick(&mut self, _now: SimTime, _server: &mut Server, _measurements: &Measurements) {
        // Static by definition.
    }

    fn be_enabled(&self) -> bool {
        self.be_core_fraction > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    #[test]
    fn half_and_half_splits_evenly() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut policy = StaticPartition::half_and_half();
        policy.init(&mut server);
        let alloc = server.allocations();
        assert_eq!(alloc.lc_cores(), 18);
        assert_eq!(alloc.be_cores(), 18);
        assert_eq!(alloc.lc_ways(), 10);
        assert_eq!(alloc.be_ways(), 10);
        assert_eq!(alloc.be_net_ceil_gbps(), Some(3.0));
    }

    #[test]
    fn conservative_caps_be_frequency() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut policy = StaticPartition::conservative();
        policy.init(&mut server);
        assert_eq!(server.allocations().be_freq_cap_ghz(), Some(1.5));
        assert_eq!(server.allocations().be_cores(), 9);
    }

    #[test]
    fn zero_be_fraction_disables_be() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut policy = StaticPartition::new(0.0, 0.1, 0.1);
        policy.init(&mut server);
        assert_eq!(server.allocations().be_cores(), 0);
        assert!(!policy.be_enabled());
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_panics() {
        let _ = StaticPartition::new(1.5, 0.5, 0.5);
    }

    #[test]
    fn allocation_never_changes_at_runtime() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut policy = StaticPartition::half_and_half();
        policy.init(&mut server);
        let before = server.allocations().clone();
        for t in 0..100 {
            policy.tick(SimTime::from_secs(t), &mut server, &Measurements::default());
        }
        assert_eq!(*server.allocations(), before);
    }
}
