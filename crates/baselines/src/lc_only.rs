//! The no-colocation baseline: the LC workload owns the whole machine.

use heracles_core::{ColocationPolicy, Measurements};
use heracles_hw::Server;
use heracles_sim::SimTime;

/// A policy that never runs BE tasks.
///
/// # Example
///
/// ```
/// use heracles_baselines::LcOnly;
/// use heracles_core::ColocationPolicy;
/// use heracles_hw::{Server, ServerConfig};
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut policy = LcOnly::new();
/// policy.init(&mut server);
/// assert_eq!(server.allocations().be_cores(), 0);
/// assert!(!policy.be_enabled());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcOnly;

impl LcOnly {
    /// Creates the policy.
    pub fn new() -> Self {
        LcOnly
    }
}

impl ColocationPolicy for LcOnly {
    fn name(&self) -> &str {
        "lc-only"
    }

    fn init(&mut self, server: &mut Server) {
        let total = server.topology().total_cores();
        let alloc = server.allocations_mut();
        alloc.set_be_shares_lc_cores(false);
        alloc.set_lc_cores(total);
        alloc.set_be_cores(0);
        alloc.clear_cat();
        alloc.set_be_freq_cap_ghz(None);
        alloc.set_be_net_ceil_gbps(None);
    }

    fn tick(&mut self, _now: SimTime, _server: &mut Server, _measurements: &Measurements) {}

    fn be_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    #[test]
    fn gives_everything_to_the_lc_workload() {
        let mut server = Server::new(ServerConfig::default_haswell());
        // Start from a dirty allocation.
        server.allocations_mut().set_lc_cores(10);
        server.allocations_mut().set_be_cores(20);
        server.allocations_mut().set_cat(10, 10);
        let mut policy = LcOnly::new();
        policy.init(&mut server);
        assert_eq!(server.allocations().lc_cores(), 36);
        assert_eq!(server.allocations().be_cores(), 0);
        assert!(!server.allocations().cat_enabled());
    }

    #[test]
    fn tick_changes_nothing() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut policy = LcOnly::new();
        policy.init(&mut server);
        let before = server.allocations().clone();
        policy.tick(SimTime::from_secs(100), &mut server, &Measurements::default());
        assert_eq!(*server.allocations(), before);
    }
}
