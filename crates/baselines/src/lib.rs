//! Baseline colocation policies the paper compares against (implicitly or
//! explicitly):
//!
//! * [`LcOnly`] — no colocation at all: the LC workload owns the whole
//!   server.  This is the "baseline" series in Figures 4–8 and the reference
//!   point for Effective Machine Utilization.
//! * [`OsOnly`] — colocation with nothing but OS-level isolation: both
//!   workloads run in containers, the BE task gets a very low CFS share, and
//!   no pinning, CAT, DVFS or traffic shaping is used.  This reproduces the
//!   `brain` rows of Figure 1, which motivate the need for stronger
//!   isolation.
//! * [`StaticPartition`] — a fixed, load-independent split of cores, cache
//!   ways and network bandwidth.  The paper argues (§3.3) that any static
//!   policy is either too conservative or causes SLO violations; this policy
//!   lets the ablation benchmarks quantify that.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lc_only;
pub mod os_only;
pub mod static_partition;

pub use lc_only::LcOnly;
pub use os_only::OsOnly;
pub use static_partition::StaticPartition;
