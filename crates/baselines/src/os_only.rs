//! The OS-only isolation baseline: CFS shares, nothing else.
//!
//! This is the configuration the paper uses to show that existing OS
//! mechanisms are insufficient (§3.2, §3.3): the LC workload and the BE task
//! run in two containers, the BE task gets a very low CFS share, and both may
//! run on any core or HyperThread.  No CAT, no DVFS caps, no traffic shaping.

use heracles_core::{ColocationPolicy, Measurements};
use heracles_hw::Server;
use heracles_isolation::CfsShares;
use heracles_sim::SimTime;

/// A policy that colocates BE tasks with nothing but a low CFS share.
///
/// # Example
///
/// ```
/// use heracles_baselines::OsOnly;
/// use heracles_core::ColocationPolicy;
/// use heracles_hw::{Server, ServerConfig};
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut policy = OsOnly::new();
/// policy.init(&mut server);
/// assert!(server.allocations().be_shares_lc_cores());
/// assert!(policy.be_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsOnly {
    shares: CfsShares,
    be_threads: usize,
}

impl OsOnly {
    /// Creates the baseline with the characterization's share weights and the
    /// BE task allowed on every core.
    pub fn new() -> Self {
        OsOnly { shares: CfsShares::characterization_default(), be_threads: usize::MAX }
    }

    /// Creates the baseline with explicit share weights and BE thread count.
    pub fn with_shares(shares: CfsShares, be_threads: usize) -> Self {
        OsOnly { shares, be_threads }
    }

    /// The CFS share configuration.
    pub fn shares(&self) -> CfsShares {
        self.shares
    }
}

impl Default for OsOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl ColocationPolicy for OsOnly {
    fn name(&self) -> &str {
        "os-only"
    }

    fn init(&mut self, server: &mut Server) {
        let threads = self.be_threads.min(server.topology().total_cores());
        self.shares.configure(server, threads);
    }

    fn tick(&mut self, _now: SimTime, _server: &mut Server, _measurements: &Measurements) {
        // CFS needs no runtime decisions from user space; the (lack of)
        // isolation is entirely static.
    }

    fn be_enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    #[test]
    fn init_removes_all_hardware_isolation() {
        let mut server = Server::new(ServerConfig::default_haswell());
        server.allocations_mut().set_cat(12, 8);
        server.allocations_mut().set_be_freq_cap_ghz(Some(1.5));
        server.allocations_mut().set_be_net_ceil_gbps(Some(1.0));
        let mut policy = OsOnly::new();
        policy.init(&mut server);
        let alloc = server.allocations();
        assert!(alloc.be_shares_lc_cores());
        assert!(!alloc.cat_enabled());
        assert_eq!(alloc.be_freq_cap_ghz(), None);
        assert_eq!(alloc.be_net_ceil_gbps(), None);
        assert_eq!(alloc.be_cores(), 36);
    }

    #[test]
    fn custom_thread_count_is_respected() {
        let mut server = Server::new(ServerConfig::default_haswell());
        let mut policy = OsOnly::with_shares(CfsShares::new(1024, 2), 8);
        policy.init(&mut server);
        assert_eq!(server.allocations().be_cores(), 8);
    }

    #[test]
    fn lc_retains_nearly_all_cpu_time_by_shares() {
        let policy = OsOnly::new();
        assert!(policy.shares().lc_time_fraction() > 0.99);
    }
}
