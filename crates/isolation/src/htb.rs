//! Network isolation via Linux traffic control (HTB qdisc).
//!
//! Heracles shapes only the *outgoing* traffic of the BE class: an HTB class
//! with a `ceil` equal to the bandwidth the controller grants it.  The LC
//! class is never limited.  New ceilings take effect in well under a second.

use heracles_hw::Server;
use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::error::IsolationError;

/// The HTB egress shaper for the best-effort traffic class.
///
/// # Example
///
/// ```
/// use heracles_hw::{Server, ServerConfig};
/// use heracles_isolation::HtbShaper;
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut htb = HtbShaper::new(&server);
/// let ceil = htb.apply_heracles_policy(&mut server, 6.0).unwrap();
/// // LinkRate - LCBandwidth - max(0.05 * LinkRate, 0.10 * LCBandwidth)
/// assert!((ceil - 3.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HtbShaper {
    link_gbps: f64,
    apply_latency: SimDuration,
    updates: u64,
}

impl HtbShaper {
    /// Creates the shaper for a server's NIC.
    pub fn new(server: &Server) -> Self {
        HtbShaper {
            link_gbps: server.config().nic_gbps,
            apply_latency: SimDuration::from_millis(200),
            updates: 0,
        }
    }

    /// How long a ceiling update takes to settle.
    pub fn apply_latency(&self) -> SimDuration {
        self.apply_latency
    }

    /// Number of ceiling updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The NIC line rate in Gbps.
    pub fn link_gbps(&self) -> f64 {
        self.link_gbps
    }

    /// Sets (or clears) the BE egress ceiling.
    ///
    /// # Errors
    ///
    /// Returns [`IsolationError::InvalidBandwidth`] if the ceiling is negative
    /// or exceeds the line rate.
    pub fn set_be_ceil_gbps(
        &mut self,
        server: &mut Server,
        ceil: Option<f64>,
    ) -> Result<(), IsolationError> {
        if let Some(gbps) = ceil {
            if !(0.0..=self.link_gbps).contains(&gbps) {
                return Err(IsolationError::InvalidBandwidth {
                    requested_gbps: gbps,
                    link_gbps: self.link_gbps,
                });
            }
        }
        server.allocations_mut().set_be_net_ceil_gbps(ceil);
        self.updates += 1;
        Ok(())
    }

    /// The BE ceiling Heracles' network sub-controller would set for a given
    /// measured LC transmit bandwidth (Algorithm 4 of the paper):
    ///
    /// `LinkRate − LCBandwidth − max(0.05·LinkRate, 0.10·LCBandwidth)`
    ///
    /// clamped to `[0, LinkRate]`.
    pub fn heracles_ceiling(&self, lc_tx_gbps: f64) -> f64 {
        let headroom = (0.05 * self.link_gbps).max(0.10 * lc_tx_gbps);
        (self.link_gbps - lc_tx_gbps - headroom).clamp(0.0, self.link_gbps)
    }

    /// Computes and applies the Heracles ceiling, returning the value set.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the computed ceiling is always in range.
    pub fn apply_heracles_policy(
        &mut self,
        server: &mut Server,
        lc_tx_gbps: f64,
    ) -> Result<f64, IsolationError> {
        let ceil = self.heracles_ceiling(lc_tx_gbps);
        self.set_be_ceil_gbps(server, Some(ceil))?;
        Ok(ceil)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    fn server() -> Server {
        Server::new(ServerConfig::default_haswell())
    }

    #[test]
    fn ceiling_formula_matches_algorithm_4() {
        let s = server();
        let htb = HtbShaper::new(&s);
        // Low LC bandwidth: the 5%-of-link headroom dominates.
        assert!((htb.heracles_ceiling(1.0) - (10.0 - 1.0 - 0.5)).abs() < 1e-9);
        // High LC bandwidth: the 10%-of-LC headroom dominates.
        assert!((htb.heracles_ceiling(8.0) - (10.0 - 8.0 - 0.8)).abs() < 1e-9);
        // Saturated LC traffic: BE gets nothing (clamped at zero).
        assert_eq!(htb.heracles_ceiling(9.9), 0.0);
    }

    #[test]
    fn out_of_range_ceilings_rejected() {
        let mut s = server();
        let mut htb = HtbShaper::new(&s);
        assert!(htb.set_be_ceil_gbps(&mut s, Some(-1.0)).is_err());
        assert!(htb.set_be_ceil_gbps(&mut s, Some(99.0)).is_err());
        assert!(htb.set_be_ceil_gbps(&mut s, Some(5.0)).is_ok());
        assert_eq!(s.allocations().be_net_ceil_gbps(), Some(5.0));
    }

    #[test]
    fn applying_policy_updates_the_server() {
        let mut s = server();
        let mut htb = HtbShaper::new(&s);
        let ceil = htb.apply_heracles_policy(&mut s, 4.0).unwrap();
        assert_eq!(s.allocations().be_net_ceil_gbps(), Some(ceil));
        assert_eq!(htb.updates(), 1);
    }

    #[test]
    fn clearing_the_ceiling() {
        let mut s = server();
        let mut htb = HtbShaper::new(&s);
        htb.set_be_ceil_gbps(&mut s, Some(2.0)).unwrap();
        htb.set_be_ceil_gbps(&mut s, None).unwrap();
        assert_eq!(s.allocations().be_net_ceil_gbps(), None);
    }

    #[test]
    fn apply_latency_is_sub_second() {
        let s = server();
        assert!(HtbShaper::new(&s).apply_latency().as_secs_f64() < 1.0);
    }
}
