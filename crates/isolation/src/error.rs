//! Errors reported by the isolation mechanism actuators.

use std::error::Error;
use std::fmt;

/// An actuation request that the mechanism cannot satisfy.
#[derive(Debug, Clone, PartialEq)]
pub enum IsolationError {
    /// A core-count request exceeded the machine size or left a class empty.
    InvalidCoreAllocation {
        /// Requested LC core count.
        lc_cores: usize,
        /// Requested BE core count.
        be_cores: usize,
        /// Physical cores in the machine.
        total_cores: usize,
    },
    /// A CAT way split was invalid (zero ways or more ways than the LLC has).
    InvalidWaySplit {
        /// Requested LC ways.
        lc_ways: usize,
        /// Requested BE ways.
        be_ways: usize,
        /// Ways in the LLC.
        total_ways: usize,
    },
    /// A DVFS cap was outside the chip's frequency range.
    InvalidFrequency {
        /// Requested cap in GHz.
        requested_ghz: f64,
        /// Minimum supported frequency in GHz.
        min_ghz: f64,
        /// Maximum supported frequency in GHz.
        max_ghz: f64,
    },
    /// An HTB ceiling was negative or above the line rate.
    InvalidBandwidth {
        /// Requested ceiling in Gbps.
        requested_gbps: f64,
        /// NIC line rate in Gbps.
        link_gbps: f64,
    },
}

impl fmt::Display for IsolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsolationError::InvalidCoreAllocation { lc_cores, be_cores, total_cores } => write!(
                f,
                "cannot pin {lc_cores} LC + {be_cores} BE cores on a {total_cores}-core machine"
            ),
            IsolationError::InvalidWaySplit { lc_ways, be_ways, total_ways } => write!(
                f,
                "cannot partition {lc_ways} LC + {be_ways} BE ways in a {total_ways}-way LLC"
            ),
            IsolationError::InvalidFrequency { requested_ghz, min_ghz, max_ghz } => write!(
                f,
                "frequency cap {requested_ghz} GHz outside supported range [{min_ghz}, {max_ghz}] GHz"
            ),
            IsolationError::InvalidBandwidth { requested_gbps, link_gbps } => write!(
                f,
                "bandwidth ceiling {requested_gbps} Gbps outside [0, {link_gbps}] Gbps"
            ),
        }
    }
}

impl Error for IsolationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e =
            IsolationError::InvalidCoreAllocation { lc_cores: 40, be_cores: 10, total_cores: 36 };
        assert!(e.to_string().contains("36-core"));
        let e = IsolationError::InvalidWaySplit { lc_ways: 30, be_ways: 1, total_ways: 20 };
        assert!(e.to_string().contains("20-way"));
        let e = IsolationError::InvalidFrequency { requested_ghz: 9.0, min_ghz: 1.2, max_ghz: 3.3 };
        assert!(e.to_string().contains("9 GHz"));
        let e = IsolationError::InvalidBandwidth { requested_gbps: -1.0, link_gbps: 10.0 };
        assert!(e.to_string().contains("[0, 10] Gbps"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<IsolationError>();
    }
}
