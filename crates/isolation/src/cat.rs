//! LLC isolation via Intel Cache Allocation Technology (CAT).
//!
//! CAT way-partitions the shared LLC: Heracles programs one class of service
//! for the LC workload and one for all BE tasks by writing model-specific
//! registers; new partition sizes take effect within a few milliseconds.

use heracles_hw::Server;
use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::error::IsolationError;

/// The CAT way-partitioning mechanism.
///
/// # Example
///
/// ```
/// use heracles_hw::{Server, ServerConfig};
/// use heracles_isolation::CatPartitioner;
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut cat = CatPartitioner::new();
/// cat.set_ways(&mut server, 16, 4).unwrap();
/// assert_eq!(server.allocations().be_ways(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatPartitioner {
    apply_latency: SimDuration,
    msr_writes: u64,
}

impl Default for CatPartitioner {
    fn default() -> Self {
        Self::new()
    }
}

impl CatPartitioner {
    /// Creates the mechanism with the default (4 ms) application latency.
    pub fn new() -> Self {
        CatPartitioner { apply_latency: SimDuration::from_millis(4), msr_writes: 0 }
    }

    /// How long a partition change takes to become effective.
    pub fn apply_latency(&self) -> SimDuration {
        self.apply_latency
    }

    /// Number of MSR writes (partition changes) performed so far.
    pub fn msr_writes(&self) -> u64 {
        self.msr_writes
    }

    /// Programs a non-overlapping way split: `lc_ways` for the LC class and
    /// `be_ways` shared by all BE tasks.
    ///
    /// # Errors
    ///
    /// Returns [`IsolationError::InvalidWaySplit`] if either class would get
    /// zero ways or the split exceeds the LLC's way count.
    pub fn set_ways(
        &mut self,
        server: &mut Server,
        lc_ways: usize,
        be_ways: usize,
    ) -> Result<(), IsolationError> {
        let total = server.config().llc_ways;
        if lc_ways == 0 || be_ways == 0 || lc_ways + be_ways > total {
            return Err(IsolationError::InvalidWaySplit { lc_ways, be_ways, total_ways: total });
        }
        server.allocations_mut().set_cat(lc_ways, be_ways);
        self.msr_writes += 1;
        Ok(())
    }

    /// Grows the BE partition by one way (shrinking the LC partition),
    /// returning the new split, or `None` if the LC partition is already at
    /// its one-way minimum.
    pub fn grow_be_way(&mut self, server: &mut Server) -> Option<(usize, usize)> {
        let (lc, be) = self.current_split(server);
        if lc <= 1 {
            return None;
        }
        self.set_ways(server, lc - 1, be + 1).ok()?;
        Some((lc - 1, be + 1))
    }

    /// Shrinks the BE partition by one way (growing the LC partition),
    /// returning the new split, or `None` if the BE partition is already at
    /// its one-way minimum.
    pub fn shrink_be_way(&mut self, server: &mut Server) -> Option<(usize, usize)> {
        let (lc, be) = self.current_split(server);
        if be <= 1 {
            return None;
        }
        self.set_ways(server, lc + 1, be - 1).ok()?;
        Some((lc + 1, be - 1))
    }

    /// The current `(lc_ways, be_ways)` split.  When CAT is disabled the LC
    /// class notionally owns every way.
    pub fn current_split(&self, server: &Server) -> (usize, usize) {
        let alloc = server.allocations();
        if alloc.cat_enabled() {
            (alloc.lc_ways(), alloc.be_ways())
        } else {
            (server.config().llc_ways, 0)
        }
    }

    /// Disables partitioning (both classes compete for the whole LLC).
    pub fn disable(&mut self, server: &mut Server) {
        server.allocations_mut().clear_cat();
        self.msr_writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    fn server() -> Server {
        Server::new(ServerConfig::default_haswell())
    }

    #[test]
    fn set_ways_programs_partitions() {
        let mut s = server();
        let mut cat = CatPartitioner::new();
        cat.set_ways(&mut s, 15, 5).unwrap();
        assert!(s.allocations().cat_enabled());
        assert_eq!(cat.current_split(&s), (15, 5));
        assert_eq!(cat.msr_writes(), 1);
    }

    #[test]
    fn invalid_splits_are_rejected() {
        let mut s = server();
        let mut cat = CatPartitioner::new();
        assert!(cat.set_ways(&mut s, 0, 5).is_err());
        assert!(cat.set_ways(&mut s, 5, 0).is_err());
        assert!(cat.set_ways(&mut s, 19, 2).is_err());
        assert!(!s.allocations().cat_enabled());
    }

    #[test]
    fn grow_and_shrink_walk_the_split() {
        let mut s = server();
        let mut cat = CatPartitioner::new();
        cat.set_ways(&mut s, 18, 2).unwrap();
        assert_eq!(cat.grow_be_way(&mut s), Some((17, 3)));
        assert_eq!(cat.shrink_be_way(&mut s), Some((18, 2)));
        // Walk BE down to its minimum.
        assert_eq!(cat.shrink_be_way(&mut s), Some((19, 1)));
        assert_eq!(cat.shrink_be_way(&mut s), None);
    }

    #[test]
    fn grow_stops_at_lc_minimum() {
        let mut s = server();
        let mut cat = CatPartitioner::new();
        cat.set_ways(&mut s, 2, 18).unwrap();
        assert_eq!(cat.grow_be_way(&mut s), Some((1, 19)));
        assert_eq!(cat.grow_be_way(&mut s), None);
    }

    #[test]
    fn disable_restores_sharing() {
        let mut s = server();
        let mut cat = CatPartitioner::new();
        cat.set_ways(&mut s, 10, 10).unwrap();
        cat.disable(&mut s);
        assert!(!s.allocations().cat_enabled());
        assert_eq!(cat.current_split(&s), (20, 0));
    }

    #[test]
    fn apply_latency_is_a_few_ms() {
        let ms = CatPartitioner::new().apply_latency().as_millis_f64();
        assert!((1.0..=10.0).contains(&ms));
    }
}
