//! RAPL power and per-core frequency monitoring.
//!
//! The power sub-controller needs two readings each cycle: the package power
//! relative to TDP (from RAPL) and the frequency of the cores running the LC
//! workload (from the per-core frequency counters).  Both are derived from
//! the [`CounterSnapshot`] the server exposes.

use heracles_hw::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// A RAPL package-power reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReading {
    /// Package power in watts (all sockets).
    pub watts: f64,
    /// Package TDP in watts (all sockets).
    pub tdp_w: f64,
}

impl PowerReading {
    /// Power as a fraction of TDP.
    pub fn fraction_of_tdp(&self) -> f64 {
        if self.tdp_w > 0.0 {
            self.watts / self.tdp_w
        } else {
            0.0
        }
    }

    /// True if the package is operating close to its TDP (the threshold the
    /// paper's power sub-controller uses is 90%).
    pub fn near_tdp(&self, threshold: f64) -> bool {
        self.fraction_of_tdp() > threshold
    }
}

/// A per-class core-frequency reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqReading {
    /// Average frequency of LC cores in GHz.
    pub lc_ghz: f64,
    /// Average frequency of BE cores in GHz.
    pub be_ghz: f64,
}

/// Reads package power through the RAPL interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaplMonitor;

impl RaplMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        RaplMonitor
    }

    /// Reads the package power from a counter snapshot.
    pub fn read(&self, counters: &CounterSnapshot) -> PowerReading {
        PowerReading { watts: counters.package_power_w, tdp_w: counters.tdp_w }
    }
}

/// Reads per-class core frequencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreqMonitor;

impl FreqMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        FreqMonitor
    }

    /// Reads the per-class frequencies from a counter snapshot.
    pub fn read(&self, counters: &CounterSnapshot) -> FreqReading {
        FreqReading { lc_ghz: counters.lc_freq_ghz, be_ghz: counters.be_freq_ghz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> CounterSnapshot {
        CounterSnapshot {
            package_power_w: 270.0,
            tdp_w: 290.0,
            lc_freq_ghz: 2.2,
            be_freq_ghz: 1.4,
            ..CounterSnapshot::default()
        }
    }

    #[test]
    fn rapl_reading_and_threshold() {
        let r = RaplMonitor::new().read(&counters());
        assert!((r.fraction_of_tdp() - 270.0 / 290.0).abs() < 1e-12);
        assert!(r.near_tdp(0.90));
        assert!(!r.near_tdp(0.95));
    }

    #[test]
    fn zero_tdp_reads_zero_fraction() {
        let r = PowerReading { watts: 100.0, tdp_w: 0.0 };
        assert_eq!(r.fraction_of_tdp(), 0.0);
        assert!(!r.near_tdp(0.9));
    }

    #[test]
    fn freq_monitor_reports_both_classes() {
        let f = FreqMonitor::new().read(&counters());
        assert_eq!(f.lc_ghz, 2.2);
        assert_eq!(f.be_ghz, 1.4);
    }
}
