//! The four isolation mechanisms Heracles coordinates, plus the monitors and
//! the OS-only baseline mechanism.
//!
//! Each mechanism is a thin, stateful actuator over the allocation state of a
//! [`heracles_hw::Server`]:
//!
//! * [`Cpuset`] — core pinning via cgroups `cpuset` (software, tens of ms to
//!   take effect),
//! * [`CatPartitioner`] — LLC way-partitioning via Intel CAT MSRs (hardware,
//!   a few ms),
//! * [`PerCoreDvfs`] — per-core frequency caps for the best-effort cores
//!   (hardware, a few ms, 100 MHz steps),
//! * [`HtbShaper`] — egress bandwidth ceiling for the best-effort traffic
//!   class via Linux HTB qdiscs (software, sub-second),
//!
//! and the monitors the controller reads:
//!
//! * [`RaplMonitor`] — package power vs TDP,
//! * [`DramBwMonitor`] — total and per-class DRAM bandwidth,
//! * [`FreqMonitor`] — per-class core frequencies.
//!
//! [`CfsShares`] models the OS-only baseline (no pinning, CFS `shares`),
//! which the paper shows is insufficient for colocation.
//!
//! # Example
//!
//! ```
//! use heracles_hw::{Server, ServerConfig};
//! use heracles_isolation::{CatPartitioner, Cpuset, HtbShaper, PerCoreDvfs};
//!
//! let mut server = Server::new(ServerConfig::default_haswell());
//! let mut cpuset = Cpuset::new();
//! let mut cat = CatPartitioner::new();
//! let mut dvfs = PerCoreDvfs::new(&server);
//! let mut htb = HtbShaper::new(&server);
//!
//! cpuset.pin(&mut server, 28, 8).unwrap();
//! cat.set_ways(&mut server, 16, 4).unwrap();
//! dvfs.set_be_cap_ghz(&mut server, Some(1.8)).unwrap();
//! htb.set_be_ceil_gbps(&mut server, Some(2.0)).unwrap();
//! assert_eq!(server.allocations().lc_cores(), 28);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cat;
pub mod cfs;
pub mod cpuset;
pub mod dram_monitor;
pub mod dvfs;
pub mod error;
pub mod htb;
pub mod monitors;

pub use cat::CatPartitioner;
pub use cfs::CfsShares;
pub use cpuset::Cpuset;
pub use dram_monitor::{DramBwMonitor, DramBwReading};
pub use dvfs::PerCoreDvfs;
pub use error::IsolationError;
pub use htb::HtbShaper;
pub use monitors::{FreqMonitor, FreqReading, PowerReading, RaplMonitor};
