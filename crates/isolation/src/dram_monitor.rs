//! DRAM bandwidth monitoring.
//!
//! There is no commercial hardware mechanism to *limit* per-core DRAM
//! bandwidth, but the memory controllers expose counters that track total
//! bandwidth, and per-core traffic counters allow an estimate of how much of
//! it the BE tasks are responsible for.  Heracles' core & memory
//! sub-controller uses these readings (together with the offline model of the
//! LC workload's bandwidth needs) to decide when BE tasks must give back
//! cores to avoid saturating DRAM.

use heracles_hw::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// One DRAM bandwidth measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramBwReading {
    /// Total bandwidth observed at the memory controllers, in GB/s.
    pub total_gbps: f64,
    /// Estimated bandwidth of the BE tasks, in GB/s.
    pub be_gbps: f64,
    /// Estimated bandwidth of the LC workload, in GB/s.
    pub lc_gbps: f64,
    /// Peak streaming bandwidth of the machine, in GB/s.
    pub peak_gbps: f64,
}

impl DramBwReading {
    /// Total bandwidth as a fraction of peak.
    pub fn utilization(&self) -> f64 {
        if self.peak_gbps > 0.0 {
            self.total_gbps / self.peak_gbps
        } else {
            0.0
        }
    }

    /// Estimated per-core bandwidth of the BE tasks, in GB/s.
    pub fn be_gbps_per_core(&self, be_cores: usize) -> f64 {
        if be_cores == 0 {
            0.0
        } else {
            self.be_gbps / be_cores as f64
        }
    }
}

/// Tracks DRAM bandwidth readings and their derivative between measurements.
///
/// The derivative is what Algorithm 2 uses to predict whether the *next*
/// cache/core growth step would push the memory system over the limit, and to
/// roll back LLC growth that increased bandwidth pressure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramBwMonitor {
    last_total_gbps: Option<f64>,
    derivative_gbps: f64,
}

impl DramBwMonitor {
    /// Creates the monitor.
    pub fn new() -> Self {
        DramBwMonitor::default()
    }

    /// Takes a measurement from the hardware counters.
    pub fn measure(&mut self, counters: &CounterSnapshot) -> DramBwReading {
        let reading = DramBwReading {
            total_gbps: counters.dram_total_gbps,
            be_gbps: counters.dram_be_gbps,
            lc_gbps: counters.dram_lc_gbps(),
            peak_gbps: counters.dram_peak_gbps,
        };
        self.derivative_gbps = match self.last_total_gbps {
            Some(prev) => reading.total_gbps - prev,
            None => 0.0,
        };
        self.last_total_gbps = Some(reading.total_gbps);
        reading
    }

    /// Change in total bandwidth since the previous measurement, in GB/s.
    pub fn derivative_gbps(&self) -> f64 {
        self.derivative_gbps
    }

    /// Forgets past measurements (used when the controller re-enables BE
    /// tasks after a cooldown, so stale derivatives do not leak in).
    pub fn reset(&mut self) {
        *self = DramBwMonitor::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(total: f64, be: f64) -> CounterSnapshot {
        CounterSnapshot {
            dram_total_gbps: total,
            dram_be_gbps: be,
            dram_peak_gbps: 120.0,
            ..CounterSnapshot::default()
        }
    }

    #[test]
    fn reading_derives_lc_share_and_utilization() {
        let mut mon = DramBwMonitor::new();
        let r = mon.measure(&counters(90.0, 60.0));
        assert_eq!(r.lc_gbps, 30.0);
        assert!((r.utilization() - 0.75).abs() < 1e-12);
        assert!((r.be_gbps_per_core(12) - 5.0).abs() < 1e-12);
        assert_eq!(r.be_gbps_per_core(0), 0.0);
    }

    #[test]
    fn derivative_tracks_consecutive_measurements() {
        let mut mon = DramBwMonitor::new();
        mon.measure(&counters(50.0, 20.0));
        assert_eq!(mon.derivative_gbps(), 0.0);
        mon.measure(&counters(65.0, 30.0));
        assert!((mon.derivative_gbps() - 15.0).abs() < 1e-12);
        mon.measure(&counters(60.0, 30.0));
        assert!((mon.derivative_gbps() + 5.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_history() {
        let mut mon = DramBwMonitor::new();
        mon.measure(&counters(50.0, 20.0));
        mon.reset();
        mon.measure(&counters(80.0, 20.0));
        assert_eq!(mon.derivative_gbps(), 0.0);
    }

    #[test]
    fn zero_peak_reads_zero_utilization() {
        let r = DramBwReading { total_gbps: 10.0, be_gbps: 5.0, lc_gbps: 5.0, peak_gbps: 0.0 };
        assert_eq!(r.utilization(), 0.0);
    }
}
