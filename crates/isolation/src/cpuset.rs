//! Core isolation via cgroups `cpuset`.
//!
//! Heracles pins the LC workload to one set of physical cores and the BE
//! tasks to a disjoint set (the paper shows that sharing a core — even just a
//! HyperThread — between the two classes causes SLO violations).  Reassigning
//! a core is not instantaneous: Linux migrates the affected threads in tens
//! of milliseconds, which is why the core allocation is the slowest of the
//! four mechanisms.

use heracles_hw::Server;
use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::error::IsolationError;

/// The cpuset-based core partitioning mechanism.
///
/// # Example
///
/// ```
/// use heracles_hw::{Server, ServerConfig};
/// use heracles_isolation::Cpuset;
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut cpuset = Cpuset::new();
/// cpuset.pin(&mut server, 30, 6).unwrap();
/// assert_eq!(server.allocations().be_cores(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cpuset {
    migration_latency: SimDuration,
    migrations: u64,
}

impl Default for Cpuset {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpuset {
    /// Creates the mechanism with the default (30 ms) migration latency.
    pub fn new() -> Self {
        Cpuset { migration_latency: SimDuration::from_millis(30), migrations: 0 }
    }

    /// How long a core reassignment takes to become effective.
    pub fn migration_latency(&self) -> SimDuration {
        self.migration_latency
    }

    /// Total number of core-set changes applied so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Pins `lc_cores` to the LC workload and `be_cores` to BE tasks.
    ///
    /// The two sets are disjoint; any remaining cores stay idle.
    ///
    /// # Errors
    ///
    /// Returns [`IsolationError::InvalidCoreAllocation`] if the LC class would
    /// receive no cores or the total exceeds the machine size.
    pub fn pin(
        &mut self,
        server: &mut Server,
        lc_cores: usize,
        be_cores: usize,
    ) -> Result<(), IsolationError> {
        let total = server.topology().total_cores();
        if lc_cores == 0 || lc_cores + be_cores > total {
            return Err(IsolationError::InvalidCoreAllocation {
                lc_cores,
                be_cores,
                total_cores: total,
            });
        }
        let alloc = server.allocations_mut();
        alloc.set_be_shares_lc_cores(false);
        alloc.set_lc_cores(lc_cores);
        alloc.set_be_cores(be_cores);
        self.migrations += 1;
        Ok(())
    }

    /// Moves `n` cores from the BE set to the LC set (as many as are
    /// available), returning how many were actually moved.
    pub fn move_be_to_lc(&mut self, server: &mut Server, n: usize) -> usize {
        let lc = server.allocations().lc_cores();
        let be = server.allocations().be_cores();
        let moved = n.min(be);
        if moved > 0 {
            // Growing the LC set cannot fail while the BE set shrinks by the
            // same amount.
            let _ = self.pin(server, lc + moved, be - moved);
        }
        moved
    }

    /// Moves `n` cores from the LC set to the BE set, never leaving the LC
    /// workload with fewer than `min_lc` cores.  Returns how many were moved.
    pub fn move_lc_to_be(&mut self, server: &mut Server, n: usize, min_lc: usize) -> usize {
        let lc = server.allocations().lc_cores();
        let be = server.allocations().be_cores();
        let movable = lc.saturating_sub(min_lc.max(1));
        let moved = n.min(movable);
        if moved > 0 {
            let _ = self.pin(server, lc - moved, be + moved);
        }
        moved
    }

    /// Allows BE tasks to time-share the LC cores (the OS-only baseline and
    /// the HyperThread-antagonist experiment).  Heracles never calls this.
    pub fn allow_core_sharing(&mut self, server: &mut Server, be_threads: usize) {
        let alloc = server.allocations_mut();
        alloc.set_be_shares_lc_cores(true);
        alloc.set_be_cores(be_threads);
        self.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    fn server() -> Server {
        Server::new(ServerConfig::default_haswell())
    }

    #[test]
    fn pin_sets_disjoint_allocations() {
        let mut s = server();
        let mut c = Cpuset::new();
        c.pin(&mut s, 20, 16).unwrap();
        assert_eq!(s.allocations().lc_cores(), 20);
        assert_eq!(s.allocations().be_cores(), 16);
        assert_eq!(s.allocations().idle_cores(), 0);
        assert_eq!(c.migrations(), 1);
    }

    #[test]
    fn overcommitted_pin_is_rejected() {
        let mut s = server();
        let mut c = Cpuset::new();
        assert!(c.pin(&mut s, 30, 10).is_err());
        assert!(c.pin(&mut s, 0, 10).is_err());
        assert_eq!(c.migrations(), 0);
    }

    #[test]
    fn moving_cores_between_classes() {
        let mut s = server();
        let mut c = Cpuset::new();
        c.pin(&mut s, 20, 16).unwrap();
        assert_eq!(c.move_be_to_lc(&mut s, 4), 4);
        assert_eq!(s.allocations().lc_cores(), 24);
        assert_eq!(s.allocations().be_cores(), 12);
        assert_eq!(c.move_be_to_lc(&mut s, 100), 12);
        assert_eq!(s.allocations().be_cores(), 0);
    }

    #[test]
    fn lc_floor_is_respected_when_growing_be() {
        let mut s = server();
        let mut c = Cpuset::new();
        c.pin(&mut s, 10, 0).unwrap();
        assert_eq!(c.move_lc_to_be(&mut s, 100, 4), 6);
        assert_eq!(s.allocations().lc_cores(), 4);
        assert_eq!(s.allocations().be_cores(), 6);
    }

    #[test]
    fn core_sharing_flag_for_baseline() {
        let mut s = server();
        let mut c = Cpuset::new();
        c.pin(&mut s, 36, 0).unwrap();
        c.allow_core_sharing(&mut s, 36);
        assert!(s.allocations().be_shares_lc_cores());
        assert_eq!(s.allocations().be_cores(), 36);
    }

    #[test]
    fn migration_latency_is_tens_of_ms() {
        let c = Cpuset::new();
        let ms = c.migration_latency().as_millis_f64();
        assert!((10.0..=100.0).contains(&ms));
    }
}
