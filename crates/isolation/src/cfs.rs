//! The OS-only baseline: Linux CFS `shares` with no other isolation.
//!
//! The paper's characterization (§3.2, the `brain` rows of Figure 1) runs the
//! LC workload and a BE task in two containers where the BE task merely gets
//! a very low CFS share.  Both workloads may run on any core or HyperThread.
//! Even so, the BE task induces scheduling delays of many milliseconds on the
//! LC threads — CFS's wake-up and load-balancing behaviour does not protect
//! tail latency — which is why stronger isolation mechanisms are needed.
//!
//! [`CfsShares`] models that baseline: it computes the CPU-time fraction each
//! class receives from its shares, and samples the scheduling-delay spikes
//! that colocated LC requests experience.

use heracles_hw::Server;
use heracles_sim::SimRng;
use serde::{Deserialize, Serialize};

/// CFS share-based (non-)isolation between the two classes.
///
/// # Example
///
/// ```
/// use heracles_isolation::CfsShares;
/// let cfs = CfsShares::new(1024, 2);
/// assert!(cfs.lc_time_fraction() > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CfsShares {
    lc_shares: u32,
    be_shares: u32,
}

impl CfsShares {
    /// Creates the baseline with the given share weights (the paper gives the
    /// BE task "very few shares" relative to the LC workload).
    pub fn new(lc_shares: u32, be_shares: u32) -> Self {
        CfsShares { lc_shares: lc_shares.max(1), be_shares }
    }

    /// The default weights used in the characterization: 1024 shares for the
    /// LC workload, 2 for the BE task.
    pub fn characterization_default() -> Self {
        CfsShares::new(1024, 2)
    }

    /// Fraction of CPU time the LC class receives under contention.
    pub fn lc_time_fraction(&self) -> f64 {
        self.lc_shares as f64 / (self.lc_shares + self.be_shares) as f64
    }

    /// Fraction of CPU time the BE class receives under contention.
    pub fn be_time_fraction(&self) -> f64 {
        1.0 - self.lc_time_fraction()
    }

    /// Configures a server for this baseline: no pinning (both classes may
    /// run anywhere), no CAT, no DVFS caps, no traffic shaping.
    pub fn configure(&self, server: &mut Server, be_threads: usize) {
        let total = server.topology().total_cores();
        let alloc = server.allocations_mut();
        alloc.set_lc_cores(total);
        alloc.set_be_shares_lc_cores(true);
        alloc.set_be_cores(be_threads.min(total));
        alloc.clear_cat();
        alloc.set_be_freq_cap_ghz(None);
        alloc.set_be_net_ceil_gbps(None);
    }

    /// Samples the scheduling delay a single LC request suffers when the BE
    /// task is runnable on the same cores, in seconds.
    ///
    /// Most requests are unaffected, but a fraction that grows with how busy
    /// the machine is land behind a running BE thread and wait out its
    /// timeslice (or a load-balancing interval) — delays of one to tens of
    /// milliseconds, matching the behaviour reported in the paper and in
    /// Leverich & Kozyrakis (EuroSys'14).
    pub fn scheduling_delay_s(&self, rng: &mut SimRng, be_cpu_pressure: f64) -> f64 {
        let pressure = be_cpu_pressure.clamp(0.0, 1.0);
        // Probability that this request's thread has to wait behind a BE thread.
        let p_interfered = 0.05 + 0.45 * pressure;
        if !rng.chance(p_interfered) {
            return 0.0;
        }
        // Waiting out a CFS timeslice (or several): 1–30 ms, heavier under
        // higher pressure.
        let base_ms = 1.0 + 9.0 * pressure;
        rng.lognormal(base_ms * 1e-3, 1.2)
    }
}

impl Default for CfsShares {
    fn default() -> Self {
        Self::characterization_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    #[test]
    fn share_fractions() {
        let cfs = CfsShares::new(1024, 1024);
        assert!((cfs.lc_time_fraction() - 0.5).abs() < 1e-12);
        let skewed = CfsShares::characterization_default();
        assert!(skewed.lc_time_fraction() > 0.99);
        assert!(skewed.be_time_fraction() < 0.01);
    }

    #[test]
    fn zero_lc_shares_are_clamped() {
        let cfs = CfsShares::new(0, 10);
        assert!(cfs.lc_time_fraction() > 0.0);
    }

    #[test]
    fn configure_removes_all_isolation() {
        let mut server = Server::new(ServerConfig::default_haswell());
        server.allocations_mut().set_cat(10, 10);
        server.allocations_mut().set_be_freq_cap_ghz(Some(1.5));
        CfsShares::default().configure(&mut server, 36);
        let alloc = server.allocations();
        assert!(alloc.be_shares_lc_cores());
        assert!(!alloc.cat_enabled());
        assert_eq!(alloc.be_freq_cap_ghz(), None);
        assert_eq!(alloc.be_net_ceil_gbps(), None);
        assert_eq!(alloc.lc_cores(), 36);
        assert_eq!(alloc.be_cores(), 36);
    }

    #[test]
    fn scheduling_delays_grow_with_pressure() {
        let cfs = CfsShares::default();
        let mut rng = SimRng::new(11);
        let mean = |pressure: f64, rng: &mut SimRng| {
            (0..20_000).map(|_| cfs.scheduling_delay_s(rng, pressure)).sum::<f64>() / 20_000.0
        };
        let light = mean(0.1, &mut rng);
        let heavy = mean(0.9, &mut rng);
        assert!(heavy > light, "heavy {heavy} <= light {light}");
        // Heavy pressure should induce multi-millisecond average delays.
        assert!(heavy > 2e-3);
    }

    #[test]
    fn many_requests_are_undisturbed() {
        let cfs = CfsShares::default();
        let mut rng = SimRng::new(12);
        let undisturbed =
            (0..10_000).filter(|_| cfs.scheduling_delay_s(&mut rng, 0.5) == 0.0).count();
        assert!(undisturbed > 5_000);
    }
}
