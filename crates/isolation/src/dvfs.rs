//! Power isolation via per-core DVFS.
//!
//! Heracles shifts power between the two classes by capping the frequency of
//! the cores running BE tasks: lowering the cap frees thermal headroom so the
//! LC cores can stay at (or above) their guaranteed frequency.  Frequency
//! changes step in 100 MHz increments across the whole operating range,
//! including Turbo frequencies, and take effect within a few milliseconds.

use heracles_hw::Server;
use heracles_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::error::IsolationError;

/// The per-core DVFS mechanism applied to the best-effort cores.
///
/// # Example
///
/// ```
/// use heracles_hw::{Server, ServerConfig};
/// use heracles_isolation::PerCoreDvfs;
/// let mut server = Server::new(ServerConfig::default_haswell());
/// let mut dvfs = PerCoreDvfs::new(&server);
/// dvfs.lower_be(&mut server).unwrap();
/// assert!(server.allocations().be_freq_cap_ghz().unwrap() < 3.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerCoreDvfs {
    min_ghz: f64,
    max_ghz: f64,
    step_ghz: f64,
    apply_latency: SimDuration,
    changes: u64,
}

impl PerCoreDvfs {
    /// Creates the mechanism for a server's frequency range.
    pub fn new(server: &Server) -> Self {
        let cfg = server.config();
        PerCoreDvfs {
            min_ghz: cfg.min_freq_ghz,
            max_ghz: cfg.max_turbo_freq_ghz,
            step_ghz: cfg.freq_step_ghz,
            apply_latency: SimDuration::from_millis(3),
            changes: 0,
        }
    }

    /// How long a frequency change takes to become effective.
    pub fn apply_latency(&self) -> SimDuration {
        self.apply_latency
    }

    /// Number of frequency-cap changes applied so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// The current BE frequency cap, defaulting to the maximum Turbo
    /// frequency when no cap is set.
    pub fn be_cap_ghz(&self, server: &Server) -> f64 {
        server.allocations().be_freq_cap_ghz().unwrap_or(self.max_ghz)
    }

    /// Sets (or clears) the BE frequency cap.
    ///
    /// # Errors
    ///
    /// Returns [`IsolationError::InvalidFrequency`] if the cap lies outside
    /// the chip's supported range.
    pub fn set_be_cap_ghz(
        &mut self,
        server: &mut Server,
        cap: Option<f64>,
    ) -> Result<(), IsolationError> {
        if let Some(ghz) = cap {
            if !(self.min_ghz..=self.max_ghz).contains(&ghz) {
                return Err(IsolationError::InvalidFrequency {
                    requested_ghz: ghz,
                    min_ghz: self.min_ghz,
                    max_ghz: self.max_ghz,
                });
            }
        }
        server.allocations_mut().set_be_freq_cap_ghz(cap);
        self.changes += 1;
        Ok(())
    }

    /// Lowers the BE cap by one DVFS step, returning the new cap.  The cap
    /// never goes below the chip's minimum frequency.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`set_be_cap_ghz`]
    /// (the value written is always in range).
    ///
    /// [`set_be_cap_ghz`]: PerCoreDvfs::set_be_cap_ghz
    pub fn lower_be(&mut self, server: &mut Server) -> Result<f64, IsolationError> {
        let current = self.be_cap_ghz(server);
        let next = quantize(current - self.step_ghz, self.step_ghz).max(self.min_ghz);
        self.set_be_cap_ghz(server, Some(next))?;
        Ok(next)
    }

    /// Raises the BE cap by one DVFS step, returning the new cap.  The cap
    /// never goes above the maximum Turbo frequency.
    ///
    /// # Errors
    ///
    /// Never fails in practice; see [`lower_be`](PerCoreDvfs::lower_be).
    pub fn raise_be(&mut self, server: &mut Server) -> Result<f64, IsolationError> {
        let current = self.be_cap_ghz(server);
        let next = quantize(current + self.step_ghz, self.step_ghz).min(self.max_ghz);
        self.set_be_cap_ghz(server, Some(next))?;
        Ok(next)
    }

    /// True if the BE cores are already pinned at the minimum frequency.
    pub fn be_at_minimum(&self, server: &Server) -> bool {
        (self.be_cap_ghz(server) - self.min_ghz).abs() < self.step_ghz / 2.0
    }
}

fn quantize(freq: f64, step: f64) -> f64 {
    (freq / step).round() * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_hw::ServerConfig;

    fn server() -> Server {
        Server::new(ServerConfig::default_haswell())
    }

    #[test]
    fn default_cap_is_max_turbo() {
        let s = server();
        let dvfs = PerCoreDvfs::new(&s);
        assert_eq!(dvfs.be_cap_ghz(&s), 3.3);
        assert!(!dvfs.be_at_minimum(&s));
    }

    #[test]
    fn out_of_range_caps_rejected() {
        let mut s = server();
        let mut dvfs = PerCoreDvfs::new(&s);
        assert!(dvfs.set_be_cap_ghz(&mut s, Some(0.5)).is_err());
        assert!(dvfs.set_be_cap_ghz(&mut s, Some(5.0)).is_err());
        assert!(dvfs.set_be_cap_ghz(&mut s, Some(2.0)).is_ok());
    }

    #[test]
    fn lower_walks_down_to_minimum() {
        let mut s = server();
        let mut dvfs = PerCoreDvfs::new(&s);
        let mut last = dvfs.be_cap_ghz(&s);
        for _ in 0..40 {
            let next = dvfs.lower_be(&mut s).unwrap();
            assert!(next <= last + 1e-9);
            last = next;
        }
        assert!(dvfs.be_at_minimum(&s));
        assert!((last - 1.2).abs() < 1e-9);
    }

    #[test]
    fn raise_walks_back_up_to_turbo() {
        let mut s = server();
        let mut dvfs = PerCoreDvfs::new(&s);
        dvfs.set_be_cap_ghz(&mut s, Some(1.2)).unwrap();
        for _ in 0..40 {
            dvfs.raise_be(&mut s).unwrap();
        }
        assert!((dvfs.be_cap_ghz(&s) - 3.3).abs() < 1e-9);
    }

    #[test]
    fn steps_are_on_the_100mhz_grid() {
        let mut s = server();
        let mut dvfs = PerCoreDvfs::new(&s);
        dvfs.set_be_cap_ghz(&mut s, Some(2.25)).unwrap();
        let next = dvfs.lower_be(&mut s).unwrap();
        let steps = next / 0.1;
        assert!((steps - steps.round()).abs() < 1e-9, "cap {next} not on grid");
    }

    #[test]
    fn change_counter_increments() {
        let mut s = server();
        let mut dvfs = PerCoreDvfs::new(&s);
        dvfs.lower_be(&mut s).unwrap();
        dvfs.raise_be(&mut s).unwrap();
        assert_eq!(dvfs.changes(), 2);
    }
}
