//! Edge-case unit tests for the simulation kernel's statistics and queueing
//! primitives, complementing the randomized suite in `properties.rs`:
//! empty recorders, single-sample degenerate moments, zero-duration service
//! windows, and merge identities.

use heracles_sim::{LatencyRecorder, MultiServerQueue, SimRng, StreamingStats};

#[test]
fn empty_recorder_reports_zero_for_every_quantile() {
    let mut rec = LatencyRecorder::new();
    for q in [0.0, 0.5, 0.9, 0.99, 1.0, -0.5, 2.0] {
        assert_eq!(rec.quantile(q), 0.0);
    }
    assert_eq!(rec.mean(), 0.0);
    assert_eq!(rec.max(), 0.0);
    assert!(rec.is_empty());
    assert_eq!(rec.len(), 0);
}

#[test]
fn with_capacity_recorder_starts_empty() {
    let mut rec = LatencyRecorder::with_capacity(1024);
    assert!(rec.is_empty());
    assert_eq!(rec.quantile(0.99), 0.0);
}

#[test]
fn quantile_arguments_are_clamped_to_unit_interval() {
    let mut rec = LatencyRecorder::new();
    rec.record(1.0);
    rec.record(2.0);
    rec.record(3.0);
    assert_eq!(rec.quantile(-1.0), rec.quantile(0.0));
    assert_eq!(rec.quantile(7.5), rec.quantile(1.0));
}

#[test]
fn single_sample_recorder_is_that_sample_at_every_quantile() {
    let mut rec = LatencyRecorder::new();
    rec.record(0.042);
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        assert_eq!(rec.quantile(q), 0.042);
    }
    assert_eq!(rec.mean(), 0.042);
    assert_eq!(rec.max(), 0.042);
}

#[test]
fn merging_an_empty_recorder_changes_nothing() {
    let mut rec = LatencyRecorder::new();
    rec.record(1.0);
    rec.record(2.0);
    let before = (rec.len(), rec.quantile(0.5));
    rec.merge(&LatencyRecorder::new());
    assert_eq!((rec.len(), rec.quantile(0.5)), before);
}

#[test]
fn merging_into_an_empty_recorder_copies_the_samples() {
    let mut src = LatencyRecorder::new();
    src.record(0.5);
    src.record(1.5);
    let mut dst = LatencyRecorder::new();
    dst.merge(&src);
    assert_eq!(dst.len(), 2);
    assert_eq!(dst.quantile(1.0), 1.5);
}

#[test]
fn cleared_recorder_behaves_like_a_fresh_one() {
    let mut rec = LatencyRecorder::new();
    rec.record(9.0);
    rec.clear();
    assert!(rec.is_empty());
    assert_eq!(rec.quantile(0.99), 0.0);
    rec.record(1.0);
    assert_eq!(rec.quantile(0.5), 1.0);
}

#[test]
fn all_zero_latencies_are_valid_samples() {
    // A zero-duration window: every request completes instantly.  The
    // recorder must treat 0.0 as a real sample, not as "no data".
    let mut rec = LatencyRecorder::new();
    for _ in 0..100 {
        rec.record(0.0);
    }
    assert_eq!(rec.len(), 100);
    assert_eq!(rec.quantile(0.99), 0.0);
    assert_eq!(rec.mean(), 0.0);
    assert!(!rec.is_empty());
}

#[test]
fn empty_streaming_stats_report_zero_everything() {
    let s = StreamingStats::new();
    assert_eq!(s.count(), 0);
    assert_eq!(s.mean(), 0.0);
    assert_eq!(s.variance(), 0.0);
    assert_eq!(s.std_dev(), 0.0);
    assert_eq!(s.min(), 0.0);
    assert_eq!(s.max(), 0.0);
}

#[test]
fn single_value_stream_has_zero_variance_and_equal_extremes() {
    let mut s = StreamingStats::new();
    s.push(-3.5);
    assert_eq!(s.count(), 1);
    assert_eq!(s.mean(), -3.5);
    assert_eq!(s.variance(), 0.0);
    assert_eq!(s.min(), -3.5);
    assert_eq!(s.max(), -3.5);
}

#[test]
fn streaming_stats_handle_negative_values() {
    let mut s = StreamingStats::new();
    for v in [-2.0, -1.0, 1.0, 2.0] {
        s.push(v);
    }
    assert_eq!(s.mean(), 0.0);
    assert_eq!(s.min(), -2.0);
    assert_eq!(s.max(), 2.0);
    assert!(s.variance() > 0.0);
}

#[test]
fn merging_empty_streaming_stats_is_the_identity() {
    let mut s = StreamingStats::new();
    s.push(1.0);
    s.push(3.0);
    let (mean, var, count) = (s.mean(), s.variance(), s.count());
    s.merge(&StreamingStats::new());
    assert_eq!((s.mean(), s.variance(), s.count()), (mean, var, count));

    let mut empty = StreamingStats::new();
    empty.merge(&s);
    assert_eq!((empty.mean(), empty.variance(), empty.count()), (mean, var, count));
}

#[test]
fn infinities_are_ignored_like_nans() {
    let mut s = StreamingStats::new();
    s.push(f64::INFINITY);
    s.push(f64::NEG_INFINITY);
    assert_eq!(s.count(), 0);
    s.push(5.0);
    assert_eq!(s.count(), 1);
    assert_eq!(s.max(), 5.0);
}

#[test]
fn queue_with_zero_duration_service_reports_zero_latency() {
    // Zero-length service times: no request ever waits (a server is always
    // free at `now`), so every sojourn time is exactly zero.
    let mut rng = SimRng::new(11);
    let q = MultiServerQueue::new(1);
    let mut lat = q.run(&mut rng, 1000.0, 5_000, |_| 0.0);
    assert_eq!(lat.len(), 5_000);
    assert_eq!(lat.quantile(1.0), 0.0);
    assert_eq!(lat.mean(), 0.0);
}

#[test]
fn queue_with_negative_service_samples_clamps_to_zero() {
    let mut rng = SimRng::new(12);
    let q = MultiServerQueue::new(2);
    let mut lat = q.run(&mut rng, 100.0, 1_000, |_| -0.5);
    assert_eq!(lat.len(), 1_000);
    assert_eq!(lat.quantile(1.0), 0.0);
}

#[test]
fn queue_with_nonpositive_arrival_rate_is_empty() {
    let mut rng = SimRng::new(13);
    let q = MultiServerQueue::new(4);
    assert!(q.run(&mut rng, 0.0, 100, |r| r.exp(0.001)).is_empty());
    assert!(q.run(&mut rng, -5.0, 100, |r| r.exp(0.001)).is_empty());
}

#[test]
fn single_request_sojourn_is_its_service_time() {
    let mut rng = SimRng::new(14);
    let q = MultiServerQueue::new(3);
    let mut lat = q.run(&mut rng, 10.0, 1, |_| 0.007);
    assert_eq!(lat.len(), 1);
    assert_eq!(lat.quantile(0.5), 0.007);
}

#[test]
fn erlang_c_degenerate_loads() {
    let q = MultiServerQueue::new(4);
    assert_eq!(q.erlang_c_mean_wait(0.0, 0.001), 0.0);
    assert_eq!(q.erlang_c_mean_wait(-10.0, 0.001), 0.0);
    assert!(q.erlang_c_mean_wait(4000.0, 0.001).is_infinite());
    assert!(q.erlang_c_mean_wait(8000.0, 0.001).is_infinite());
}
