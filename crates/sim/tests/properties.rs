//! Property-based tests for the simulation kernel.

use heracles_sim::{
    LatencyRecorder, MultiServerQueue, SimDuration, SimRng, SimTime, StreamingStats,
};
use proptest::prelude::*;

proptest! {
    /// Quantiles are monotone in the quantile argument and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(0.0f64..1000.0, 1..200)) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(s);
        }
        let q50 = rec.quantile(0.5);
        let q90 = rec.quantile(0.9);
        let q99 = rec.quantile(0.99);
        prop_assert!(q50 <= q90);
        prop_assert!(q90 <= q99);
        prop_assert!(q99 <= rec.quantile(1.0));
        prop_assert!(rec.quantile(0.0) <= q50);
    }

    /// Merging recorders is equivalent to recording everything in one.
    #[test]
    fn recorder_merge_is_concatenation(
        a in proptest::collection::vec(0.0f64..100.0, 0..100),
        b in proptest::collection::vec(0.0f64..100.0, 0..100),
    ) {
        let mut merged = LatencyRecorder::new();
        let mut left = LatencyRecorder::new();
        let mut right = LatencyRecorder::new();
        for &x in &a { merged.record(x); left.record(x); }
        for &x in &b { merged.record(x); right.record(x); }
        left.merge(&right);
        prop_assert_eq!(left.len(), merged.len());
        prop_assert_eq!(left.quantile(0.95), merged.quantile(0.95));
    }

    /// Streaming statistics stay within the sample bounds.
    #[test]
    fn streaming_stats_bounds(samples in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
        let mut s = StreamingStats::new();
        for &v in &samples {
            s.push(v);
        }
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
        prop_assert!(s.min() == lo && s.max() == hi);
        prop_assert!(s.variance() >= 0.0);
    }

    /// Simulated sojourn times are never smaller than the (constant) service time.
    #[test]
    fn sojourn_at_least_service(
        seed in 0u64..1000,
        servers in 1usize..16,
        service_ms in 0.1f64..10.0,
        utilization in 0.05f64..0.9,
    ) {
        let mut rng = SimRng::new(seed);
        let q = MultiServerQueue::new(servers);
        let service = service_ms / 1000.0;
        let lambda = utilization * servers as f64 / service;
        let mut lat = q.run(&mut rng, lambda, 500, |_| service);
        prop_assert!(lat.quantile(0.0) >= service - 1e-12);
    }

    /// Identical seeds give identical latency distributions (determinism).
    #[test]
    fn queue_is_deterministic(seed in 0u64..500) {
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            let q = MultiServerQueue::new(4);
            let mut lat = q.run(&mut rng, 1000.0, 2000, |r| r.exp(0.002));
            (lat.quantile(0.5), lat.quantile(0.99), lat.mean())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Time arithmetic: (t + d) - t == d for any time and duration.
    #[test]
    fn time_add_then_subtract(t_ns in 0u64..u64::MAX / 4, d_ns in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t_ns);
        let d = SimDuration::from_nanos(d_ns);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Exponential and log-normal samples are always non-negative and finite.
    #[test]
    fn distributions_are_well_formed(seed in 0u64..1000, mean in 1e-6f64..10.0, cov in 0.0f64..3.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let e = rng.exp(mean);
            let l = rng.lognormal(mean, cov);
            prop_assert!(e.is_finite() && e >= 0.0);
            prop_assert!(l.is_finite() && l >= 0.0);
        }
    }
}
