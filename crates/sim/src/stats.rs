//! Latency recording and summary statistics.
//!
//! Heracles consumes tail latency (e.g. the 99th percentile over a 15-second
//! window) as its primary control input.  [`LatencyRecorder`] collects the
//! per-request latencies produced by the queueing simulation and reports exact
//! empirical percentiles; [`StreamingStats`] tracks running moments for
//! resource-utilization series.

use serde::{Deserialize, Serialize};

/// Exact empirical latency distribution over a measurement window.
///
/// Stores every sample (windows are tens of thousands of requests at most) so
/// quantiles are exact rather than approximated.
///
/// # Example
///
/// ```
/// use heracles_sim::LatencyRecorder;
/// let mut rec = LatencyRecorder::new();
/// for i in 1..=100 {
///     rec.record(i as f64 / 1000.0);
/// }
/// assert_eq!(rec.quantile(0.99), 0.099);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder { samples: Vec::new(), sorted: true }
    }

    /// Creates an empty recorder with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder { samples: Vec::with_capacity(n), sorted: true }
    }

    /// Records one latency sample in seconds.
    ///
    /// Non-finite or negative samples are ignored.
    pub fn record(&mut self, latency_s: f64) {
        if latency_s.is_finite() && latency_s >= 0.0 {
            self.samples.push(latency_s);
            self.sorted = false;
        }
    }

    /// Absorbs all samples from another recorder.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples in insertion (not sorted) order unless a quantile has
    /// been computed since the last insertion, in which case they are sorted.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The empirical quantile `q` in `[0, 1]`, or zero if empty.
    ///
    /// Uses the nearest-rank method, which is what production latency
    /// monitoring systems report.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// The mean latency, or zero if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The maximum latency, or zero if empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

/// Running mean / min / max / variance over a stream of values
/// (Welford's algorithm).
///
/// # Example
///
/// ```
/// use heracles_sim::StreamingStats;
/// let mut s = StreamingStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a value to the stream. Non-finite values are ignored.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of values pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean, or zero if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance, or zero if fewer than two values.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The minimum value, or zero if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The maximum value, or zero if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            rec.record(v);
        }
        assert_eq!(rec.quantile(0.5), 3.0);
        assert_eq!(rec.quantile(1.0), 5.0);
        assert_eq!(rec.quantile(0.0), 1.0);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let mut rec = LatencyRecorder::new();
        assert_eq!(rec.quantile(0.99), 0.0);
        assert_eq!(rec.mean(), 0.0);
        assert_eq!(rec.max(), 0.0);
    }

    #[test]
    fn invalid_samples_ignored() {
        let mut rec = LatencyRecorder::new();
        rec.record(f64::NAN);
        rec.record(-1.0);
        rec.record(f64::INFINITY);
        assert!(rec.is_empty());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(1.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.quantile(1.0), 2.0);
    }

    #[test]
    fn streaming_stats_moments() {
        let mut s = StreamingStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_merge_equals_single_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let mut whole = StreamingStats::new();
        for &v in &values {
            whole.push(v);
        }
        let mut left = StreamingStats::new();
        let mut right = StreamingStats::new();
        for &v in &values[..37] {
            left.push(v);
        }
        for &v in &values[37..] {
            right.push(v);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn streaming_ignores_non_finite() {
        let mut s = StreamingStats::new();
        s.push(f64::NAN);
        s.push(1.0);
        assert_eq!(s.count(), 1);
    }
}
