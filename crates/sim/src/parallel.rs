//! Scoped-thread parallel helpers.
//!
//! The experiments consist of many independent units of work — figure cells
//! (workload × antagonist × load) and fleet servers stepping through a
//! window — so these helpers fan work out over the machine's cores with
//! plain scoped threads.  Results always come back in input order, and the
//! helpers spawn no threads at all for empty input, so callers stay
//! deterministic regardless of the parallelism available.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn worker_threads(items: usize) -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(items.max(1))
}

/// Applies `f` to every item, running cells in parallel across threads, and
/// returns the results in input order.
///
/// # Example
///
/// ```
/// let squares = heracles_sim::parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = worker_threads(items.len());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let value = f(&items[idx]);
                results.lock().expect("no panics while holding the lock")[idx] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .expect("all workers finished")
        .into_iter()
        .map(|r| r.expect("every cell computed"))
        .collect()
}

/// Applies `f` to every item through a mutable reference, running items in
/// parallel across threads, and returns the results in input order.
///
/// This is the stepping primitive of the fleet simulator: each server owns
/// mutable state (its runner, controller and RNG) and advances independently
/// within a step, so a whole fleet advances one step in the wall-clock time
/// of its slowest server.  Work is distributed in contiguous chunks, which
/// keeps the borrow checker happy (`chunks_mut` hands each thread exclusive
/// ownership of its slice) at the cost of no work stealing — fine here
/// because the per-item cost is uniform.
///
/// # Example
///
/// ```
/// let mut counters = vec![0u64; 8];
/// let totals = heracles_sim::parallel_map_mut(&mut counters, |c| {
///     *c += 1;
///     *c
/// });
/// assert_eq!(totals, vec![1; 8]);
/// assert_eq!(counters, vec![1; 8]);
/// ```
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = worker_threads(items.len());
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter_mut().map(&f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("no panics in parallel_map_mut workers"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_input() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn map_mut_mutates_and_preserves_order() {
        let mut items: Vec<usize> = (0..97).collect();
        let seen = parallel_map_mut(&mut items, |x| {
            *x += 1;
            *x
        });
        assert_eq!(seen, (1..98).collect::<Vec<_>>());
        assert_eq!(items, (1..98).collect::<Vec<_>>());
    }

    #[test]
    fn map_mut_handles_empty_and_single() {
        let mut empty: Vec<u32> = vec![];
        assert!(parallel_map_mut(&mut empty, |x| *x).is_empty());
        let mut one = vec![7u32];
        assert_eq!(parallel_map_mut(&mut one, |x| *x * 3), vec![21]);
    }
}
