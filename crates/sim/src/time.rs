//! Simulated time.
//!
//! Time is represented as an integer number of nanoseconds since the start of
//! the simulation.  Integer representation keeps ordering exact and avoids
//! drift when long experiments accumulate many small steps.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured from the start of the simulation.
///
/// # Example
///
/// ```
/// use heracles_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(15);
/// assert_eq!(t.as_secs_f64(), 15.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time.
///
/// # Example
///
/// ```
/// use heracles_sim::SimDuration;
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a time from fractional seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid simulated time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// The number of whole nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The number of whole nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.1}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 10.5);
        assert_eq!((t - SimTime::from_secs(10)).as_millis_f64(), 500.0);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_secs_f64(0.25).as_secs_f64(), 0.25);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(1) - SimDuration::from_secs(2), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "250.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
