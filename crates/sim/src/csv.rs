//! Shared CSV rendering helpers.
//!
//! Every exporter in the workspace (`TimeSeries::to_csv`, the colo window
//! records, the cluster and fleet step tables, the telemetry trace sink)
//! hand-rolls the same document shape: a header line, then one row per
//! record with fixed-precision floats and bare integers.  This module keeps
//! the formatting and escaping rules in one place so the exporters agree on
//! them by construction instead of by copy.
//!
//! Fields are written eagerly; [`CsvRow::end`] terminates the row.  A field
//! containing a comma, quote, carriage return or newline is quoted with
//! doubled inner quotes per RFC 4180 — none of the current exporters emit
//! such values, but the telemetry sinks carry free-form workload names and
//! must not corrupt the table if one ever does.
//!
//! # Example
//!
//! ```
//! use heracles_sim::csv::CsvRow;
//! let mut out = String::from("time_s,value,label\n");
//! CsvRow::new(&mut out).f64(1.5, 3).int(7).str("a,b").end();
//! assert_eq!(out, "time_s,value,label\n1.500,7,\"a,b\"\n");
//! ```

use std::fmt::Write as _;

/// Escapes one CSV field per RFC 4180: returned verbatim unless it contains
/// a comma, double quote or line break, in which case it is wrapped in
/// double quotes with inner quotes doubled.
pub fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Appends a float with the given number of decimals (the `{:.d$}` shape all
/// exporters use) to `out` without allocating an intermediate `String`.
pub fn push_f64(out: &mut String, value: f64, decimals: usize) {
    let _ = write!(out, "{value:.decimals$}");
}

/// One CSV row under construction.  Fields are appended eagerly with a
/// leading comma after the first; [`CsvRow::end`] writes the terminating
/// newline.  Dropping a row without calling [`CsvRow::end`] leaves the line
/// open, which lets callers assemble a row from several loops.
pub struct CsvRow<'a> {
    out: &'a mut String,
    cols: usize,
}

impl<'a> CsvRow<'a> {
    /// Starts a row that appends to `out`.
    pub fn new(out: &'a mut String) -> Self {
        CsvRow { out, cols: 0 }
    }

    /// Continues a row whose earlier fields were already written to `out`
    /// (the next field gets a leading comma).
    pub fn resume(out: &'a mut String) -> Self {
        CsvRow { out, cols: 1 }
    }

    fn sep(&mut self) {
        if self.cols > 0 {
            self.out.push(',');
        }
        self.cols += 1;
    }

    /// A float field with fixed decimals.
    pub fn f64(mut self, value: f64, decimals: usize) -> Self {
        self.sep();
        push_f64(self.out, value, decimals);
        self
    }

    /// An optional float field: fixed decimals when present, empty when not.
    pub fn opt_f64(mut self, value: Option<f64>, decimals: usize) -> Self {
        self.sep();
        if let Some(v) = value {
            push_f64(self.out, v, decimals);
        }
        self
    }

    /// An integer field.
    pub fn int(mut self, value: impl Into<i128>) -> Self {
        self.sep();
        let _ = write!(self.out, "{}", value.into());
        self
    }

    /// A boolean rendered as `1`/`0` (the workspace convention for flag
    /// columns such as `slo_met` and `censored`).
    pub fn bool01(self, value: bool) -> Self {
        self.int(u8::from(value))
    }

    /// A string field, escaped per [`escape`].
    pub fn str(mut self, value: &str) -> Self {
        self.sep();
        self.out.push_str(&escape(value));
        self
    }

    /// Terminates the row with a newline.
    pub fn end(self) {
        self.out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through_unquoted() {
        assert_eq!(escape("websearch"), "websearch");
        assert_eq!(escape(""), "");
    }

    #[test]
    fn delimiters_and_quotes_are_quoted_and_doubled() {
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn row_builder_matches_the_legacy_format_strings() {
        let mut out = String::new();
        CsvRow::new(&mut out).f64(0.123456789, 6).f64(0.5, 4).bool01(true).int(12u64).end();
        assert_eq!(out, "0.123457,0.5000,1,12\n");
    }

    #[test]
    fn optional_floats_render_empty_when_absent() {
        let mut out = String::new();
        CsvRow::new(&mut out).opt_f64(None, 3).opt_f64(Some(2.0), 3).end();
        assert_eq!(out, ",2.000\n");
    }

    #[test]
    fn resume_continues_an_open_row() {
        let mut out = String::new();
        CsvRow::new(&mut out).int(1i32);
        CsvRow::resume(&mut out).int(2i32).end();
        assert_eq!(out, "1,2\n");
    }
}
