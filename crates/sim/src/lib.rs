//! Deterministic simulation kernel for the Heracles reproduction.
//!
//! This crate provides the small set of primitives every other crate in the
//! workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`SimRng`] — a deterministic, fork-able random number generator with the
//!   distributions the workload models need (exponential, log-normal, Pareto),
//! * [`stats`] — latency recorders, percentile estimation and streaming
//!   moments used to compute tail latencies exactly the way the paper's
//!   controller consumes them,
//! * [`queue`] — a discrete-event multi-server FCFS queue used to turn a
//!   service-time model into a tail-latency distribution,
//! * [`series`] — time-series recording for the figures,
//! * [`csv`] — the CSV formatting/escaping helpers every exporter shares,
//! * [`event`] — a priority event queue plus the typed wake [`Scheduler`]
//!   the event-driven fleet core sleeps and wakes components through,
//! * [`parallel`] — scoped-thread fan-out used by the figure binaries and
//!   the fleet simulator to run independent cells/servers concurrently.
//!
//! Everything is deterministic given a seed: the same experiment run twice
//! produces bit-identical output, which the test suite relies on.
//!
//! # Example
//!
//! ```
//! use heracles_sim::{SimRng, queue::MultiServerQueue};
//!
//! // Tail latency of an M/M/4 queue at 60% utilization.
//! let mut rng = SimRng::new(42);
//! let mean_service = 0.001; // 1 ms
//! let servers = 4;
//! let arrival_rate = 0.6 * servers as f64 / mean_service;
//! let sim = MultiServerQueue::new(servers);
//! let mut lat = sim.run(&mut rng, arrival_rate, 20_000, |rng| rng.exp(mean_service));
//! assert!(lat.quantile(0.99) > mean_service);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod event;
pub mod parallel;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use event::{EventQueue, Scheduler, WakeReason};
pub use parallel::{parallel_map, parallel_map_mut};
pub use queue::MultiServerQueue;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{LatencyRecorder, StreamingStats};
pub use time::{SimDuration, SimTime};
