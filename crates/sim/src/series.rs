//! Time-series recording for experiment output.
//!
//! The figure-reproduction binaries record per-window measurements (latency,
//! utilization, bandwidth, power) as [`TimeSeries`] and render them as the
//! rows/series the paper reports.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A single time-stamped observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// When the observation was made.
    pub time: SimTime,
    /// The observed value.
    pub value: f64,
}

/// An append-only series of time-stamped values.
///
/// # Example
///
/// ```
/// use heracles_sim::{TimeSeries, SimTime};
/// let mut s = TimeSeries::new("cpu_utilization");
/// s.push(SimTime::from_secs(0), 0.4);
/// s.push(SimTime::from_secs(15), 0.6);
/// assert_eq!(s.mean(), 0.5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new() }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation. Non-finite values are ignored.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if value.is_finite() {
            self.points.push(TimePoint { time, value });
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over observations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TimePoint> {
        self.points.iter()
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<TimePoint> {
        self.points.last().copied()
    }

    /// Mean of all values, or zero if empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum value, or zero if empty.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Minimum value, or zero if empty.
    pub fn min(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.value).fold(f64::INFINITY, f64::min)
        }
    }

    /// Fraction of observations for which `predicate` holds, or zero if empty.
    pub fn fraction_where(&self, predicate: impl Fn(f64) -> bool) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| predicate(p.value)).count() as f64 / self.points.len() as f64
    }

    /// Renders the series as `time_s,value` CSV lines (with a header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,value\n");
        for p in &self.points {
            crate::csv::CsvRow::new(&mut out).f64(p.time.as_secs_f64(), 3).f64(p.value, 6).end();
        }
        out
    }
}

impl Extend<TimePoint> for TimeSeries {
    fn extend<T: IntoIterator<Item = TimePoint>>(&mut self, iter: T) {
        for p in iter {
            self.push(p.time, p.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let mut s = TimeSeries::new("test");
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(1), 3.0);
        s.push(SimTime::from_secs(2), 2.0);
        s
    }

    #[test]
    fn summary_statistics() {
        let s = sample_series();
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.last().unwrap().value, 2.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_series_defaults() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert!(s.last().is_none());
    }

    #[test]
    fn non_finite_values_dropped() {
        let mut s = TimeSeries::new("nan");
        s.push(SimTime::ZERO, f64::NAN);
        assert!(s.is_empty());
    }

    #[test]
    fn fraction_where_counts_correctly() {
        let s = sample_series();
        let frac = s.fraction_where(|v| v >= 2.0);
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = sample_series();
        let csv = s.to_csv();
        assert!(csv.starts_with("time_s,value\n"));
        assert_eq!(csv.lines().count(), 4);
    }
}
