//! Deterministic random number generation.
//!
//! Every stochastic component of the simulation draws from a [`SimRng`] seeded
//! from the experiment configuration, so a given experiment is exactly
//! reproducible.  Independent sub-streams can be split off with
//! [`SimRng::fork`], which keeps components statistically independent while
//! remaining deterministic regardless of the order in which they draw.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic pseudo-random number generator with the distributions used
/// by the workload and hardware models.
///
/// # Example
///
/// ```
/// use heracles_sim::SimRng;
/// let mut rng = SimRng::new(7);
/// let service_time = rng.lognormal(0.010, 0.5); // mean 10 ms, CoV 0.5
/// assert!(service_time > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates an independent generator for a named sub-stream.
    ///
    /// The fork is a pure function of the parent seed and `stream`, so the
    /// sub-stream does not depend on how many values the parent has produced.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mixing of (seed, stream) into a new seed.
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range: lo {lo} > hi {hi}");
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer sample in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// An exponential sample with the given mean.
    ///
    /// Returns zero when `mean <= 0`.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-transform sampling; 1-u avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// A standard normal sample (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A log-normal sample parameterised by its mean and coefficient of
    /// variation (`std_dev / mean`).
    ///
    /// Service-time distributions in the workload models are log-normal, which
    /// matches the heavy-but-not-pathological tails of request service times
    /// in serving systems.  Returns zero when `mean <= 0`.
    pub fn lognormal(&mut self, mean: f64, cov: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cov <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cov * cov).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }

    /// A Poisson sample with the given mean (Knuth's method).
    ///
    /// Used for per-step arrival counts in the fleet job stream.  Returns
    /// zero when `mean <= 0`.  Large means are split into chunks and summed
    /// (Poisson(a+b) = Poisson(a) + Poisson(b)), which keeps the method
    /// exact where a single `exp(-mean)` would underflow to zero and break
    /// the termination bound.
    pub fn poisson(&mut self, mean: f64) -> usize {
        if mean.is_nan() || mean <= 0.0 || !mean.is_finite() {
            // NaN and non-positive means sample zero arrivals; an infinite
            // mean would otherwise never terminate.
            return 0;
        }
        const CHUNK: f64 = 200.0;
        let mut remaining = mean;
        let mut total = 0usize;
        while remaining > CHUNK {
            total += self.poisson_knuth(CHUNK);
            remaining -= CHUNK;
        }
        total + self.poisson_knuth(remaining)
    }

    fn poisson_knuth(&mut self, mean: f64) -> usize {
        let limit = (-mean).exp();
        let mut k = 0usize;
        let mut product = 1.0;
        loop {
            product *= self.uniform();
            if product <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// A bounded Pareto sample with shape `alpha` on `[lo, hi]`.
    ///
    /// Used for heavy-tailed best-effort task sizes.
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `hi < lo`, or `alpha <= 0`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi >= lo && alpha > 0.0, "invalid bounded pareto parameters");
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        let x = -(u * ha - u * la - ha) / (ha * la);
        x.powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn forks_are_order_independent() {
        let parent = SimRng::new(99);
        let mut f1 = parent.fork(3);
        let mut p2 = SimRng::new(99);
        let _ = p2.uniform(); // advancing the parent must not change the fork
        let mut f2 = p2.fork(3);
        assert_eq!(f1.uniform(), f2.uniform());
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = SimRng::new(5);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.exp(2.0)).collect();
        let m = mean_of(&samples);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn lognormal_has_requested_mean() {
        let mut rng = SimRng::new(6);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.lognormal(0.01, 0.7)).collect();
        let m = mean_of(&samples);
        assert!((m - 0.01).abs() < 0.0005, "mean {m}");
    }

    #[test]
    fn lognormal_degenerate_cases() {
        let mut rng = SimRng::new(7);
        assert_eq!(rng.lognormal(0.0, 0.5), 0.0);
        assert_eq!(rng.lognormal(3.0, 0.0), 3.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::new(10);
        for _ in 0..1000 {
            let x = rng.uniform_range(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
    }

    #[test]
    fn poisson_has_requested_mean() {
        let mut rng = SimRng::new(11);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.poisson(3.0) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
        assert_eq!(rng.poisson(f64::INFINITY), 0);
        assert_eq!(rng.poisson(f64::NAN), 0);
    }

    #[test]
    fn poisson_survives_means_past_the_exp_underflow_point() {
        // exp(-1000) underflows to 0.0; the chunked sampler must still
        // return values distributed around the mean, not a constant.
        let mut rng = SimRng::new(12);
        let samples: Vec<f64> = (0..500).map(|_| rng.poisson(1_000.0) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 1_000.0).abs() < 10.0, "mean {m}");
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64;
        assert!(var > 500.0, "variance collapsed: {var}");
    }
}
