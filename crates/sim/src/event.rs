//! A minimal time-ordered event queue and the wake scheduler built on it.
//!
//! The cluster simulation schedules controller epochs and load-trace updates
//! through the [`EventQueue`]; the event-driven fleet core schedules typed
//! component wake-ups through the [`Scheduler`].  Events at equal times are
//! delivered in insertion order, which keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Why a sleeping simulation component is being woken.
///
/// The event-driven server plane only advances a component in full when
/// something observable changed; every wake carries the reason, so a trace
/// can attribute each woken component to exactly one cause class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WakeReason {
    /// The component's routed load changed (an exact bit comparison — no
    /// epsilon: any change to the demand a leaf serves is a real change).
    LoadDelta,
    /// A controller poll deadline arrived, or a sub-controller acted while
    /// the component was otherwise steady.
    ControllerPoll,
    /// A job was placed on (or migrated onto) the component.
    JobArrival,
    /// A resident job completed, was preempted, or migrated away.
    JobCompletion,
    /// The component itself changed state: commissioned, draining,
    /// reactivated.
    Lifecycle,
}

impl WakeReason {
    /// Every reason, in a stable order (the order trace sections report).
    pub const ALL: [WakeReason; 5] = [
        WakeReason::LoadDelta,
        WakeReason::ControllerPoll,
        WakeReason::JobArrival,
        WakeReason::JobCompletion,
        WakeReason::Lifecycle,
    ];

    /// Stable index of this reason within [`ALL`](Self::ALL).
    pub fn index(self) -> usize {
        match self {
            WakeReason::LoadDelta => 0,
            WakeReason::ControllerPoll => 1,
            WakeReason::JobArrival => 2,
            WakeReason::JobCompletion => 3,
            WakeReason::Lifecycle => 4,
        }
    }

    /// The reason's name as recorded in traces.
    pub fn name(self) -> &'static str {
        match self {
            WakeReason::LoadDelta => "load-delta",
            WakeReason::ControllerPoll => "controller-poll",
            WakeReason::JobArrival => "job-arrival",
            WakeReason::JobCompletion => "job-completion",
            WakeReason::Lifecycle => "lifecycle",
        }
    }
}

/// A pending event carrying a payload of type `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (a max-heap) pops the earliest event;
        // ties break by insertion order.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, time-ordered event queue.
///
/// # Example
///
/// ```
/// use heracles_sim::{event::EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "later");
/// q.schedule(SimTime::from_secs(5), "sooner");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_secs(5), "sooner"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to be delivered at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A deterministic wake scheduler: components sleep until an event wakes
/// them, and every wake names its [`WakeReason`].
///
/// The quiescence contract: a component with no wake scheduled at or before
/// time `t` ([`is_quiescent_until`](Self::is_quiescent_until)) may be
/// fast-forwarded to `t` without running its full per-tick work — provided
/// the caller's fast path is provably exact, which is what the fleet's
/// bit-identical core-equivalence tests pin.  Wakes are conservative: waking
/// a component that turns out to have nothing to do costs only the wasted
/// wake, while *missing* a wake would silently fork the simulation — so
/// every producer of change (the traffic plane, the dispatcher, the elastic
/// hooks) schedules a wake whenever it *might* have changed a component's
/// inputs.
///
/// # Example
///
/// ```
/// use heracles_sim::{event::{Scheduler, WakeReason}, SimTime};
/// let mut s: Scheduler<&str> = Scheduler::new();
/// s.schedule(SimTime::from_secs(5), "leaf-a", WakeReason::LoadDelta);
/// s.schedule(SimTime::from_secs(9), "leaf-b", WakeReason::JobArrival);
/// assert_eq!(s.peek(), Some(SimTime::from_secs(5)));
/// assert!(s.is_quiescent_until(SimTime::from_secs(4)));
/// assert!(!s.is_quiescent_until(SimTime::from_secs(5)));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<K> {
    queue: EventQueue<(K, WakeReason)>,
    now: SimTime,
}

impl<K> Default for Scheduler<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> Scheduler<K> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler { queue: EventQueue::new(), now: SimTime::ZERO }
    }

    /// The time the scheduler has advanced to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a wake for `target` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the scheduler's current time — a wake in
    /// the past could never fire, which would violate the quiescence
    /// contract silently.
    pub fn schedule(&mut self, time: SimTime, target: K, reason: WakeReason) {
        assert!(time >= self.now, "wake scheduled in the past ({time} < {now})", now = self.now);
        self.queue.schedule(time, (target, reason));
    }

    /// The time of the earliest pending wake, if any.
    ///
    /// # Example
    ///
    /// ```
    /// use heracles_sim::{event::{Scheduler, WakeReason}, SimTime};
    /// let mut s: Scheduler<u32> = Scheduler::new();
    /// assert_eq!(s.peek(), None);
    /// s.schedule(SimTime::from_secs(3), 7, WakeReason::Lifecycle);
    /// assert_eq!(s.peek(), Some(SimTime::from_secs(3)));
    /// ```
    pub fn peek(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the scheduler to `time` and returns every wake due at or
    /// before it, in (time, insertion) order.  Equal-time wakes keep their
    /// scheduling order, so draining is deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use heracles_sim::{event::{Scheduler, WakeReason}, SimTime};
    /// let mut s: Scheduler<&str> = Scheduler::new();
    /// s.schedule(SimTime::from_secs(2), "b", WakeReason::JobCompletion);
    /// s.schedule(SimTime::from_secs(1), "a", WakeReason::LoadDelta);
    /// s.schedule(SimTime::from_secs(8), "c", WakeReason::ControllerPoll);
    /// let due = s.advance_to(SimTime::from_secs(5));
    /// assert_eq!(due.len(), 2);
    /// assert_eq!(due[0].0, "a");
    /// assert_eq!(due[1].0, "b");
    /// assert_eq!(s.now(), SimTime::from_secs(5));
    /// assert_eq!(s.len(), 1); // "c" still pending
    /// ```
    pub fn advance_to(&mut self, time: SimTime) -> Vec<(K, WakeReason)> {
        if time > self.now {
            self.now = time;
        }
        let mut due = Vec::new();
        while self.queue.peek_time().is_some_and(|t| t <= self.now) {
            let (_, wake) = self.queue.pop().expect("peeked a pending event");
            due.push(wake);
        }
        due
    }

    /// True when no wake is scheduled at or before `time`: the contract
    /// under which a caller may fast-forward sleeping components to `time`.
    pub fn is_quiescent_until(&self, time: SimTime) -> bool {
        self.queue.peek_time().is_none_or(|t| t > time)
    }

    /// Number of pending wakes.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no wakes are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn tie_break_order_survives_clone() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(2);
        for id in 0..16 {
            q.schedule(t, id);
        }
        let mut copy = q.clone();
        let original: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        let cloned: Vec<i32> = std::iter::from_fn(|| copy.pop().map(|(_, p)| p)).collect();
        assert_eq!(original, (0..16).collect::<Vec<_>>());
        assert_eq!(original, cloned);
    }

    #[test]
    fn scheduler_drains_due_wakes_in_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(SimTime::from_secs(4), 4, WakeReason::JobArrival);
        s.schedule(SimTime::from_secs(1), 1, WakeReason::LoadDelta);
        s.schedule(SimTime::from_secs(1), 2, WakeReason::ControllerPoll);
        s.schedule(SimTime::from_secs(9), 9, WakeReason::Lifecycle);
        let due = s.advance_to(SimTime::from_secs(4));
        assert_eq!(
            due,
            vec![
                (1, WakeReason::LoadDelta),
                (2, WakeReason::ControllerPoll),
                (4, WakeReason::JobArrival),
            ]
        );
        assert_eq!(s.now(), SimTime::from_secs(4));
        assert!(s.is_quiescent_until(SimTime::from_secs(8)));
        assert!(!s.is_quiescent_until(SimTime::from_secs(9)));
        assert_eq!(s.advance_to(SimTime::from_secs(9)), vec![(9, WakeReason::Lifecycle)]);
        assert!(s.is_empty());
    }

    #[test]
    fn advance_to_earlier_time_keeps_now_monotonic() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.advance_to(SimTime::from_secs(5));
        assert!(s.advance_to(SimTime::from_secs(3)).is_empty());
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "wake scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.advance_to(SimTime::from_secs(10));
        s.schedule(SimTime::from_secs(9), 0, WakeReason::LoadDelta);
    }

    /// Randomized (but seed-deterministic) interleaving of schedule and pop:
    /// equal-time events must always come out in the order they went in, no
    /// matter how the heap was churned in between.
    #[test]
    fn interleaved_schedule_and_pop_never_reorders_equal_times() {
        for seed in 0..32u64 {
            let mut rng = crate::rng::SimRng::new(0xE7E27 ^ seed);
            let mut q: EventQueue<(u64, u64)> = EventQueue::new();
            // Per-time insertion counters: payload is (time_key, ordinal).
            let mut issued = [0u64; 4];
            let mut popped: Vec<(SimTime, (u64, u64))> = Vec::new();
            for _ in 0..200 {
                if q.is_empty() || rng.index(3) > 0 {
                    let time_key = rng.index(4) as u64;
                    let ordinal = issued[time_key as usize];
                    issued[time_key as usize] += 1;
                    q.schedule(SimTime::from_secs(time_key), (time_key, ordinal));
                } else {
                    popped.push(q.pop().unwrap());
                }
            }
            while let Some(ev) = q.pop() {
                popped.push(ev);
            }
            // Within each pop "run" between schedules the times are sorted; more
            // importantly, for any fixed time the ordinals appear in issue order
            // across the whole history.
            for time_key in 0..4u64 {
                let ordinals: Vec<u64> = popped
                    .iter()
                    .filter(|(_, (tk, _))| *tk == time_key)
                    .map(|(_, (_, ord))| *ord)
                    .collect();
                assert_eq!(ordinals.len() as u64, issued[time_key as usize]);
                assert!(
                    ordinals.windows(2).all(|w| w[0] < w[1]),
                    "seed {seed}: equal-time events reordered: {ordinals:?}"
                );
            }
        }
    }
}
