//! A minimal time-ordered event queue.
//!
//! The cluster simulation schedules controller epochs and load-trace updates
//! through this queue.  Events at equal times are delivered in insertion
//! order, which keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event carrying a payload of type `T`.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that the BinaryHeap (a max-heap) pops the earliest event;
        // ties break by insertion order.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, time-ordered event queue.
///
/// # Example
///
/// ```
/// use heracles_sim::{event::EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "later");
/// q.schedule(SimTime::from_secs(5), "sooner");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_secs(5), "sooner"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to be delivered at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }
}
