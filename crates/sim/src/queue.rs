//! Discrete-event multi-server FCFS queue.
//!
//! The workload models turn resource allocations into a *service-time
//! distribution*; this module turns that distribution plus an arrival rate and
//! a thread-pool size into a *sojourn-time (latency) distribution*, which is
//! what the SLO is defined over.  The simulation is an open-loop M/G/c queue:
//! Poisson arrivals, general (caller-supplied) service times, `c` servers,
//! first-come-first-served.

use crate::rng::SimRng;
use crate::stats::LatencyRecorder;

/// A first-come-first-served queue served by `c` identical servers.
///
/// # Example
///
/// ```
/// use heracles_sim::{MultiServerQueue, SimRng};
/// let mut rng = SimRng::new(1);
/// let q = MultiServerQueue::new(8);
/// // 8 servers, 1 ms mean service, offered load 50%.
/// let lat = q.run(&mut rng, 4000.0, 10_000, |rng| rng.exp(0.001));
/// assert!(lat.mean() >= 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiServerQueue {
    servers: usize,
}

impl MultiServerQueue {
    /// Creates a queue with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a queue needs at least one server");
        MultiServerQueue { servers }
    }

    /// Number of parallel servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Simulates `requests` Poisson arrivals at `arrival_rate_hz` and returns
    /// the distribution of sojourn times (queueing delay + service time).
    ///
    /// `service` is called once per request to sample its service time in
    /// seconds.  When the offered load exceeds capacity the queue builds up
    /// over the window and sojourn times grow without bound, which is exactly
    /// the saturation behaviour the Heracles controller is designed to detect
    /// and avoid.
    ///
    /// Returns an empty recorder when `arrival_rate_hz <= 0` or
    /// `requests == 0`.
    pub fn run(
        &self,
        rng: &mut SimRng,
        arrival_rate_hz: f64,
        requests: usize,
        mut service: impl FnMut(&mut SimRng) -> f64,
    ) -> LatencyRecorder {
        let mut latencies = LatencyRecorder::with_capacity(requests);
        if arrival_rate_hz <= 0.0 || requests == 0 {
            return latencies;
        }
        let mean_interarrival = 1.0 / arrival_rate_hz;
        // `free_at[i]` is the simulated time at which server i next becomes idle.
        let mut free_at = vec![0.0_f64; self.servers];
        let mut now = 0.0_f64;
        for _ in 0..requests {
            now += rng.exp(mean_interarrival);
            // FCFS: the request runs on the server that frees up earliest.
            let (idx, earliest) = free_at
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
                .expect("at least one server");
            let start = now.max(earliest);
            let wait = start - now;
            let service_time = service(rng).max(0.0);
            free_at[idx] = start + service_time;
            latencies.record(wait + service_time);
        }
        latencies
    }

    /// Analytic mean-wait estimate for an M/M/c queue (Erlang-C), used by
    /// tests as a cross-check of the discrete-event simulation and by the
    /// offline profiling tools for fast sweeps.
    ///
    /// Returns `f64::INFINITY` when the offered load meets or exceeds
    /// capacity.
    pub fn erlang_c_mean_wait(&self, arrival_rate_hz: f64, mean_service_s: f64) -> f64 {
        let c = self.servers as f64;
        let offered = arrival_rate_hz * mean_service_s;
        if offered >= c {
            return f64::INFINITY;
        }
        if offered <= 0.0 {
            return 0.0;
        }
        let rho = offered / c;
        // Erlang-C probability of waiting.
        let mut sum = 0.0;
        let mut term = 1.0; // offered^k / k!
        for k in 0..self.servers {
            if k > 0 {
                term *= offered / k as f64;
            }
            sum += term;
        }
        let top = term * offered / c / (1.0 - rho);
        let p_wait = top / (sum + top);
        p_wait * mean_service_s / (c * (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic]
    fn zero_servers_panics() {
        let _ = MultiServerQueue::new(0);
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let mut rng = SimRng::new(3);
        let q = MultiServerQueue::new(2);
        assert!(q.run(&mut rng, 0.0, 100, |r| r.exp(0.001)).is_empty());
        assert!(q.run(&mut rng, 100.0, 0, |r| r.exp(0.001)).is_empty());
    }

    #[test]
    fn latency_at_least_service_time() {
        let mut rng = SimRng::new(4);
        let q = MultiServerQueue::new(4);
        let mut lat = q.run(&mut rng, 100.0, 5000, |_| 0.002);
        assert!(lat.quantile(0.0) >= 0.002);
        assert!(lat.mean() >= 0.002);
    }

    #[test]
    fn matches_erlang_c_at_moderate_load() {
        let mut rng = SimRng::new(5);
        let q = MultiServerQueue::new(4);
        let mean_service = 0.001;
        let lambda = 0.7 * 4.0 / mean_service; // 70% utilization
        let lat = q.run(&mut rng, lambda, 200_000, |r| r.exp(mean_service));
        let sim_wait = lat.mean() - mean_service;
        let analytic = q.erlang_c_mean_wait(lambda, mean_service);
        assert!(
            (sim_wait - analytic).abs() / analytic < 0.10,
            "simulated wait {sim_wait} vs Erlang-C {analytic}"
        );
    }

    #[test]
    fn overload_blows_up() {
        let mut rng = SimRng::new(6);
        let q = MultiServerQueue::new(2);
        let mean_service = 0.001;
        let lambda = 1.5 * 2.0 / mean_service; // 150% load
        let mut lat = q.run(&mut rng, lambda, 20_000, |r| r.exp(mean_service));
        // Tail latency should be orders of magnitude above the service time.
        assert!(lat.quantile(0.99) > 50.0 * mean_service);
        assert!(q.erlang_c_mean_wait(lambda, mean_service).is_infinite());
    }

    #[test]
    fn more_servers_reduce_waiting() {
        let mut rng = SimRng::new(7);
        let mean_service = 0.001;
        let lambda = 3000.0;
        let mut small =
            MultiServerQueue::new(4).run(&mut rng, lambda, 50_000, |r| r.exp(mean_service));
        let mut rng2 = SimRng::new(7);
        let mut large =
            MultiServerQueue::new(8).run(&mut rng2, lambda, 50_000, |r| r.exp(mean_service));
        assert!(large.quantile(0.99) < small.quantile(0.99));
    }
}
