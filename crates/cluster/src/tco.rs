//! Total cost of ownership model (Barroso et al. calculator, low per-server
//! cost case study).
//!
//! The paper's parameters: $2000 servers, PUE of 2.0, 500 W peak server
//! power, $0.10/kWh electricity, a 10,000-server cluster.  Throughput is
//! proportional to achieved utilization; raising utilization raises the power
//! bill but none of the capital costs, so throughput/TCO improves.

use serde::{Deserialize, Serialize};

/// The TCO calculator.
///
/// # Example
///
/// ```
/// use heracles_cluster::TcoModel;
/// let tco = TcoModel::paper_case_study();
/// // Raising a 75%-utilized cluster to 90% improves throughput/TCO by ~15%.
/// let gain = tco.throughput_per_tco_improvement(0.75, 0.90);
/// assert!(gain > 0.10 && gain < 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    /// Purchase cost of one server, in dollars.
    pub server_capex: f64,
    /// Server amortization period, in years.
    pub server_lifetime_years: f64,
    /// Datacenter infrastructure cost attributable to one server, in dollars.
    pub infra_capex_per_server: f64,
    /// Infrastructure amortization period, in years.
    pub infra_lifetime_years: f64,
    /// Power usage effectiveness of the facility.
    pub pue: f64,
    /// Peak power draw of one server, in watts.
    pub peak_power_w: f64,
    /// Idle power as a fraction of peak (servers are not energy proportional).
    pub idle_power_fraction: f64,
    /// Electricity price, in dollars per kWh.
    pub electricity_per_kwh: f64,
    /// Number of servers in the cluster.
    pub cluster_servers: usize,
}

impl TcoModel {
    /// The parameters of the paper's case study (§5.3).
    pub fn paper_case_study() -> Self {
        TcoModel {
            server_capex: 2_000.0,
            server_lifetime_years: 3.0,
            infra_capex_per_server: 1_500.0,
            infra_lifetime_years: 12.0,
            pue: 2.0,
            peak_power_w: 500.0,
            idle_power_fraction: 0.50,
            electricity_per_kwh: 0.10,
            cluster_servers: 10_000,
        }
    }

    /// Annual capital cost per server (server plus infrastructure
    /// amortization), in dollars.
    pub fn annual_capex_per_server(&self) -> f64 {
        self.server_capex / self.server_lifetime_years
            + self.infra_capex_per_server / self.infra_lifetime_years
    }

    /// Average server power draw at a given utilization, in watts.
    pub fn server_power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let idle = self.idle_power_fraction * self.peak_power_w;
        idle + (self.peak_power_w - idle) * u
    }

    /// Annual energy cost per server at a given utilization, in dollars.
    pub fn annual_energy_per_server(&self, utilization: f64) -> f64 {
        let kw = self.server_power_w(utilization) * self.pue / 1_000.0;
        kw * 8_760.0 * self.electricity_per_kwh
    }

    /// Annual TCO per server at a given utilization, in dollars.
    pub fn annual_tco_per_server(&self, utilization: f64) -> f64 {
        self.annual_capex_per_server() + self.annual_energy_per_server(utilization)
    }

    /// Annual TCO for the whole cluster, in dollars.
    pub fn annual_tco_cluster(&self, utilization: f64) -> f64 {
        self.annual_tco_per_server(utilization) * self.cluster_servers as f64
    }

    /// Throughput per TCO dollar at a given utilization (throughput is
    /// proportional to utilization).
    pub fn throughput_per_tco(&self, utilization: f64) -> f64 {
        utilization.clamp(0.0, 2.0) / self.annual_tco_per_server(utilization.clamp(0.0, 1.0))
    }

    /// Relative throughput/TCO improvement from raising utilization from
    /// `from` to `to` (0.15 = +15%).
    pub fn throughput_per_tco_improvement(&self, from: f64, to: f64) -> f64 {
        self.throughput_per_tco(to) / self.throughput_per_tco(from) - 1.0
    }

    /// Relative throughput/TCO improvement achievable by an
    /// energy-proportionality controller alone: it cannot raise throughput,
    /// it only recovers a fraction of the energy wasted at idle.
    ///
    /// `savings_fraction` is how much of the idle-power waste the controller
    /// recovers (PEGASUS-style controllers recover roughly a third).
    pub fn energy_proportionality_improvement(
        &self,
        utilization: f64,
        savings_fraction: f64,
    ) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let waste_w = (self.server_power_w(u) - self.peak_power_w * u.max(0.05)).max(0.0);
        let saved_w = waste_w * savings_fraction.clamp(0.0, 1.0);
        let saved_annual = saved_w * self.pue / 1_000.0 * 8_760.0 * self.electricity_per_kwh;
        let before = self.annual_tco_per_server(u);
        before / (before - saved_annual) - 1.0
    }
}

impl Default for TcoModel {
    fn default() -> Self {
        Self::paper_case_study()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_model_endpoints() {
        let tco = TcoModel::paper_case_study();
        assert_eq!(tco.server_power_w(0.0), 250.0);
        assert_eq!(tco.server_power_w(1.0), 500.0);
        assert!(tco.server_power_w(0.5) > 250.0 && tco.server_power_w(0.5) < 500.0);
    }

    #[test]
    fn higher_utilization_costs_more_but_yields_more() {
        let tco = TcoModel::paper_case_study();
        assert!(tco.annual_tco_per_server(0.9) > tco.annual_tco_per_server(0.2));
        assert!(tco.throughput_per_tco(0.9) > tco.throughput_per_tco(0.2));
    }

    #[test]
    fn paper_headline_numbers_hold() {
        let tco = TcoModel::paper_case_study();
        // ~15% gain when a 75%-utilized cluster reaches 90% (paper: 15%).
        let high = tco.throughput_per_tco_improvement(0.75, 0.90);
        assert!((0.10..=0.22).contains(&high), "got {high:.3}");
        // Several-fold gain when a 20%-utilized cluster reaches 90%
        // (paper: ~300%).
        let low = tco.throughput_per_tco_improvement(0.20, 0.90);
        assert!((2.5..=4.0).contains(&low), "got {low:.3}");
        // Energy proportionality alone is far less effective (paper: ~3% at
        // high utilization, <7% at low utilization).
        let ep_high = tco.energy_proportionality_improvement(0.75, 0.35);
        let ep_low = tco.energy_proportionality_improvement(0.20, 0.35);
        assert!(ep_high < 0.07, "got {ep_high:.3}");
        assert!(ep_low < 0.12, "got {ep_low:.3}");
        assert!(ep_low > ep_high);
        assert!(low > 10.0 * ep_low);
    }

    #[test]
    fn cluster_tco_scales_with_size() {
        let tco = TcoModel::paper_case_study();
        let per_server = tco.annual_tco_per_server(0.5);
        assert!((tco.annual_tco_cluster(0.5) - per_server * 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn improvement_is_zero_for_no_change() {
        let tco = TcoModel::paper_case_study();
        assert!(tco.throughput_per_tco_improvement(0.6, 0.6).abs() < 1e-12);
    }
}
