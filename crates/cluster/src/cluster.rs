//! The websearch fan-out cluster (Figure 8).
//!
//! A root node fans each user query out to every leaf and combines the
//! replies, so the slowest leaves dominate the root latency.  Each leaf is a
//! full single-server colocation experiment: websearch plus a production BE
//! task (brain on half of the leaves, streetview on the other half, as in the
//! paper), managed by a per-leaf Heracles instance.  Load follows a 12-hour
//! diurnal trace.  The cluster SLO is defined at the root, set from the
//! latency observed at 90% load without any colocation.

use heracles_baselines::LcOnly;
use heracles_colo::{ColoConfig, ColoRunner};
use heracles_core::{ColocationPolicy, Heracles, HeraclesConfig, OfflineDramModel};
use heracles_hw::ServerConfig;
use heracles_sim::csv::CsvRow;
use heracles_sim::{SimTime, TimeSeries};
use heracles_workloads::{BeWorkload, DiurnalTrace, LcWorkload, Slo};
use serde::{Deserialize, Serialize};

/// Which policy manages the leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterPolicy {
    /// No colocation: every leaf runs websearch alone.
    Baseline,
    /// Per-leaf Heracles instances colocating production BE tasks.
    Heracles,
}

/// Configuration of the cluster experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of leaf servers (the paper uses "tens of servers").
    pub leaves: usize,
    /// Which policy manages the leaves.
    pub policy: ClusterPolicy,
    /// Per-leaf harness configuration.
    pub colo: ColoConfig,
    /// Number of harness windows per trace step (the trace is sampled once
    /// per step; controllers tick every window).
    pub windows_per_step: usize,
    /// Number of trace steps to simulate.
    pub steps: usize,
    /// Seed for the trace and the per-leaf random streams.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            leaves: 12,
            policy: ClusterPolicy::Heracles,
            colo: ColoConfig { requests_per_window: 1_200, ..ColoConfig::default() },
            windows_per_step: 6,
            steps: 144, // 12 h at 5-minute steps
            seed: 42,
        }
    }
}

impl ClusterConfig {
    /// A scaled-down configuration for tests.
    pub fn fast_test() -> Self {
        ClusterConfig {
            leaves: 4,
            colo: ColoConfig::fast_test(),
            windows_per_step: 4,
            steps: 24,
            ..Self::default()
        }
    }
}

/// One step of the cluster experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterStep {
    /// Simulated time at the end of the step.
    pub time: SimTime,
    /// Websearch load during the step (fraction of peak).
    pub load: f64,
    /// Root latency as a fraction of the cluster SLO.
    pub normalized_root_latency: f64,
    /// Mean Effective Machine Utilization across the leaves.
    pub emu: f64,
    /// Mean BE throughput across the leaves (normalized to BE-alone).
    pub be_throughput: f64,
}

/// The result of a cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterResult {
    /// Which policy produced this result.
    pub policy: ClusterPolicy,
    /// The per-step records.
    pub steps: Vec<ClusterStep>,
    /// The cluster SLO target used for normalization, in seconds.
    pub slo_target_s: f64,
}

impl ClusterResult {
    /// Fraction of steps that violated the cluster SLO.
    pub fn violation_fraction(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().filter(|s| s.normalized_root_latency > 1.0).count() as f64
            / self.steps.len() as f64
    }

    /// Mean Effective Machine Utilization over the run.
    pub fn mean_emu(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.emu).sum::<f64>() / self.steps.len() as f64
    }

    /// Minimum Effective Machine Utilization over the run.
    ///
    /// Returns 0.0 for an empty run (rather than the fold identity `+inf`),
    /// matching the other aggregates' empty-run behaviour.
    pub fn min_emu(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.emu).fold(f64::INFINITY, f64::min)
    }

    /// Renders the per-step records as a CSV document for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,load,normalized_root_latency,emu,be_throughput\n");
        for s in &self.steps {
            CsvRow::new(&mut out)
                .f64(s.time.as_secs_f64(), 6)
                .f64(s.load, 4)
                .f64(s.normalized_root_latency, 4)
                .f64(s.emu, 4)
                .f64(s.be_throughput, 4)
                .end();
        }
        out
    }

    /// The latency series (normalized to the SLO) for plotting.
    pub fn latency_series(&self) -> TimeSeries {
        let mut series = TimeSeries::new("normalized_root_latency");
        for s in &self.steps {
            series.push(s.time, s.normalized_root_latency);
        }
        series
    }

    /// The EMU series for plotting.
    pub fn emu_series(&self) -> TimeSeries {
        let mut series = TimeSeries::new("effective_machine_utilization");
        for s in &self.steps {
            series.push(s.time, s.emu);
        }
        series
    }
}

/// The websearch cluster simulation.
#[derive(Debug)]
pub struct WebsearchCluster {
    config: ClusterConfig,
    server_config: ServerConfig,
    trace: DiurnalTrace,
    slo_target_s: f64,
}

impl WebsearchCluster {
    /// Creates a cluster experiment.  The cluster SLO target is calibrated as
    /// the root latency at 90% load with no colocation (the paper's
    /// definition).
    pub fn new(config: ClusterConfig, server_config: ServerConfig) -> Self {
        let trace = DiurnalTrace::websearch_12h(config.seed);
        let slo_target_s = Self::calibrate_slo(&config, &server_config);
        WebsearchCluster { config, server_config, trace, slo_target_s }
    }

    /// The calibrated cluster SLO target, in seconds.
    pub fn slo_target_s(&self) -> f64 {
        self.slo_target_s
    }

    /// The load trace driving the experiment.
    pub fn trace(&self) -> &DiurnalTrace {
        &self.trace
    }

    fn calibrate_slo(config: &ClusterConfig, server_config: &ServerConfig) -> f64 {
        // Root latency at 90% load without colocation.
        let mut leaves: Vec<ColoRunner> = (0..config.leaves.max(1))
            .map(|i| {
                ColoRunner::new(
                    server_config.clone(),
                    LcWorkload::websearch(),
                    None,
                    Box::new(LcOnly::new()),
                    config.colo.with_seed(config.seed ^ (0x5EAF + i as u64)),
                )
            })
            .collect();
        let mut worst_mean = 0.0_f64;
        for _ in 0..config.windows_per_step.max(2) {
            let mut sum = 0.0;
            for leaf in &mut leaves {
                sum += leaf.step(0.90).tail_latency_s;
            }
            worst_mean = worst_mean.max(sum / leaves.len() as f64);
        }
        worst_mean
    }

    fn make_leaf(&self, index: usize) -> ColoRunner {
        let websearch = LcWorkload::websearch();
        let seed = self.config.seed ^ (0xC1A5 + index as u64 * 7919);
        let colo = self.config.colo.with_seed(seed);
        match self.config.policy {
            ClusterPolicy::Baseline => ColoRunner::new(
                self.server_config.clone(),
                websearch,
                None,
                Box::new(LcOnly::new()),
                colo,
            ),
            ClusterPolicy::Heracles => {
                // brain on half of the leaves, streetview on the other half,
                // as in the paper's cluster experiment.
                let be = if index.is_multiple_of(2) {
                    BeWorkload::brain()
                } else {
                    BeWorkload::streetview()
                };
                // All leaves share one offline DRAM model even though each
                // serves a different shard (the paper does the same and notes
                // the controller tolerates the resulting model error).
                let dram_model = OfflineDramModel::profile(&websearch, &self.server_config);
                // Every leaf defends a uniform tail-latency target chosen so
                // that the root meets the cluster SLO (§5.3): since the root
                // latency is the average of the leaf tails, the per-leaf
                // target is the cluster target itself.
                let leaf_slo = Slo::new(self.slo_target_s, websearch.slo().percentile);
                let policy: Box<dyn ColocationPolicy> =
                    Box::new(Heracles::new(HeraclesConfig::default(), leaf_slo, dram_model));
                ColoRunner::new(self.server_config.clone(), websearch, Some(be), policy, colo)
            }
        }
    }

    /// Runs the experiment and returns the per-step results.
    pub fn run(&self) -> ClusterResult {
        let mut leaves: Vec<ColoRunner> =
            (0..self.config.leaves.max(1)).map(|i| self.make_leaf(i)).collect();
        let step_duration = self.config.colo.window * self.config.windows_per_step as u64;
        let mut steps = Vec::with_capacity(self.config.steps);
        for step_idx in 0..self.config.steps {
            let time = SimTime::ZERO + step_duration * (step_idx as u64 + 1);
            let load = self.trace.load_at(time);
            let mut latency_sum = 0.0;
            let mut emu_sum = 0.0;
            let mut be_sum = 0.0;
            for leaf in leaves.iter_mut() {
                let mut last_latency = 0.0;
                let mut last_emu = 0.0;
                let mut last_be = 0.0;
                for _ in 0..self.config.windows_per_step {
                    let record = leaf.step(load);
                    last_latency = record.tail_latency_s;
                    last_emu = record.emu;
                    last_be = record.be_throughput;
                }
                latency_sum += last_latency;
                emu_sum += last_emu;
                be_sum += last_be;
            }
            let n = leaves.len() as f64;
            steps.push(ClusterStep {
                time,
                load,
                normalized_root_latency: (latency_sum / n) / self.slo_target_s,
                emu: emu_sum / n,
                be_throughput: be_sum / n,
            });
        }
        ClusterResult { policy: self.config.policy, steps, slo_target_s: self.slo_target_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_target_is_calibrated_from_ninety_percent_load() {
        let cluster =
            WebsearchCluster::new(ClusterConfig::fast_test(), ServerConfig::default_haswell());
        let target = cluster.slo_target_s();
        // Root latency at 90% load is positive and below the per-leaf SLO.
        assert!(target > 0.001);
        assert!(target < LcWorkload::websearch().slo().target_s);
    }

    #[test]
    fn baseline_cluster_meets_its_slo_and_tracks_load() {
        let config =
            ClusterConfig { policy: ClusterPolicy::Baseline, ..ClusterConfig::fast_test() };
        let result = WebsearchCluster::new(config, ServerConfig::default_haswell()).run();
        assert_eq!(result.steps.len(), config.steps);
        assert_eq!(result.violation_fraction(), 0.0);
        // Without colocation EMU equals the websearch load.
        for step in &result.steps {
            assert!((step.emu - step.load).abs() < 1e-9);
            assert_eq!(step.be_throughput, 0.0);
        }
    }

    #[test]
    fn heracles_cluster_raises_emu_without_slo_violations() {
        let config = ClusterConfig { steps: 30, ..ClusterConfig::fast_test() };
        let baseline_cfg = ClusterConfig { policy: ClusterPolicy::Baseline, ..config };
        let server = ServerConfig::default_haswell();
        let heracles = WebsearchCluster::new(config, server.clone()).run();
        let baseline = WebsearchCluster::new(baseline_cfg, server).run();
        // The root-derived per-leaf latency target leaves less room for
        // colocation than the standalone per-leaf SLO, so the EMU gain in
        // this short run is modest — but it must be a gain, with zero
        // violations (see EXPERIMENTS.md for the discussion).
        assert!(
            heracles.mean_emu() > baseline.mean_emu() + 0.02,
            "heracles EMU {:.2} vs baseline {:.2}",
            heracles.mean_emu(),
            baseline.mean_emu()
        );
        assert_eq!(
            heracles.violation_fraction(),
            0.0,
            "violations in {:?}",
            heracles
                .steps
                .iter()
                .filter(|s| s.normalized_root_latency > 1.0)
                .map(|s| s.normalized_root_latency)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn series_exports_match_steps() {
        let config = ClusterConfig { steps: 6, ..ClusterConfig::fast_test() };
        let result = WebsearchCluster::new(config, ServerConfig::default_haswell()).run();
        assert_eq!(result.latency_series().len(), 6);
        assert_eq!(result.emu_series().len(), 6);
        // CSV: header plus one row per step.
        assert_eq!(result.to_csv().lines().count(), 7);
    }

    #[test]
    fn empty_result_aggregates_are_zero_not_nan() {
        let empty = ClusterResult {
            policy: ClusterPolicy::Heracles,
            steps: Vec::new(),
            slo_target_s: 0.02,
        };
        assert_eq!(empty.mean_emu(), 0.0);
        assert_eq!(empty.min_emu(), 0.0);
        assert_eq!(empty.violation_fraction(), 0.0);
        assert!(empty.mean_emu().is_finite());
        assert!(empty.min_emu().is_finite());
        assert_eq!(empty.to_csv().lines().count(), 1);
    }
}
