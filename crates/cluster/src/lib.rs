//! Cluster-level evaluation: the websearch fan-out cluster of §5.3 and the
//! TCO analysis.
//!
//! * [`WebsearchCluster`] — a root node fanning every query out to tens of
//!   leaf servers.  Each leaf runs its own [`ColoRunner`] (websearch plus a
//!   production BE task) under its own per-server Heracles instance, exactly
//!   as the paper deploys it; the root-level latency is derived from the leaf
//!   latencies and compared against an SLO set from the 90%-load baseline.
//! * [`TcoModel`] — the Barroso et al. total-cost-of-ownership calculator
//!   with the parameters of the paper's case study, used to turn utilization
//!   gains into throughput/TCO improvements.
//!
//! [`ColoRunner`]: heracles_colo::ColoRunner

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod tco;

pub use cluster::{ClusterConfig, ClusterResult, ClusterStep, WebsearchCluster};
pub use tco::TcoModel;
