//! Property tests for the elastic controller's invariants:
//!
//! * a server is never retired while it still hosts unmigrated resident
//!   jobs — the drain protocol migrates (or, priced out, requeues) every
//!   resident first, for any policy, fleet shape, mix and seed (the store's
//!   `retire` assert backs this up by panicking the whole run otherwise),
//! * nothing is ever placed or migrated onto a retired server,
//! * the elastic fleet never leaves its configured size envelope,
//! * the work ledger balances: BE core·seconds served equals the demand
//!   (plus migration overhead) drawn down across the job ledger,
//! * identical seeds yield identical scale-action sequences — and identical
//!   whole runs — for every autoscaling policy.

use std::collections::HashMap;

use proptest::prelude::*;

use heracles_autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet, ScaleEventKind};
use heracles_colo::ColoConfig;
use heracles_fleet::{
    FleetConfig, FleetEventKind, GenerationMix, JobStreamConfig, PolicyKind, ServerId,
};
use heracles_hw::ServerConfig;

/// A small mixed-generation elastic scenario that still scales both ways:
/// drains fire within a handful of idle steps, and the arrival knob can
/// push the queue hard enough to strand jobs and trigger purchases.
fn scenario(servers: usize, steps: usize, seed: u64, arrivals: f64) -> AutoscaleConfig {
    let fleet = FleetConfig {
        servers,
        steps,
        windows_per_step: 2,
        seed,
        mix: GenerationMix::mixed_datacenter(),
        colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
        ..FleetConfig::fast_test()
    };
    let mut config = AutoscaleConfig::diurnal(fleet);
    config.fleet.jobs = JobStreamConfig {
        arrivals_per_step: arrivals,
        demand_min_core_s: 60.0,
        demand_max_core_s: 600.0,
        ..config.fleet.jobs
    };
    config.min_servers = 1;
    config
}

fn run(config: AutoscaleConfig, kind: AutoscaleKind) -> heracles_autoscale::AutoscaleResult {
    ElasticFleet::new(config, ServerConfig::default_haswell(), PolicyKind::LeastLoaded, kind).run()
}

proptest! {
    /// Retirement safety and ledger balance, for any policy, fleet shape
    /// and seed.  The run itself is the first assertion: `retire` panics on
    /// a server with resident jobs, so an unsafe drain cannot complete.
    #[test]
    fn retirement_never_strands_resident_jobs(
        servers in 2usize..6,
        steps in 6usize..10,
        seed in 0u64..500,
        arrivals in 0.2f64..1.5,
        kind_idx in 0usize..4,
    ) {
        let kind = AutoscaleKind::all()[kind_idx];
        let config = scenario(servers, steps, seed, arrivals);
        let (min_servers, max_servers) = (config.min_servers, config.max_servers);
        let result = run(config, kind);

        // Nothing lands on a retired server: placements and migration
        // destinations after a retirement are scheduler bugs.
        let retired_at: HashMap<ServerId, usize> = result
            .events
            .iter()
            .filter_map(|e| match e.kind {
                ScaleEventKind::Retired { server } => Some((server, e.step)),
                _ => None,
            })
            .collect();
        for event in &result.fleet.events {
            if let Some(&retired) = retired_at.get(&event.server) {
                let lands = matches!(
                    event.kind,
                    FleetEventKind::Placed | FleetEventKind::Migrated
                );
                prop_assert!(
                    !(lands && event.step >= retired),
                    "{:?} targeted server {} retired before step {}",
                    event.kind, event.server, retired
                );
            }
        }

        // The fleet never leaves its size envelope.
        for step in &result.fleet.steps {
            prop_assert!(step.in_service_servers >= min_servers);
            prop_assert!(step.in_service_servers <= max_servers);
        }

        // The work ledger balances: served core·seconds equal the drawdown
        // of demand plus migration overhead across all jobs — a migration
        // preserves remaining demand exactly (plus its priced surcharge),
        // it never wipes or duplicates work.
        let drawdown: f64 = result
            .fleet
            .jobs
            .iter()
            .map(|j| j.demand_core_s + j.migration_overhead_core_s - j.remaining_core_s)
            .sum();
        let served = result.fleet.be_core_s_served();
        prop_assert!(
            (served - drawdown).abs() < 1e-6 * (1.0 + served),
            "served {served} != ledger drawdown {drawdown}"
        );

        // Migration counters agree between the audit log and the ledger.
        prop_assert_eq!(result.drain_migrations(), result.fleet.migrations());
    }

    /// Identical seeds give identical scale-action sequences — and
    /// identical whole runs — for every policy; different seeds diverge
    /// somewhere in the job ledger.
    #[test]
    fn identical_seeds_give_identical_scale_sequences(
        seed in 0u64..200,
        kind_idx in 0usize..4,
    ) {
        let kind = AutoscaleKind::all()[kind_idx];
        let config = scenario(4, 8, seed, 0.8);
        let a = run(config, kind);
        let b = run(config, kind);
        prop_assert_eq!(&a.events, &b.events, "scale sequences diverged");
        prop_assert_eq!(&a.fleet.events, &b.fleet.events);
        prop_assert_eq!(&a.fleet.steps, &b.fleet.steps);
        prop_assert_eq!(&a.fleet.jobs, &b.fleet.jobs);

        let c = run(scenario(4, 8, seed ^ 0x5EED5, 0.8), kind);
        prop_assert!(
            a.fleet.jobs != c.fleet.jobs || a.fleet.events != c.fleet.events,
            "different seeds produced identical runs"
        );
    }
}
