//! Scale actions, the controller's audit log, and the per-step signal
//! bundle policies decide from.

use heracles_fleet::{Generation, JobId, ServerId};
use serde::{Deserialize, Serialize};

/// What an [`AutoscalePolicy`](crate::AutoscalePolicy) may ask the elastic
/// controller to do at a step boundary.
///
/// Scale-out names the hardware generation to purchase — an autoscaler does
/// not buy "a server", it buys the generation with the best marginal BE
/// throughput per TCO dollar (see [`GenerationMarket`](crate::GenerationMarket)).
/// Scale-in names the server to drain; the controller then live-migrates its
/// residents away and retires it once empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleAction {
    /// No change this step.
    Hold,
    /// Purchase and commission one server of the given generation.
    ScaleOut {
        /// The hardware generation to buy.
        generation: Generation,
    },
    /// Begin draining the given server towards retirement.
    ScaleIn {
        /// The server to drain.
        server: ServerId,
    },
}

/// One entry of the elastic controller's audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleEventKind {
    /// A server was purchased and commissioned.
    Bought {
        /// The generation purchased.
        generation: Generation,
        /// The id the new server was commissioned under.
        server: ServerId,
    },
    /// A server began draining (scale-in, phase one).
    DrainStarted {
        /// The draining server.
        server: ServerId,
    },
    /// A resident job was live-migrated off a draining server.
    Migrated {
        /// The migrated job.
        job: JobId,
        /// The drained server it left.
        from: ServerId,
        /// The destination it now runs on.
        to: ServerId,
    },
    /// A resident job was requeued instead of migrated — the drain pricer
    /// judged the migration overhead to exceed the job's residual demand.
    DrainRequeued {
        /// The requeued job.
        job: JobId,
        /// The drained server it left.
        from: ServerId,
    },
    /// An empty draining server was retired (scale-in, phase two).
    Retired {
        /// The retired server.
        server: ServerId,
    },
}

/// A scale event with the step it happened before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Index of the step the event preceded.
    pub step: usize,
    /// What happened.
    pub kind: ScaleEventKind,
}

/// Everything a policy sees when deciding a step's scale action.
///
/// The queue-side signals follow the censored-job accounting of
/// `QueueingDelaySummary`: a *stranded* job has never started and has
/// already waited at least one full step — the population whose wait the
/// survivors-only mean hides, and exactly the evidence that the fleet is
/// undersized.  The forecast pair (`mean_load`, `load_ahead`) is what lets
/// a diurnal-phase-aware policy act before the peak instead of after it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleSignals {
    /// Index of the step about to run.
    pub step: usize,
    /// Jobs currently waiting in the queue (started or not).
    pub queued_jobs: usize,
    /// Never-started jobs that have waited at least one full step.
    pub stranded_jobs: usize,
    /// Longest wait among never-started queued jobs, in whole steps.
    pub oldest_wait_steps: usize,
    /// Servers currently active (excludes draining and retired).
    pub active_servers: usize,
    /// Servers currently draining.
    pub draining_servers: usize,
    /// Free BE slots across admitting servers *other than* the drain
    /// candidate — the capacity that would absorb the candidate's migrated
    /// residents.
    pub free_slots_elsewhere: usize,
    /// Resident jobs on the drain candidate (0 when the candidate is empty
    /// or absent).  Together with [`free_slots_elsewhere`] this is what
    /// makes consolidation drains capacity-aware: an occupied box is only
    /// shed when its residents fit elsewhere with spare room.
    ///
    /// [`free_slots_elsewhere`]: ScaleSignals::free_slots_elsewhere
    pub drain_candidate_residents: usize,
    /// Core-weighted mean LC load the next step will sample.
    pub mean_load: f64,
    /// Core-weighted mean LC load `forecast_lead_steps` ahead.
    pub load_ahead: f64,
    /// Floor on active servers (the controller refuses to drain below it).
    pub min_servers: usize,
    /// Ceiling on in-service servers (the controller refuses to buy above
    /// it).
    pub max_servers: usize,
    /// The generation the market currently rates the best buy.
    pub best_buy: Generation,
    /// The active server the market rates cheapest to shed, if any.
    pub drain_candidate: Option<ServerId>,
    /// The load fraction the drain candidate's service pool would run at
    /// if the candidate were retired and its traffic re-routed across the
    /// survivors (the worst of the next step and the forecast horizon;
    /// 0 when there is no candidate).  Scale-in is not free capacity
    /// shedding: the re-routed share is added load that can push the
    /// survivors over their latency knee, and this is the number a policy
    /// prices that risk with.
    pub post_shed_load: f64,
    /// The energy price the fleet is currently billed at, in dollars per
    /// kWh (the configured [`EnergyPriceSchedule`] sampled at the
    /// represented hour of day; PUE is applied at billing time, not here).
    ///
    /// [`EnergyPriceSchedule`]: heracles_fleet::EnergyPriceSchedule
    pub energy_price_per_kwh: f64,
    /// The schedule's daily mean price, in dollars per kWh — the reference
    /// an energy-aware policy compares the current price against to decide
    /// whether this hour is cheap or expensive.
    pub energy_price_mean_per_kwh: f64,
}

impl ScaleSignals {
    /// Servers in service (active plus draining) — what the purchase
    /// ceiling counts.
    pub fn in_service(&self) -> usize {
        self.active_servers + self.draining_servers
    }

    /// True if the purchase ceiling still has room.
    pub fn can_buy(&self) -> bool {
        self.in_service() < self.max_servers
    }

    /// True if draining one more server would keep the active floor.
    pub fn can_sell(&self) -> bool {
        self.active_servers > self.min_servers
    }

    /// Current-to-daily-mean energy price ratio: above 1 this hour is
    /// pricier than average, below 1 it is cheaper.  Returns 1 for a flat
    /// or degenerate schedule, so price-gated branches simply never fire
    /// when energy pricing carries no signal.
    pub fn energy_price_ratio(&self) -> f64 {
        if self.energy_price_mean_per_kwh > 0.0 {
            self.energy_price_per_kwh / self.energy_price_mean_per_kwh
        } else {
            1.0
        }
    }
}
