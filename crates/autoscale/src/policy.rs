//! Autoscaling policies: when to buy, when to shed.
//!
//! All policies see the same [`ScaleSignals`] and answer with one
//! [`ScaleAction`] per step (one action per step is the controller's
//! natural rate limit).  They differ in what they look at:
//!
//! * [`StaticPolicy`] — never scales.  The baseline every elastic policy is
//!   judged against: same fleet, same job stream, full TCO bill.
//! * [`ReactivePolicy`] — queue-driven thresholds with hysteresis and
//!   cooldown: buys when stranded (never-started, censored) jobs
//!   accumulate, sheds after a sustained idle streak with spare admitting
//!   capacity.  Reacts *after* the evidence appears.
//! * [`PredictivePolicy`] — additionally reads the diurnal forecast: a
//!   climbing load projection means the fleet is about to lose BE headroom,
//!   so it pre-provisions ahead of the peak (a queue is forming *and* the
//!   peak is coming — buy now, while the box still helps); a falling
//!   projection halves the scale-in hysteresis, shedding promptly once the
//!   peak has passed.
//! * [`EnergyAwarePolicy`] — the reactive core plus the energy price
//!   signal: during expensive hours it defers BE-backlog purchases (batch
//!   work waits for cheap power) and sheds with half the idle hysteresis;
//!   during cheap hours it buys on a lighter backlog, pulling deferred
//!   work into the cheap window.  The LC rebuy defense is never deferred —
//!   latency compliance is not traded for an energy dollar.

use serde::{Deserialize, Serialize};

use crate::action::{ScaleAction, ScaleSignals};

/// A fleet-level autoscaling policy.
///
/// Implementations must be deterministic functions of the signal sequence:
/// identical runs see identical signals and must emit identical actions
/// (the crate's property tests pin this).
pub trait AutoscalePolicy: Send {
    /// Short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// Decides this step's scale action.
    fn decide(&mut self, signals: &ScaleSignals) -> ScaleAction;
}

/// The built-in autoscaling policies, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AutoscaleKind {
    /// Never scales (the fixed-fleet baseline).
    Static,
    /// Queue-threshold scaling with hysteresis and cooldown.
    Reactive,
    /// Reactive plus diurnal-forecast pre-provisioning.
    Predictive,
    /// Reactive plus energy-price awareness: shifts BE work toward
    /// cheap-energy hours.
    EnergyAware,
}

impl AutoscaleKind {
    /// All built-in policies, in reporting order.
    pub fn all() -> [AutoscaleKind; 4] {
        [
            AutoscaleKind::Static,
            AutoscaleKind::Reactive,
            AutoscaleKind::Predictive,
            AutoscaleKind::EnergyAware,
        ]
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            AutoscaleKind::Static => "static",
            AutoscaleKind::Reactive => "reactive",
            AutoscaleKind::Predictive => "predictive",
            AutoscaleKind::EnergyAware => "energy-aware",
        }
    }

    /// Builds the policy with its default tuning.
    pub fn build(self) -> Box<dyn AutoscalePolicy> {
        match self {
            AutoscaleKind::Static => Box::new(StaticPolicy),
            AutoscaleKind::Reactive => Box::new(ReactivePolicy::new(ReactiveConfig::default())),
            AutoscaleKind::Predictive => {
                Box::new(PredictivePolicy::new(PredictiveConfig::default()))
            }
            AutoscaleKind::EnergyAware => {
                Box::new(EnergyAwarePolicy::new(EnergyAwareConfig::default()))
            }
        }
    }
}

impl std::str::FromStr for AutoscaleKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(AutoscaleKind::Static),
            "reactive" => Ok(AutoscaleKind::Reactive),
            "predictive" => Ok(AutoscaleKind::Predictive),
            "energy-aware" => Ok(AutoscaleKind::EnergyAware),
            other => Err(format!(
                "unknown autoscaler {other:?} (expected static, reactive, predictive or energy-aware)"
            )),
        }
    }
}

/// The fixed-fleet baseline: never scales.
#[derive(Debug, Default)]
pub struct StaticPolicy;

impl AutoscalePolicy for StaticPolicy {
    fn name(&self) -> &str {
        "static"
    }

    fn decide(&mut self, _signals: &ScaleSignals) -> ScaleAction {
        ScaleAction::Hold
    }
}

/// Tuning of [`ReactivePolicy`] (shared by [`PredictivePolicy`]'s reactive
/// core).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactiveConfig {
    /// Stranded (never-started, waited ≥ one step) jobs that trigger a
    /// purchase.
    pub scale_out_stranded: usize,
    /// Steps the oldest stranded job must have waited before a purchase —
    /// one overloaded dispatch round is noise, a persistent backlog is not.
    pub scale_out_wait_steps: usize,
    /// Consecutive empty-queue steps required before shedding a server
    /// (the scale-in side of the hysteresis).
    pub scale_in_idle_steps: usize,
    /// Free admitting BE slots that must remain *elsewhere* after the
    /// candidate's residents have been absorbed — the consolidation guard.
    /// An empty candidate needs only this spare; an occupied one
    /// additionally needs a free slot per resident, so a drain never sheds
    /// capacity its migrations cannot land on.
    pub scale_in_spare_slots: usize,
    /// Steps between a purchase and the next action.  Shorter than the
    /// scale-in cooldown — the asymmetry every production autoscaler ships
    /// with: under-capacity strands work *now*, over-capacity merely costs
    /// a few amortized dollars, so scale out fast, scale in slow.
    pub scale_out_cooldown_steps: usize,
    /// Steps between a drain and the next action (the slow side of the
    /// asymmetry: the fleet needs to show the effect of the last shed
    /// before the policy may judge another one safe).
    pub scale_in_cooldown_steps: usize,
    /// Ceiling on the candidate pool's projected post-shed load
    /// ([`ScaleSignals::post_shed_load`]): a drain is refused when the
    /// re-routed LC share would push the surviving leaves' pool past this
    /// fraction of capacity.  The default sits at the leaf controllers' BE
    /// *re-enable* threshold — shedding into a pool projected above it
    /// guarantees the survivors park their batch work and flirt with their
    /// latency knee, which is SLO risk no amortized dollar saving pays for.
    pub shed_load_ceiling: f64,
    /// Observed fleet load at which capacity is bought back regardless of
    /// the BE queue.  Under the conserving traffic plane a shrunken pool
    /// can sit past its latency knee with an *empty* queue — LC overload
    /// produces no stranded-job evidence, only violations — so the policy
    /// needs load evidence too.  The default sits just past the natural
    /// diurnal peak: a pool observed there is over-demand (its traffic no
    /// longer fits the leaves it has), not merely busy — the natural peak
    /// alone never crosses it, so a healthy full-size fleet is never
    /// bought above its provision.
    pub rebuy_load_ceiling: f64,
}

impl Default for ReactiveConfig {
    fn default() -> Self {
        ReactiveConfig {
            scale_out_stranded: 3,
            scale_out_wait_steps: 2,
            scale_in_idle_steps: 4,
            scale_in_spare_slots: 1,
            scale_out_cooldown_steps: 2,
            scale_in_cooldown_steps: 4,
            shed_load_ceiling: 0.80,
            rebuy_load_ceiling: 0.92,
        }
    }
}

impl ReactiveConfig {
    /// The aggressive-consolidation tuning: sheds on the shortest idle
    /// streak, with no cooldown between drains and — crucially — *no*
    /// post-shed load ceiling.  This is the behaviour the old
    /// per-server-trace fleet silently modelled (a retired server's LC
    /// share evaporated, so shedding looked free); under the conserving
    /// traffic plane it demonstrably buys SLO violations, which is exactly
    /// what the integration tests use it to show.
    pub fn aggressive() -> Self {
        ReactiveConfig {
            scale_in_idle_steps: 1,
            scale_in_cooldown_steps: 1,
            shed_load_ceiling: f64::INFINITY,
            rebuy_load_ceiling: f64::INFINITY,
            ..Self::default()
        }
    }
}

/// Queue-threshold autoscaling with hysteresis and cooldown.
#[derive(Debug)]
pub struct ReactivePolicy {
    config: ReactiveConfig,
    idle_streak: usize,
    /// First step at which the next action is allowed (set from the
    /// per-direction cooldowns when an action fires).
    cooldown_until: usize,
}

impl ReactivePolicy {
    /// Creates the policy with the given tuning.
    pub fn new(config: ReactiveConfig) -> Self {
        ReactivePolicy { config, idle_streak: 0, cooldown_until: 0 }
    }

    fn cooled(&self, step: usize) -> bool {
        step >= self.cooldown_until
    }

    fn record_scale_out(&mut self, step: usize) {
        self.cooldown_until = step + self.config.scale_out_cooldown_steps;
    }

    /// The per-step hysteresis bookkeeping.  Runs every step for every
    /// decision path — a wrapper that takes an action before delegating to
    /// [`decide_with`](Self::decide_with) must still call this first, or a
    /// stale idle streak from before its action could trigger a scale-in
    /// moments after a purchase.
    fn note_queue(&mut self, signals: &ScaleSignals) {
        if signals.queued_jobs == 0 {
            self.idle_streak += 1;
        } else {
            self.idle_streak = 0;
        }
    }

    /// The shared decision core: `idle_needed` lets a wrapper relax the
    /// scale-in hysteresis, and `defer_be_buy` lets the energy-aware
    /// wrapper suppress the BE-backlog purchase during expensive hours
    /// (the LC rebuy defense fires regardless — stranded batch work can
    /// wait for cheap power, an overloaded LC pool cannot).  Assumes
    /// [`note_queue`](Self::note_queue) already ran this step.
    fn decide_with(
        &mut self,
        signals: &ScaleSignals,
        idle_needed: usize,
        defer_be_buy: bool,
    ) -> ScaleAction {
        if !self.cooled(signals.step) {
            return ScaleAction::Hold;
        }
        // LC SLO defense first: a pool observed past the controllers' BE
        // disable threshold is already past its knee — re-routed scale-in
        // load got it there, and no BE-queue evidence will ever appear
        // (batch work is simply parked).  Buy back capacity now.
        if signals.mean_load >= self.config.rebuy_load_ceiling && signals.can_buy() {
            self.record_scale_out(signals.step);
            return ScaleAction::ScaleOut { generation: signals.best_buy };
        }
        if !defer_be_buy
            && signals.stranded_jobs >= self.config.scale_out_stranded
            && signals.oldest_wait_steps >= self.config.scale_out_wait_steps
            && signals.can_buy()
        {
            self.record_scale_out(signals.step);
            return ScaleAction::ScaleOut { generation: signals.best_buy };
        }
        if self.idle_streak >= idle_needed
            && signals.free_slots_elsewhere
                >= signals.drain_candidate_residents + self.config.scale_in_spare_slots
            && signals.can_sell()
            && signals.draining_servers == 0
            && signals.post_shed_load <= self.config.shed_load_ceiling
        {
            if let Some(server) = signals.drain_candidate {
                self.cooldown_until = signals.step + self.config.scale_in_cooldown_steps;
                self.idle_streak = 0;
                return ScaleAction::ScaleIn { server };
            }
        }
        ScaleAction::Hold
    }
}

impl AutoscalePolicy for ReactivePolicy {
    fn name(&self) -> &str {
        "reactive"
    }

    fn decide(&mut self, signals: &ScaleSignals) -> ScaleAction {
        self.note_queue(signals);
        let idle_needed = self.config.scale_in_idle_steps;
        self.decide_with(signals, idle_needed, false)
    }
}

/// Tuning of [`PredictivePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// The reactive core's thresholds.
    pub reactive: ReactiveConfig,
    /// Load climb (forecast minus current, in load fraction) that triggers
    /// pre-provisioning when any queue has formed.
    pub climb_threshold: f64,
    /// Load fall below which the scale-in hysteresis is halved (the peak
    /// has passed; idle capacity will not be needed again soon).
    pub fall_threshold: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            reactive: ReactiveConfig::default(),
            climb_threshold: 0.06,
            fall_threshold: 0.06,
        }
    }
}

/// Diurnal-phase-aware autoscaling: the reactive core plus forecast-driven
/// pre-provisioning ahead of the load peak and prompt shedding after it.
#[derive(Debug)]
pub struct PredictivePolicy {
    config: PredictiveConfig,
    core: ReactivePolicy,
}

impl PredictivePolicy {
    /// Creates the policy with the given tuning.
    pub fn new(config: PredictiveConfig) -> Self {
        PredictivePolicy { config, core: ReactivePolicy::new(config.reactive) }
    }
}

impl AutoscalePolicy for PredictivePolicy {
    fn name(&self) -> &str {
        "predictive"
    }

    fn decide(&mut self, signals: &ScaleSignals) -> ScaleAction {
        self.core.note_queue(signals);
        let trend = signals.load_ahead - signals.mean_load;
        // LC SLO defense, ahead of time: if the forecast says the (possibly
        // shed-shrunken) pool will be past the re-buy line, buy *now* — by
        // the time the reactive core observes that load, the re-routed
        // share is already buying violations.  This is the signal that
        // lets a predictive fleet shed through the valley and still meet
        // the peak whole.
        if signals.load_ahead >= self.config.reactive.rebuy_load_ceiling
            && signals.can_buy()
            && self.core.cooled(signals.step)
        {
            self.core.record_scale_out(signals.step);
            return ScaleAction::ScaleOut { generation: signals.best_buy };
        }
        // Ahead of the peak: a forming queue plus a climbing forecast means
        // the fleet is about to lose BE headroom exactly when the backlog
        // needs it.  Buy now — the reactive trigger would only fire after
        // jobs have already stranded for several steps of the peak.
        if trend > self.config.climb_threshold
            && signals.queued_jobs > 0
            && signals.can_buy()
            && self.core.cooled(signals.step)
        {
            self.core.record_scale_out(signals.step);
            return ScaleAction::ScaleOut { generation: signals.best_buy };
        }
        // Past the peak the forecast only falls: shed with half the idle
        // hysteresis (capacity freed now stays free for the rest of the
        // descent).
        let idle_needed = if trend < -self.config.fall_threshold {
            (self.config.reactive.scale_in_idle_steps / 2).max(1)
        } else {
            self.config.reactive.scale_in_idle_steps
        };
        self.core.decide_with(signals, idle_needed, false)
    }
}

/// Tuning of [`EnergyAwarePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyAwareConfig {
    /// The reactive core's thresholds.
    pub reactive: ReactiveConfig,
    /// Current-to-daily-mean price ratio at or above which an hour counts
    /// as expensive: BE-backlog purchases are deferred and the scale-in
    /// hysteresis is halved.
    pub expensive_ratio: f64,
    /// Current-to-daily-mean price ratio at or below which an hour counts
    /// as cheap: a lighter backlog (half the stranded threshold, one step
    /// of wait) already justifies a purchase, pulling deferred BE work
    /// into the cheap window.
    pub cheap_ratio: f64,
}

impl Default for EnergyAwareConfig {
    fn default() -> Self {
        EnergyAwareConfig {
            reactive: ReactiveConfig::default(),
            expensive_ratio: 1.25,
            cheap_ratio: 0.80,
        }
    }
}

/// Energy-price-aware autoscaling: the reactive core plus the
/// [`ScaleSignals::energy_price_ratio`] signal, shifting BE work toward
/// cheap-energy hours.
///
/// During expensive hours the policy behaves like a descent-phase
/// predictive fleet — shed on half the idle hysteresis, refuse new
/// BE-backlog purchases — because every watt saved then is priced at the
/// peak tariff.  During cheap hours it buys on a lighter backlog, so work
/// deferred through the peak completes while the tariff is low.  Two
/// invariants bound the SLO cost: the LC rebuy defense (load past the
/// re-buy ceiling) fires at *any* price, and sheds remain gated by the
/// reactive core's post-shed-load ceiling — the policy only ever trades
/// BE latency, never LC compliance, for energy dollars.  Under a flat
/// schedule the price ratio is constantly 1 and the policy degenerates to
/// plain reactive.
#[derive(Debug)]
pub struct EnergyAwarePolicy {
    config: EnergyAwareConfig,
    core: ReactivePolicy,
}

impl EnergyAwarePolicy {
    /// Creates the policy with the given tuning.
    pub fn new(config: EnergyAwareConfig) -> Self {
        EnergyAwarePolicy { config, core: ReactivePolicy::new(config.reactive) }
    }
}

impl AutoscalePolicy for EnergyAwarePolicy {
    fn name(&self) -> &str {
        "energy-aware"
    }

    fn decide(&mut self, signals: &ScaleSignals) -> ScaleAction {
        self.core.note_queue(signals);
        let ratio = signals.energy_price_ratio();
        if ratio >= self.config.expensive_ratio {
            // Expensive hour: defer BE purchases (the backlog waits for
            // cheap power) and shed with half the hysteresis — idle
            // capacity burning peak-tariff watts is the most expensive
            // kind.  The rebuy defense inside the core still fires.
            let idle_needed = (self.config.reactive.scale_in_idle_steps / 2).max(1);
            return self.core.decide_with(signals, idle_needed, true);
        }
        if ratio <= self.config.cheap_ratio
            && signals.stranded_jobs >= (self.config.reactive.scale_out_stranded / 2).max(1)
            && signals.oldest_wait_steps >= 1
            && signals.can_buy()
            && self.core.cooled(signals.step)
        {
            // Cheap hour with a backlog forming: buy early, while the
            // joules the new box will burn are at the off-peak price.
            self.core.record_scale_out(signals.step);
            return ScaleAction::ScaleOut { generation: signals.best_buy };
        }
        self.core.decide_with(signals, self.config.reactive.scale_in_idle_steps, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_fleet::Generation;

    fn signals() -> ScaleSignals {
        ScaleSignals {
            step: 10,
            queued_jobs: 0,
            stranded_jobs: 0,
            oldest_wait_steps: 0,
            active_servers: 6,
            draining_servers: 0,
            free_slots_elsewhere: 6,
            drain_candidate_residents: 0,
            mean_load: 0.5,
            load_ahead: 0.5,
            min_servers: 2,
            max_servers: 12,
            best_buy: Generation::Newer,
            drain_candidate: Some(3),
            post_shed_load: 0.5,
            energy_price_per_kwh: 0.10,
            energy_price_mean_per_kwh: 0.10,
        }
    }

    #[test]
    fn kinds_round_trip_names() {
        for kind in AutoscaleKind::all() {
            assert_eq!(kind.name().parse::<AutoscaleKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!("nonsense".parse::<AutoscaleKind>().is_err());
    }

    #[test]
    fn static_policy_always_holds() {
        let mut policy = StaticPolicy;
        let mut s = signals();
        s.stranded_jobs = 100;
        s.oldest_wait_steps = 50;
        assert_eq!(policy.decide(&s), ScaleAction::Hold);
    }

    #[test]
    fn reactive_buys_on_stranded_backlog_and_respects_the_ceiling() {
        let mut policy = ReactivePolicy::new(ReactiveConfig::default());
        let mut s = signals();
        s.queued_jobs = 5;
        s.stranded_jobs = 4;
        s.oldest_wait_steps = 3;
        assert_eq!(policy.decide(&s), ScaleAction::ScaleOut { generation: Generation::Newer });
        // Cooldown: the immediately following step holds even with the
        // backlog still present.
        s.step += 1;
        assert_eq!(policy.decide(&s), ScaleAction::Hold);
        // At the ceiling nothing is bought.
        let mut full = ReactivePolicy::new(ReactiveConfig::default());
        s.step += 10;
        s.active_servers = 12;
        assert_eq!(full.decide(&s), ScaleAction::Hold);
    }

    #[test]
    fn reactive_sheds_only_after_a_sustained_idle_streak() {
        let mut policy = ReactivePolicy::new(ReactiveConfig::default());
        let mut s = signals();
        // Three idle steps: not yet.
        for _ in 0..3 {
            assert_eq!(policy.decide(&s), ScaleAction::Hold);
            s.step += 1;
        }
        // The fourth idle step trips the shed, naming the market's
        // candidate.
        assert_eq!(policy.decide(&s), ScaleAction::ScaleIn { server: 3 });
        // A single queued job resets the streak.
        let mut interrupted = ReactivePolicy::new(ReactiveConfig::default());
        let mut s2 = signals();
        interrupted.decide(&s2);
        s2.step += 1;
        s2.queued_jobs = 1;
        interrupted.decide(&s2);
        s2.step += 1;
        s2.queued_jobs = 0;
        assert_eq!(interrupted.decide(&s2), ScaleAction::Hold, "streak not reset");
    }

    #[test]
    fn reactive_never_sells_below_the_floor_or_while_draining() {
        let mut policy = ReactivePolicy::new(ReactiveConfig::default());
        let mut s = signals();
        s.active_servers = 2; // == min_servers
        for _ in 0..6 {
            assert_eq!(policy.decide(&s), ScaleAction::Hold);
            s.step += 1;
        }
        let mut draining = ReactivePolicy::new(ReactiveConfig::default());
        let mut s2 = signals();
        s2.draining_servers = 1;
        for _ in 0..6 {
            assert_eq!(draining.decide(&s2), ScaleAction::Hold);
            s2.step += 1;
        }
    }

    #[test]
    fn predictive_preprovisions_on_a_climbing_forecast() {
        let mut policy = PredictivePolicy::new(PredictiveConfig::default());
        let mut s = signals();
        // One queued job and a climbing forecast: the reactive trigger
        // (3 stranded, 2 steps) is nowhere near firing, but the peak is
        // coming — predictive buys now.
        s.queued_jobs = 1;
        s.load_ahead = 0.65;
        assert_eq!(policy.decide(&s), ScaleAction::ScaleOut { generation: Generation::Newer });
        // Without the climb, the same queue holds.
        let mut flat = PredictivePolicy::new(PredictiveConfig::default());
        s.load_ahead = 0.5;
        assert_eq!(flat.decide(&s), ScaleAction::Hold);
    }

    #[test]
    fn predictive_sheds_faster_on_the_descent() {
        let mut policy = PredictivePolicy::new(PredictiveConfig::default());
        let mut s = signals();
        s.load_ahead = 0.35; // falling past the threshold
                             // Half hysteresis: two idle steps suffice (4 / 2 = 2).
        assert_eq!(policy.decide(&s), ScaleAction::Hold);
        s.step += 1;
        assert_eq!(policy.decide(&s), ScaleAction::ScaleIn { server: 3 });
        // On a flat forecast the full four-step streak is still required.
        let mut flat = PredictivePolicy::new(PredictiveConfig::default());
        let mut s2 = signals();
        for _ in 0..3 {
            assert_eq!(flat.decide(&s2), ScaleAction::Hold);
            s2.step += 1;
        }
        assert_eq!(flat.decide(&s2), ScaleAction::ScaleIn { server: 3 });
    }

    #[test]
    fn shedding_is_refused_when_the_rerouted_share_risks_the_slo() {
        // Idle fleet, shed-ready — but retiring the candidate would push
        // its service pool past the knee: the policy holds instead.
        let mut policy = ReactivePolicy::new(ReactiveConfig::default());
        let mut s = signals();
        s.post_shed_load = 0.88;
        for _ in 0..8 {
            assert_eq!(policy.decide(&s), ScaleAction::Hold, "shed despite SLO risk");
            s.step += 1;
        }
        // Once the demand recedes, the same fleet sheds.
        s.post_shed_load = 0.6;
        assert_eq!(policy.decide(&s), ScaleAction::ScaleIn { server: 3 });

        // The aggressive tuning has no ceiling: it sheds straight into the
        // risk on the first idle step — the old API's hidden behaviour,
        // now an explicit opt-in.
        let mut reckless = ReactivePolicy::new(ReactiveConfig::aggressive());
        let mut s2 = signals();
        s2.post_shed_load = 1.2;
        assert_eq!(reckless.decide(&s2), ScaleAction::ScaleIn { server: 3 });
    }

    #[test]
    fn energy_aware_defers_be_buys_through_expensive_hours() {
        // A backlog that would make plain reactive buy immediately...
        let mut reactive = ReactivePolicy::new(ReactiveConfig::default());
        let mut s = signals();
        s.queued_jobs = 5;
        s.stranded_jobs = 4;
        s.oldest_wait_steps = 3;
        assert_eq!(reactive.decide(&s), ScaleAction::ScaleOut { generation: Generation::Newer });
        // ...is deferred at peak tariff: batch work waits for cheap power.
        let mut ea = EnergyAwarePolicy::new(EnergyAwareConfig::default());
        s.energy_price_per_kwh = 0.20;
        assert_eq!(ea.decide(&s), ScaleAction::Hold);
        // The LC rebuy defense is never deferred, at any price.
        s.mean_load = 0.95;
        assert_eq!(ea.decide(&s), ScaleAction::ScaleOut { generation: Generation::Newer });
    }

    #[test]
    fn energy_aware_sheds_faster_and_buys_earlier_off_peak() {
        // Expensive hour: half the idle hysteresis suffices for a shed.
        let mut ea = EnergyAwarePolicy::new(EnergyAwareConfig::default());
        let mut s = signals();
        s.energy_price_per_kwh = 0.20;
        assert_eq!(ea.decide(&s), ScaleAction::Hold);
        s.step += 1;
        assert_eq!(ea.decide(&s), ScaleAction::ScaleIn { server: 3 });

        // Cheap hour: a backlog below the reactive trigger (2 stranded,
        // 1 step of wait vs the default 3-and-2) already buys.
        let mut cheap = EnergyAwarePolicy::new(EnergyAwareConfig::default());
        let mut s2 = signals();
        s2.energy_price_per_kwh = 0.05;
        s2.queued_jobs = 2;
        s2.stranded_jobs = 2;
        s2.oldest_wait_steps = 1;
        assert_eq!(cheap.decide(&s2), ScaleAction::ScaleOut { generation: Generation::Newer });
        // At the mean price the same light backlog holds: the policy
        // degenerates to plain reactive on a flat schedule.
        let mut flat = EnergyAwarePolicy::new(EnergyAwareConfig::default());
        s2.energy_price_per_kwh = 0.10;
        assert_eq!(flat.decide(&s2), ScaleAction::Hold);
    }

    #[test]
    fn occupied_candidates_need_room_elsewhere() {
        // The consolidation guard: an occupied candidate is only shed when
        // its residents fit elsewhere with spare room.
        let mut policy = ReactivePolicy::new(ReactiveConfig::default());
        let mut s = signals();
        s.drain_candidate_residents = 2;
        s.free_slots_elsewhere = 2; // needs 2 + 1 spare
        for _ in 0..8 {
            assert_eq!(policy.decide(&s), ScaleAction::Hold);
            s.step += 1;
        }
        s.free_slots_elsewhere = 3;
        assert_eq!(policy.decide(&s), ScaleAction::ScaleIn { server: 3 });
    }
}
