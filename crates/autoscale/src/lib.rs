//! Elastic fleet controller: grow, shrink and re-shape the Heracles fleet
//! by marginal TCO.
//!
//! The paper's headline claim is economic — colocation raises effective
//! machine utilization and therefore cuts TCO at a fixed workload.  This
//! crate makes that claim *dynamic*: a fleet that grows and shrinks with
//! queue depth and diurnal phase should beat any static fleet on TCO per
//! unit of useful work.  It wraps the `heracles_fleet` scheduler in a
//! closed loop:
//!
//! * [`policy`] — the [`AutoscalePolicy`] trait and four built-ins:
//!   [`StaticPolicy`] (the fixed-fleet baseline), [`ReactivePolicy`]
//!   (censored-job/queue-depth thresholds with hysteresis and cooldown),
//!   [`PredictivePolicy`] (diurnal-phase-aware: pre-provisions ahead of the
//!   load peak, sheds promptly after it) and [`EnergyAwarePolicy`]
//!   (price-aware: defers BE purchases and sheds eagerly through
//!   expensive-tariff hours, buys on a lighter backlog while energy is
//!   cheap — shifting batch work into the cheap window without touching
//!   the LC rebuy defense),
//! * [`market`] — the [`GenerationMarket`]: scale-out buys the hardware
//!   generation with the best marginal BE throughput per TCO dollar (core
//!   count, platform-floor cost scaling and per-generation interference
//!   hostility all priced in),
//! * [`action`] — [`ScaleAction`] / [`ScaleSignals`] / the audit-log
//!   [`ScaleEvent`]s,
//! * [`elastic`] — the [`ElasticFleet`] loop itself, including the drain
//!   pricer: scale-in drains a server by *live-migrating* its resident jobs
//!   to the destinations with the best marginal headroom (remaining demand
//!   preserved, a migration cost in core·seconds charged), requeueing only
//!   jobs whose residual demand is smaller than the migration overhead, and
//!   retires a server only once it is empty.
//!
//! # Example
//!
//! ```
//! use heracles_autoscale::{AutoscaleConfig, AutoscaleKind, ElasticFleet};
//! use heracles_fleet::PolicyKind;
//! use heracles_hw::ServerConfig;
//!
//! let mut config = AutoscaleConfig::fast_test();
//! config.fleet.steps = 6;
//! config.fleet.servers = 4;
//! config.min_servers = 2;
//! config.max_servers = 8;
//! let result = ElasticFleet::new(
//!     config,
//!     ServerConfig::default_haswell(),
//!     PolicyKind::LeastLoaded,
//!     AutoscaleKind::Reactive,
//! )
//! .run();
//! assert_eq!(result.fleet.steps.len(), 6);
//! assert!(result.fleet.total_tco_dollars() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod elastic;
pub mod market;
pub mod policy;

pub use action::{ScaleAction, ScaleEvent, ScaleEventKind, ScaleSignals};
pub use elastic::{AutoscaleConfig, AutoscaleResult, ElasticFleet};
pub use market::GenerationMarket;
pub use policy::{
    AutoscaleKind, AutoscalePolicy, EnergyAwareConfig, EnergyAwarePolicy, PredictiveConfig,
    PredictivePolicy, ReactiveConfig, ReactivePolicy, StaticPolicy,
};
