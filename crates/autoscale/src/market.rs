//! The generation market: what scale-out should buy and scale-in should
//! shed, priced by marginal BE throughput per TCO dollar.
//!
//! The paper's economic argument is per-dollar, not per-server, and with
//! mixed generations the two diverge: a Skylake-class box costs more than a
//! Sandy-Bridge-class one but amortizes its platform overhead over three
//! times the cores, while the interference characterization can rate the
//! same BE mix far more hostile on a low-bandwidth older box (work placed
//! there is throttled by its own damage).  The market folds both into one
//! number per generation — expected marginal BE core·seconds per amortized
//! dollar — so "which generation?" is answered by the same currency the
//! autoscaled-vs-static comparison is judged in.

use heracles_cluster::TcoModel;
use heracles_fleet::{
    server_step_tco_dollars, EnergyConfig, FleetConfig, Generation, InterferenceModel,
    PlacementStore, ServerCapacity, ServerEntry, ServerId,
};
use heracles_hw::ServerConfig;
use heracles_workloads::{BeKind, LcKind, NUM_SERVICES};

/// Prices hardware generations for scale decisions.
#[derive(Debug, Clone)]
pub struct GenerationMarket {
    tco: TcoModel,
    model: InterferenceModel,
    kinds: Vec<BeKind>,
    capacities: [ServerCapacity; 3],
    /// The fleet's service shares, indexed by [`LcKind::index`]: a
    /// generation's interference pressure is averaged over the services a
    /// purchased leaf might serve, weighted by how much of the fleet each
    /// one is (hostility is a (hardware, service) property — iperf next to
    /// memkeyval is not iperf next to ml_cluster).
    service_shares: [f64; NUM_SERVICES],
    /// LC load a newly bought box is expected to serve on average over its
    /// tenure (the diurnal trace's midpoint): the capacity the LC service
    /// keeps is not available as marginal BE throughput.
    expected_load: f64,
}

impl GenerationMarket {
    /// Builds a market from the fleet's cost model, job mix, service mix
    /// and an interference model (pass
    /// [`InterferenceModel::from_scores`]`([])` for an uncharacterized
    /// market: every generation then gets the cautious default hostility
    /// and the ranking reduces to cores per dollar).
    pub fn new(config: &FleetConfig, baseline: &ServerConfig, model: InterferenceModel) -> Self {
        let capacities = Generation::all().map(|g| {
            ServerCapacity::from_config(
                &g.server_config(baseline),
                config.be_slots_per_server,
                g.index(),
            )
        });
        GenerationMarket {
            tco: config.tco,
            model,
            kinds: config.jobs.mix.workloads().iter().map(|w| w.kind()).collect(),
            capacities,
            service_shares: config.services.shares(),
            expected_load: 0.55,
        }
    }

    /// Re-prices the market's energy bill from the fleet's energy plane:
    /// the TCO model's electricity price becomes the schedule's daily mean
    /// and its PUE the energy config's, so value-per-dollar rankings see
    /// the same tariff the energy meter bills at.  Opt-in — a market built
    /// without this keeps the paper's §5.3 case-study constants, so runs
    /// without an energy plane are unchanged.
    pub fn with_energy_config(mut self, energy: &EnergyConfig) -> Self {
        self.tco.electricity_per_kwh = energy.price.daily_mean();
        self.tco.pue = energy.pue;
        self
    }

    /// The capacity record of one generation.
    pub fn capacity(&self, generation: Generation) -> ServerCapacity {
        self.capacities[generation.index()]
    }

    /// Mean saturating interference pressure of the job mix on a
    /// generation, in `[0, 1)`: how much of the generation's headroom the
    /// mix's hostility is expected to waste (a hostile antagonist on a
    /// low-bandwidth box spends its tenure disabled or throttled).
    /// Averaged over the fleet's service shares: a purchased leaf joins
    /// whichever pool is depleted, so its expected hostility is the
    /// share-weighted mean over the services it might serve.
    fn mean_pressure(&self, generation: Generation) -> f64 {
        if self.kinds.is_empty() {
            return 0.0;
        }
        let share_total: f64 = self.service_shares.iter().sum();
        if share_total <= 0.0 {
            return 0.0;
        }
        let total: f64 = self
            .kinds
            .iter()
            .map(|&kind| {
                LcKind::all()
                    .into_iter()
                    .map(|svc| {
                        let h = self.model.hostility(generation.index(), svc, kind);
                        self.service_shares[svc.index()] * h / (1.0 + h)
                    })
                    .sum::<f64>()
                    / share_total
            })
            .sum();
        total / self.kinds.len() as f64
    }

    /// Expected marginal BE throughput of a newly bought server of this
    /// generation, in cores: the compute the LC service leaves free at the
    /// expected load, discounted by the job mix's interference pressure on
    /// this hardware.
    pub fn marginal_be_cores(&self, generation: Generation) -> f64 {
        let cap = self.capacities[generation.index()];
        let free = cap.cores as f64 * (1.0 - self.expected_load);
        free * (1.0 - 0.5 * self.mean_pressure(generation))
    }

    /// Amortized cost of one server of this generation, in dollars per
    /// represented second at the expected utilization (capex plus energy,
    /// platform-floor-scaled to the generation's core count).
    pub fn dollars_per_second(&self, generation: Generation) -> f64 {
        server_step_tco_dollars(
            &self.tco,
            self.capacities[generation.index()].cores,
            self.expected_load,
            1.0,
        )
    }

    /// The market's single number per generation: expected marginal BE
    /// cores per amortized dollar-second.
    pub fn value_per_dollar(&self, generation: Generation) -> f64 {
        self.marginal_be_cores(generation) / self.dollars_per_second(generation)
    }

    /// The generation scale-out should purchase: best marginal BE
    /// throughput per TCO dollar, ties broken towards the older generation
    /// (deterministic).
    pub fn best_buy(&self) -> Generation {
        Generation::all()
            .into_iter()
            .fold(None::<(Generation, f64)>, |best, g| {
                let value = self.value_per_dollar(g);
                match best {
                    Some((_, bv)) if bv >= value => best,
                    _ => Some((g, value)),
                }
            })
            .map(|(g, _)| g)
            .expect("three generations exist")
    }

    /// The active server scale-in should shed first: worst generation value
    /// per dollar, then fewest residents (the cheapest drain), then lowest
    /// id — all deterministic.  A service's last in-service leaf is never a
    /// candidate: retiring it would leave that service's traffic with
    /// nowhere to go.
    pub fn sell_first(&self, store: &PlacementStore) -> Option<ServerId> {
        // Three generations exist; pricing each once beats re-deriving the
        // marginal-value quotient for every server on every comparison
        // (the old inner-loop cost that dominated large-fleet signal
        // assembly).  Same floats, computed once.
        let values = Generation::all().map(|g| self.value_per_dollar(g));
        let value = |s: &ServerEntry| values[s.generation];
        store
            .servers()
            .iter()
            .filter(|s| s.is_active() && store.in_service_leaves(s.service) > 1)
            .min_by(|a, b| {
                value(a)
                    .partial_cmp(&value(b))
                    .expect("market values are finite")
                    .then(a.resident.len().cmp(&b.resident.len()))
                    .then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_fleet::PolicyKind;
    use heracles_sim::SimTime;

    fn market(model: InterferenceModel) -> GenerationMarket {
        GenerationMarket::new(&FleetConfig::fast_test(), &ServerConfig::default_haswell(), model)
    }

    #[test]
    fn uncharacterized_market_ranks_by_cores_per_dollar() {
        let m = market(InterferenceModel::from_scores([]));
        // With uniform hostility the platform cost floor decides: the
        // 48-core box amortizes its fixed costs over the most cores.
        assert!(m.value_per_dollar(Generation::Newer) > m.value_per_dollar(Generation::Haswell));
        assert!(m.value_per_dollar(Generation::Haswell) > m.value_per_dollar(Generation::Older));
        assert_eq!(m.best_buy(), Generation::Newer);
        // All three prices are positive and finite.
        for g in Generation::all() {
            assert!(m.dollars_per_second(g) > 0.0);
            assert!(m.marginal_be_cores(g) > 0.0);
            assert!(m.value_per_dollar(g).is_finite());
        }
    }

    #[test]
    fn pricier_energy_raises_every_generation_price() {
        let base = market(InterferenceModel::from_scores([]));
        let pricey = market(InterferenceModel::from_scores([])).with_energy_config(
            &heracles_fleet::EnergyConfig {
                price: heracles_fleet::EnergyPriceSchedule::Flat { per_kwh: 0.40 },
                ..heracles_fleet::EnergyConfig::default()
            },
        );
        for g in Generation::all() {
            assert!(pricey.dollars_per_second(g) > base.dollars_per_second(g));
            assert!(pricey.value_per_dollar(g) < base.value_per_dollar(g));
        }
        // The default energy config *is* the paper's case study: wiring it
        // through changes nothing (up to the sampled daily mean's float
        // rounding).
        let neutral = market(InterferenceModel::from_scores([]))
            .with_energy_config(&heracles_fleet::EnergyConfig::default());
        for g in Generation::all() {
            let (n, b) = (neutral.value_per_dollar(g), base.value_per_dollar(g));
            assert!((n - b).abs() < 1e-9 * b, "neutral {n} != base {b}");
        }
    }

    #[test]
    fn hostility_on_a_generation_discounts_its_value() {
        // The production mix (brain + streetview) rated devastating on the
        // newer generation but benign on Haswell flips the purchase.
        let hostile_on_newer = InterferenceModel::from_scores([]);
        let _ = hostile_on_newer; // base case asserted above
        let skewed = market(InterferenceModel::from_generation_scores([
            ((2, BeKind::Brain), 400.0),
            ((2, BeKind::Streetview), 400.0),
            ((1, BeKind::Brain), 0.0),
            ((1, BeKind::Streetview), 0.0),
            ((0, BeKind::Brain), 0.0),
            ((0, BeKind::Streetview), 0.0),
        ]));
        assert!(
            skewed.value_per_dollar(Generation::Newer)
                < skewed.value_per_dollar(Generation::Haswell)
        );
        assert_ne!(skewed.best_buy(), Generation::Newer);
    }

    #[test]
    fn sell_first_picks_the_worst_value_emptiest_server() {
        let m = market(InterferenceModel::from_scores([]));
        let config = heracles_fleet::FleetConfig {
            servers: 4,
            mix: heracles_fleet::GenerationMix::mixed_datacenter(),
            ..FleetConfig::fast_test()
        };
        let sim = heracles_fleet::FleetSim::new(
            config,
            ServerConfig::default_haswell(),
            PolicyKind::FirstFit,
        );
        // counts(4) = [1, 2, 1]; the lone Sandy Bridge has the worst value
        // per dollar, so it is the first to go.
        let store = sim.store();
        let pick = m.sell_first(store).expect("active servers exist");
        assert_eq!(store.server(pick).generation, 0);
        let _ = SimTime::ZERO;
    }
}
