//! The closed-loop elastic fleet: an [`AutoscalePolicy`] driving the fleet
//! scheduler's elastic hooks step by step.
//!
//! Each step the controller (1) assembles the [`ScaleSignals`] — queue and
//! censored-job state, in-service counts, the diurnal forecast, and the
//! market's current best buy / first sell, (2) applies the policy's
//! [`ScaleAction`] (guarding the min/max fleet bounds regardless of what
//! the policy asked for), (3) runs the drain pricer over every draining
//! server — live-migrating residents to the destination with the best
//! marginal headroom, or requeueing the rare job whose residual demand is
//! smaller than the migration overhead — and retiring servers that drained
//! empty, then (4) advances the fleet one scheduler step.
//!
//! LC traffic is re-routed, not assumed away: the fleet's traffic plane
//! conserves each service's offered QPS, so a retired box's share lands on
//! the surviving leaves as *added load*.  Scale-in therefore carries SLO
//! risk — the re-routed share can push survivors over their latency knee —
//! and the policies price it: [`ScaleSignals::post_shed_load`] is the
//! candidate pool's projected load after the re-route, and a shed is
//! refused when it exceeds the policy's ceiling.  The comparison the
//! controller is judged on is BE-side — completed core·seconds per
//! amortized TCO dollar — with the SLO-violation count pinning that
//! elasticity never buys throughput with latency compliance.

use heracles_fleet::{
    marginal_headroom_cores, ControlPlaneProfile, FleetResult, FleetSim, InterferenceModel, JobId,
    PolicyKind, ServerEntry, ServerId, ServerState,
};
use heracles_hw::ServerConfig;
use heracles_telemetry::TraceEvent;
use serde::{Deserialize, Serialize};

use crate::action::{ScaleAction, ScaleEvent, ScaleEventKind, ScaleSignals};
use crate::market::GenerationMarket;
use crate::policy::{AutoscaleKind, AutoscalePolicy};

/// How far ahead (in steps) the drain pricer projects a destination's load
/// trend when ranking migration targets — the same horizon `LeastLoaded`
/// uses for placements, since a migration *is* a placement the job already
/// paid for once.
const DRAIN_TREND_HORIZON: f64 = 4.0;

/// Configuration of an elastic fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// The wrapped fleet configuration (`fleet.servers` is the *initial*
    /// fleet size — and the static baseline's fixed size).
    pub fleet: heracles_fleet::FleetConfig,
    /// The controller never drains the active fleet below this floor.
    pub min_servers: usize,
    /// The controller never buys past this in-service ceiling.
    pub max_servers: usize,
    /// Modeled cost of live-migrating one job, in core·seconds: the
    /// destination compute spent moving and warming the job's state.
    /// Charged onto the job's remaining demand, so the work ledger stays
    /// honest (`served == demand + overhead` for completed jobs).
    pub migration_cost_core_s: f64,
    /// How far ahead (in steps) the controller forecasts the fleet's mean
    /// load for the predictive policy's `load_ahead` signal.
    pub forecast_lead_steps: usize,
}

impl AutoscaleConfig {
    /// Wraps a fleet configuration with default elastic bounds: the fleet
    /// may shrink to half its initial size and grow to double it.
    pub fn new(fleet: heracles_fleet::FleetConfig) -> Self {
        AutoscaleConfig {
            fleet,
            min_servers: (fleet.servers / 2).max(1),
            max_servers: fleet.servers * 2,
            migration_cost_core_s: 15.0,
            forecast_lead_steps: 6,
        }
    }

    /// The canonical elastic scenario: the given fleet with its run
    /// compressed onto one full diurnal cycle (so the run sweeps a real
    /// peak and valley — the regime where an autoscaler earns or loses its
    /// keep) and a phase-coherent fleet (small spread: the fleet peaks
    /// *together*, which is what makes elasticity pay; a fully
    /// phase-spread fleet has constant aggregate headroom and nothing for
    /// an autoscaler to chase).
    pub fn diurnal(base: heracles_fleet::FleetConfig) -> Self {
        let horizon_s =
            base.steps as f64 * base.windows_per_step as f64 * base.colo.window.as_secs_f64();
        let mut config = Self::new(heracles_fleet::FleetConfig {
            load_spread: 0.15,
            time_compression: 12.0 * 3600.0 / horizon_s,
            // Size the stream so the fleet is moderately subscribed: a
            // saturated fleet gives an autoscaler only one direction —
            // buy — while this rate makes it shed through the valley and
            // provision for the peak, which is the claim under test.  The
            // rate also keeps leaves *occupied* when the early-valley
            // sheds fire, so scale-in is consolidation (live-migrate, then
            // retire) rather than the free shedding of empty boxes.
            jobs: heracles_fleet::JobStreamConfig {
                arrivals_per_step: 0.06 * base.servers as f64,
                demand_min_core_s: 100.0,
                demand_max_core_s: 800.0,
                ..base.jobs
            },
            ..base
        });
        // A deeper scale-in floor than the generic default: the valley
        // should force *consolidation* — drains of still-occupied servers
        // whose residents must live-migrate — not just the free shedding
        // of empty boxes.
        config.min_servers = (config.fleet.servers / 4).max(1);
        config
    }

    /// The deterministic `--fast` elastic scenario the integration tests
    /// and CI smoke pin: [`diurnal`](Self::diurnal) over
    /// `FleetConfig::fast_test()`.
    pub fn fast_test() -> Self {
        Self::diurnal(heracles_fleet::FleetConfig::fast_test())
    }

    /// Validates the configuration, returning a human-readable description
    /// of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.fleet.validate()?;
        if self.min_servers == 0 {
            return Err("min_servers must be at least 1".into());
        }
        if self.min_servers > self.fleet.servers || self.fleet.servers > self.max_servers {
            return Err(format!(
                "fleet bounds must satisfy min <= initial <= max (got {} <= {} <= {})",
                self.min_servers, self.fleet.servers, self.max_servers
            ));
        }
        if !self.migration_cost_core_s.is_finite() || self.migration_cost_core_s < 0.0 {
            return Err(format!(
                "migration_cost_core_s must be finite and non-negative (got {})",
                self.migration_cost_core_s
            ));
        }
        Ok(())
    }
}

/// The result of one elastic fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleResult {
    /// The autoscaling policy that produced this run.
    pub autoscaler: String,
    /// The underlying fleet result (steps carry the time-varying fleet
    /// size, migration counts and the amortized TCO series).
    pub fleet: FleetResult,
    /// The controller's audit log: purchases, drains, migrations,
    /// retirements, in order.
    pub events: Vec<ScaleEvent>,
}

impl AutoscaleResult {
    /// Servers purchased over the run.
    pub fn scale_outs(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, ScaleEventKind::Bought { .. })).count()
    }

    /// Drains started over the run.
    pub fn scale_ins(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, ScaleEventKind::DrainStarted { .. })).count()
    }

    /// Servers retired over the run.
    pub fn retirements(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, ScaleEventKind::Retired { .. })).count()
    }

    /// Jobs live-migrated by drains over the run.
    pub fn drain_migrations(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, ScaleEventKind::Migrated { .. })).count()
    }

    /// Jobs the drain pricer chose to requeue instead of migrate.
    pub fn drain_requeues(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ScaleEventKind::DrainRequeued { .. }))
            .count()
    }
}

/// The closed-loop elastic fleet controller.
pub struct ElasticFleet {
    sim: FleetSim,
    policy: Box<dyn AutoscalePolicy>,
    market: GenerationMarket,
    config: AutoscaleConfig,
    events: Vec<ScaleEvent>,
    /// Step of the most recent purchase (rebuy-thrash detection).
    last_buy_step: Option<usize>,
    /// Step of the most recent drain start (rebuy-thrash detection).
    last_drain_step: Option<usize>,
}

/// A buy within this many steps of a drain (or vice versa) counts as one
/// thrash pulse for the health plane's rebuy-thrash alert: the controller
/// is reversing itself faster than a server's drain can possibly pay off.
const REBUY_THRASH_WINDOW_STEPS: usize = 8;

impl ElasticFleet {
    /// Creates an elastic fleet under built-in placement and autoscaling
    /// policies, with an uncharacterized market (cores-per-dollar pricing;
    /// use [`with_market`](Self::with_market) to supply measured
    /// interference scores).
    ///
    /// # Panics
    ///
    /// Panics if [`AutoscaleConfig::validate`] rejects the configuration.
    pub fn new(
        config: AutoscaleConfig,
        server: ServerConfig,
        placement: PolicyKind,
        autoscaler: AutoscaleKind,
    ) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid autoscale config: {e}"));
        let market =
            GenerationMarket::new(&config.fleet, &server, InterferenceModel::from_scores([]));
        let sim = FleetSim::new(config.fleet, server, placement);
        ElasticFleet {
            sim,
            policy: autoscaler.build(),
            market,
            config,
            events: Vec::new(),
            last_buy_step: None,
            last_drain_step: None,
        }
    }

    /// Replaces the market's interference model (e.g. with §3.2
    /// characterization scores), so purchase decisions can weigh how
    /// hostile the job mix is on each generation's hardware.
    pub fn with_market(mut self, market: GenerationMarket) -> Self {
        self.market = market;
        self
    }

    /// Replaces the autoscaling policy (custom tunings).
    pub fn with_autoscaler(mut self, policy: Box<dyn AutoscalePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The signal bundle the policy sees this step.
    fn signals(&self) -> ScaleSignals {
        let store = self.sim.store();
        let now = self.sim.now();
        let step_s = self.sim.config().step_duration().as_secs_f64();
        let mut stranded = 0usize;
        let mut oldest_wait_steps = 0usize;
        // Between steps, every job that has never started is sitting in the
        // pending queue (placement is the only thing that sets
        // `first_start`), so scanning the queue counts exactly the jobs the
        // old full-ledger scan did — without walking every completed job
        // the run has ever produced (which made long runs quadratic).
        for job_id in self.sim.pending_job_ids() {
            let job = self.sim.job(job_id);
            if job.first_start.is_none() {
                let waited = now.saturating_since(job.arrival).as_secs_f64();
                let waited_steps = (waited / step_s).floor() as usize;
                if waited_steps >= 1 {
                    stranded += 1;
                    oldest_wait_steps = oldest_wait_steps.max(waited_steps);
                }
            }
        }
        let drain_candidate = self.market.sell_first(store);
        let free_slots_elsewhere = store
            .servers()
            .iter()
            .filter(|s| s.admits_be() && Some(s.id) != drain_candidate)
            .map(|s| s.free_slots())
            .sum();
        // The SLO price of shedding the candidate: its service pool's load
        // after the re-route, at the worst of "right now" and the forecast
        // horizon (a shed that looks safe in the valley can strand the
        // shrunken pool over its knee when the peak arrives).
        let post_shed_load = drain_candidate
            .map(|id| {
                self.sim
                    .post_retire_pool_load(id, 0)
                    .max(self.sim.post_retire_pool_load(id, self.config.forecast_lead_steps))
            })
            .unwrap_or(0.0);
        // The energy price the step about to run will be billed at: the
        // configured schedule sampled at the *represented* hour of day
        // (wall-clock compressed onto the diurnal cycle), plus its daily
        // mean as the cheap/expensive reference.
        let energy = &self.sim.config().energy;
        let represented_hour =
            heracles_fleet::hour_of_day(now.as_secs_f64() * self.sim.config().time_compression);
        ScaleSignals {
            step: self.sim.current_step(),
            queued_jobs: self.sim.queue_depth(),
            stranded_jobs: stranded,
            oldest_wait_steps,
            active_servers: store.active_servers(),
            draining_servers: store.draining_servers(),
            free_slots_elsewhere,
            drain_candidate_residents: drain_candidate
                .map(|id| store.server(id).resident.len())
                .unwrap_or(0),
            mean_load: self.sim.forecast_mean_load(0),
            load_ahead: self.sim.forecast_mean_load(self.config.forecast_lead_steps),
            min_servers: self.config.min_servers,
            max_servers: self.config.max_servers,
            best_buy: self.market.best_buy(),
            drain_candidate,
            post_shed_load,
            energy_price_per_kwh: energy.price.price_at(represented_hour),
            energy_price_mean_per_kwh: energy.price.daily_mean(),
        }
    }

    /// Applies one scale action, enforcing the fleet bounds regardless of
    /// what the policy asked for (a buggy policy must not be able to strand
    /// the fleet outside its envelope).
    fn apply(&mut self, action: ScaleAction) {
        let step = self.sim.current_step();
        match action {
            ScaleAction::Hold => {}
            ScaleAction::ScaleOut { generation } => {
                let store = self.sim.store();
                if store.active_servers() + store.draining_servers() < self.config.max_servers {
                    let server = self.sim.add_server(generation);
                    self.events.push(ScaleEvent {
                        step,
                        kind: ScaleEventKind::Bought { generation, server },
                    });
                    if self.sim.telemetry_enabled() {
                        let event = TraceEvent::new(self.sim.now(), "autoscale", "buy")
                            .str("generation", generation.name())
                            .u64("server", server as u64)
                            .f64("value_per_dollar", self.market.value_per_dollar(generation));
                        self.sim.emit_trace(event);
                    }
                    if self
                        .last_drain_step
                        .is_some_and(|s| step.saturating_sub(s) <= REBUY_THRASH_WINDOW_STEPS)
                    {
                        self.observe_thrash();
                    }
                    self.last_buy_step = Some(step);
                }
            }
            ScaleAction::ScaleIn { server } => {
                let store = self.sim.store();
                // Besides the fleet-size floor, a drain must never target a
                // service's last in-service leaf — retiring it would leave
                // the service's traffic unroutable (the fleet panics on the
                // attempt, and no policy bug should be able to reach that).
                if store.active_servers() > self.config.min_servers
                    && store.server(server).is_active()
                    && store.in_service_leaves(store.server(server).service) > 1
                {
                    self.sim.begin_drain(server);
                    self.events
                        .push(ScaleEvent { step, kind: ScaleEventKind::DrainStarted { server } });
                    if self.sim.telemetry_enabled() {
                        let event = TraceEvent::new(self.sim.now(), "autoscale", "drain")
                            .u64("server", server as u64)
                            .f64("post_shed_load", self.sim.post_retire_pool_load(server, 0));
                        self.sim.emit_trace(event);
                    }
                    if self
                        .last_buy_step
                        .is_some_and(|s| step.saturating_sub(s) <= REBUY_THRASH_WINDOW_STEPS)
                    {
                        self.observe_thrash();
                    }
                    self.last_drain_step = Some(step);
                }
            }
        }
    }

    /// Feeds one rebuy-thrash pulse to the health plane (a no-op when it
    /// is off).  Observed *before* the fleet's `step_once`, so the pulse
    /// lands in the same step's burn-rate window as the decision that
    /// caused it.
    fn observe_thrash(&mut self) {
        if let Some(h) = self.sim.telemetry_mut().and_then(|t| t.health.as_mut()) {
            h.observe_signal(heracles_telemetry::AlertKind::RebuyThrash, 1.0);
        }
    }

    /// The migration destination offering a resident of `from` the most
    /// marginal headroom (among servers currently admitting BE work),
    /// deterministically tie-broken by id.
    ///
    /// Headroom is computed *after* the destination absorbs its slice of
    /// the draining server's re-routed LC traffic: a sibling leaf of the
    /// victim's service is about to get hotter than its store entry shows,
    /// so ranking destinations by their pre-drain load would migrate jobs
    /// straight into the re-route's blast radius.
    fn best_destination(&self, from: ServerId) -> Option<ServerId> {
        let headroom = |s: &ServerEntry| {
            let projected =
                s.projected_load(DRAIN_TREND_HORIZON) + self.sim.reroute_load_increase(from, s.id);
            marginal_headroom_cores(s, projected, s.resident.len() as f64)
        };
        self.sim
            .store()
            .servers()
            .iter()
            .filter(|s| s.id != from && s.admits_be())
            .max_by(|a, b| {
                headroom(a)
                    .partial_cmp(&headroom(b))
                    .expect("headroom is finite")
                    .then(b.id.cmp(&a.id))
            })
            .map(|s| s.id)
    }

    /// Runs the drain pricer over every draining server: migrate each
    /// resident to the best destination (paying the migration cost onto its
    /// remaining demand), or requeue it when the move costs more
    /// core·seconds than the job has left — then retire servers that
    /// drained empty.  A server with residents but no admitting
    /// destination keeps running them; its drain stalls until headroom
    /// appears (it is never retired occupied).
    fn drain_step(&mut self) {
        let step = self.sim.current_step();
        let draining: Vec<ServerId> = self
            .sim
            .store()
            .servers()
            .iter()
            .filter(|s| s.state == ServerState::Draining)
            .map(|s| s.id)
            .collect();
        for from in draining {
            let residents: Vec<JobId> = self.sim.store().server(from).resident.clone();
            for job in residents {
                // Price the move: migrating costs `migration_cost_core_s`
                // of destination compute; a requeue restarts the queue wait
                // but costs no compute.  For all but nearly-finished jobs
                // the migration wins — the preserved progress and the
                // skipped queue pass are worth far more than the overhead.
                if self.sim.job(job).remaining_core_s <= self.config.migration_cost_core_s {
                    self.sim.requeue_job(job, from);
                    self.events.push(ScaleEvent {
                        step,
                        kind: ScaleEventKind::DrainRequeued { job, from },
                    });
                    continue;
                }
                if let Some(to) = self.best_destination(from) {
                    self.sim.migrate_job(job, from, to, self.config.migration_cost_core_s);
                    self.events.push(ScaleEvent {
                        step,
                        kind: ScaleEventKind::Migrated { job, from, to },
                    });
                }
            }
            if self.sim.store().server(from).resident.is_empty() {
                self.sim.retire_server(from);
                self.events
                    .push(ScaleEvent { step, kind: ScaleEventKind::Retired { server: from } });
            }
        }
    }

    /// The underlying fleet simulator (read-only).
    pub fn sim(&self) -> &FleetSim {
        &self.sim
    }

    /// Takes the fleet's telemetry bundle out of the controller (None when
    /// telemetry is off).  Call after the last step, before
    /// [`finish`](Self::finish).
    pub fn take_telemetry(&mut self) -> Option<heracles_telemetry::Telemetry> {
        self.sim.take_telemetry()
    }

    /// Records the health plane's end-of-run summary into the flight
    /// recorder (see [`FleetSim::emit_health_summary`]).
    pub fn emit_health_summary(&mut self) {
        self.sim.emit_health_summary();
    }

    /// Records the energy plane's end-of-run summary into the flight
    /// recorder (see [`FleetSim::emit_energy_summary`]).
    pub fn emit_energy_summary(&mut self) {
        self.sim.emit_energy_summary();
    }

    /// Cumulative wall-clock cost of the control plane so far: the fleet's
    /// routing and dispatch phases plus this controller's signal assembly,
    /// all charged into the *fleet's* single profile (via
    /// [`FleetSim::charge_signals_s`]) so each part is attributed exactly
    /// once.  Pure observability — timing noise never feeds back into
    /// decisions.
    pub fn control_plane_profile(&self) -> ControlPlaneProfile {
        *self.sim.control_plane_profile()
    }

    /// Cumulative wall-clock cost of the server plane so far (the parallel
    /// per-leaf stepping phase), with the event core's woken/quiescent and
    /// full/fast window counters.  Pure observability, like
    /// [`control_plane_profile`](Self::control_plane_profile).
    pub fn server_plane_profile(&self) -> heracles_fleet::ServerPlaneProfile {
        *self.sim.server_plane_profile()
    }

    /// Runs one closed-loop step: signals → decide → apply → drain →
    /// advance the fleet one scheduler step.
    pub fn step_once(&mut self) {
        let signals_started = std::time::Instant::now();
        let signals = self.signals();
        self.sim.charge_signals_s(signals_started.elapsed().as_secs_f64());
        let action = self.policy.decide(&signals);
        if self.sim.telemetry_enabled() {
            let now = self.sim.now();
            let best_buy = signals.best_buy;
            self.sim.emit_trace(
                TraceEvent::new(now, "autoscale", "signals")
                    .u64("step", signals.step as u64)
                    .u64("queued", signals.queued_jobs as u64)
                    .u64("stranded", signals.stranded_jobs as u64)
                    .u64("active", signals.active_servers as u64)
                    .u64("draining", signals.draining_servers as u64)
                    .f64("mean_load", signals.mean_load)
                    .f64("load_ahead", signals.load_ahead)
                    .str("best_buy", best_buy.name())
                    .f64("buy_value_per_dollar", self.market.value_per_dollar(best_buy))
                    .f64("post_shed_load", signals.post_shed_load)
                    .f64("energy_price_per_kwh", signals.energy_price_per_kwh),
            );
            let (kind, detail) = match action {
                ScaleAction::Hold => ("hold", None),
                ScaleAction::ScaleOut { generation } => ("scale-out", Some(generation.index())),
                ScaleAction::ScaleIn { server } => ("scale-in", Some(server)),
            };
            let mut event = TraceEvent::new(now, "autoscale", "decide").str("action", kind);
            if let Some(value) = detail {
                event = event.u64("target", value as u64);
            }
            self.sim.emit_trace(event);
        }
        self.apply(action);
        self.drain_step();
        self.sim.step_once();
    }

    /// Consumes the controller into its result (steps run so far).
    pub fn finish(self) -> AutoscaleResult {
        AutoscaleResult {
            autoscaler: self.policy.name().to_string(),
            fleet: self.sim.into_result(),
            events: self.events,
        }
    }

    /// Runs the closed loop to the fleet's horizon and returns the result.
    pub fn run(mut self) -> AutoscaleResult {
        let steps = self.sim.config().steps;
        while self.sim.current_step() < steps {
            self.step_once();
        }
        self.finish()
    }
}

impl std::fmt::Debug for ElasticFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticFleet")
            .field("autoscaler", &self.policy.name())
            .field("step", &self.sim.current_step())
            .field("active", &self.sim.store().active_servers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AutoscaleKind;

    /// The pending-queue stranded scan must emit bit-identical signals to
    /// the full-ledger scan it replaced: between steps, a job without a
    /// `first_start` is in the queue and nowhere else, so the two scans see
    /// exactly the same population at every step of a churny run.
    #[test]
    fn pending_queue_scan_matches_the_full_ledger_scan() {
        let mut config = AutoscaleConfig::fast_test();
        config.fleet.steps = 20;
        // Oversubscribe the queue so jobs genuinely strand: with every BE
        // slot full, arrivals back up and the stranded branch is exercised.
        config.fleet.jobs.arrivals_per_step = 12.0;
        let mut fleet = ElasticFleet::new(
            config,
            ServerConfig::default_haswell(),
            PolicyKind::LeastLoaded,
            AutoscaleKind::Reactive,
        );
        let mut saw_stranded = false;
        for _ in 0..config.fleet.steps {
            let signals = fleet.signals();
            // The reference: the old O(all jobs ever) ledger walk.
            let now = fleet.sim.now();
            let step_s = fleet.sim.config().step_duration().as_secs_f64();
            let (mut stranded, mut oldest) = (0usize, 0usize);
            for job in fleet.sim.jobs() {
                if job.first_start.is_none() && job.completion.is_none() {
                    let waited_steps =
                        (now.saturating_since(job.arrival).as_secs_f64() / step_s).floor() as usize;
                    if waited_steps >= 1 {
                        stranded += 1;
                        oldest = oldest.max(waited_steps);
                    }
                }
            }
            assert_eq!(signals.stranded_jobs, stranded);
            assert_eq!(signals.oldest_wait_steps, oldest);
            saw_stranded |= stranded > 0;
            fleet.step_once();
        }
        assert!(saw_stranded, "the run never stranded a job — the pin test saw nothing");
    }

    /// Every control-plane phase — routing, dispatch, signal assembly — is
    /// charged exactly once per step: the per-part fields must sum to the
    /// total the charge methods recorded, and an elastic run exercises all
    /// three parts.
    #[test]
    fn control_plane_phases_are_attributed_exactly_once_per_step() {
        let mut config = AutoscaleConfig::fast_test();
        config.fleet.steps = 8;
        let mut fleet = ElasticFleet::new(
            config,
            ServerConfig::default_haswell(),
            PolicyKind::LeastLoaded,
            AutoscaleKind::Reactive,
        );
        for _ in 0..config.fleet.steps {
            fleet.step_once();
        }
        let profile = fleet.control_plane_profile();
        assert_eq!(profile.steps, config.fleet.steps);
        assert!(profile.routing_s > 0.0, "routing was never charged");
        assert!(profile.dispatch_s > 0.0, "dispatch was never charged");
        assert!(profile.signals_s > 0.0, "signal assembly was never charged");
        let total = profile.control_plane_s();
        let recorded = profile.recorded_total_s();
        assert!(
            (total - recorded).abs() <= 1e-9 * total.max(1e-12),
            "parts ({total}) drifted from the recorded total ({recorded}): \
             a phase was double-charged or written around the charge methods"
        );
    }
}
