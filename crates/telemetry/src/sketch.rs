//! A log-bucketed streaming quantile sketch with a fixed relative-error
//! guarantee.
//!
//! The health plane needs percentiles *online* — at any sim time, over
//! streams it cannot afford to retain (10k leaves × thousands of steps).
//! [`QuantileSketch`] is the DDSketch-style answer: values map to
//! geometrically spaced buckets, so the sketch answers any quantile in
//! O(buckets) memory with a bounded *relative* error, and two shard
//! sketches merge by adding bucket counts.
//!
//! Determinism is load-bearing here.  Every piece of sketch state is
//! either a `u64` count (exact, order-independent) or an `f64` reduced
//! only through `min`/`max` (order-independent for finite values): there
//! is no floating-point *accumulation*, so observing a stream in any
//! order — or sharding it and merging — produces the identical sketch,
//! bit for bit.  That is what lets the alert engine's decisions, and the
//! trace events they emit, stay byte-identical across runs of the same
//! seed.

use std::collections::BTreeMap;

/// The sketch's relative-error guarantee: for any quantile `q`, the
/// estimate `e` and the exact value `x` (of the same rank) satisfy
/// `|e - x| <= RELATIVE_ERROR * x`, provided `x >= MIN_TRACKED`.
pub const RELATIVE_ERROR: f64 = 0.01;

/// Values at or below this threshold are indistinguishable from zero: they
/// share one underflow bucket whose representative is the stream's minimum.
/// Below the threshold the guarantee degrades from relative to absolute
/// (error at most `MIN_TRACKED`).
pub const MIN_TRACKED: f64 = 1e-9;

/// Geometric bucket ratio: bucket `i` covers `(GAMMA^(i-1), GAMMA^i]`.
fn gamma() -> f64 {
    (1.0 + RELATIVE_ERROR) / (1.0 - RELATIVE_ERROR)
}

/// The bucket index of a tracked (`> MIN_TRACKED`, finite) value.
fn bucket_index(value: f64) -> i32 {
    // ceil(log_gamma(value)); the same value always maps to the same
    // bucket — `ln` is a pure function — so bucketing is order-free.
    (value.ln() / gamma().ln()).ceil() as i32
}

/// The representative value of bucket `i`: the multiplicative midpoint
/// `gamma^i * (1 - alpha)`, within `RELATIVE_ERROR` of every value in the
/// bucket.
fn representative(index: i32) -> f64 {
    gamma().powi(index) * (1.0 - RELATIVE_ERROR)
}

/// A mergeable streaming quantile sketch over non-negative values.
///
/// # Example
///
/// ```
/// use heracles_telemetry::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for i in 1..=1000 {
///     s.observe(i as f64);
/// }
/// let p50 = s.quantile(0.5);
/// assert!((p50 - 500.0).abs() <= 500.0 * 0.011);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Count per log bucket (sparse; sorted iteration gives deterministic
    /// quantile walks).
    buckets: BTreeMap<i32, u64>,
    /// Values at or below [`MIN_TRACKED`] (plus any non-finite stray, which
    /// no healthy emitter produces).
    underflow: u64,
    /// Total observations.
    count: u64,
    /// Smallest finite observation (`+inf` until one arrives, so `min`
    /// folds order-free without a seen-flag).
    min: f64,
    /// Largest finite observation (`-inf` until one arrives).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: BTreeMap::new(),
            underflow: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch::default()
    }

    /// Records one observation.  Negative and sub-[`MIN_TRACKED`] values
    /// land in the underflow bucket; non-finite values are counted there
    /// too (they carry no magnitude to bucket).
    pub fn observe(&mut self, value: f64) {
        // Normalize -0.0 so min/max state is bit-identical however zeros
        // are signed.
        let value = if value == 0.0 { 0.0 } else { value };
        self.count += 1;
        if value.is_finite() {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        if !value.is_finite() || value <= MIN_TRACKED {
            self.underflow += 1;
        } else {
            *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
        }
    }

    /// Folds `other` into `self`.  Merging shard sketches produces the
    /// *identical* sketch (bitwise) to observing the concatenated stream:
    /// bucket counts add exactly and min/max reduce order-free.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.underflow += other.underflow;
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest finite observation (0 when none has arrived).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest finite observation (0 when none has arrived).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Number of occupied buckets — the sketch's memory footprint in
    /// `O(buckets)` words, independent of the stream length.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + usize::from(self.underflow > 0)
    }

    /// The estimated `q`-quantile (`q` clamped to `[0, 1]`; 0 when empty).
    ///
    /// The exact value of the same rank (`ceil(q * count)`, matching the
    /// nearest-rank definition) differs from the estimate by at most
    /// [`RELATIVE_ERROR`] relatively, or [`MIN_TRACKED`] absolutely for
    /// underflow-bucket ranks.  The estimate is clamped into the observed
    /// `[min, max]`, which can only tighten it.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.underflow {
            // Underflow values are within MIN_TRACKED of the stream min.
            return self.min.clamp(0.0, MIN_TRACKED);
        }
        let mut cumulative = self.underflow;
        for (&idx, &n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile, the reference the sketch's bound is
    /// stated against.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_answers_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn estimates_hold_the_relative_error_bound() {
        // A deliberately skewed deterministic stream spanning five decades.
        let mut values: Vec<f64> =
            (1..=2000).map(|i| (i as f64 * 0.01).exp() % 9.7e4 + 1e-3).collect();
        let mut s = QuantileSketch::new();
        for &v in &values {
            s.observe(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() <= RELATIVE_ERROR * exact * 1.0001 + 1e-12,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_the_concatenated_stream() {
        let stream: Vec<f64> =
            (0..500).map(|i| ((i * 2654435761u64 as usize) % 9973) as f64 / 7.0 + 1e-4).collect();
        let mut whole = QuantileSketch::new();
        for &v in &stream {
            whole.observe(v);
        }
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for (i, &v) in stream.iter().enumerate() {
            if i % 3 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole, "merged shards must equal the concatenated stream");
    }

    #[test]
    fn underflow_values_share_the_zero_bucket() {
        let mut s = QuantileSketch::new();
        s.observe(0.0);
        s.observe(-3.0);
        s.observe(1e-12);
        s.observe(f64::NAN);
        assert_eq!(s.count(), 4);
        assert!(s.quantile(0.5) <= MIN_TRACKED);
        assert_eq!(s.bucket_count(), 1);
    }

    #[test]
    fn memory_stays_bounded_by_buckets_not_stream_length() {
        let mut s = QuantileSketch::new();
        for i in 0..100_000 {
            s.observe(1.0 + (i % 100) as f64 / 100.0);
        }
        // Values span [1, 2): about ln(2)/ln(gamma) ~ 35 buckets.
        assert!(s.bucket_count() < 64, "{} buckets", s.bucket_count());
        assert_eq!(s.count(), 100_000);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut s = QuantileSketch::new();
        for i in 1..=300 {
            s.observe(i as f64 * 0.01);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q);
            assert!(v >= last, "quantile regressed at q={q}");
            last = v;
        }
    }
}
