//! Deterministic telemetry plane for the Heracles reproduction.
//!
//! Every layer of the stack makes decisions worth auditing — the per-server
//! controller's Algorithm 1 transitions, the placement store's admission
//! verdicts, the traffic plane's diverts, the elastic controller's buys and
//! drains — but the workspace's determinism contract forbids folding any
//! diagnostic state into the bit-compared result types.  This crate is the
//! shared answer:
//!
//! * [`TraceEvent`] — a structured, *sim-time-stamped* decision record.
//!   Events never carry wall-clock values, so two runs with the same seed
//!   produce byte-identical trace files.
//! * [`TraceLog`] — the cheap per-component buffer a subsystem owns while a
//!   run is traced.  Components hold an `Option<TraceLog>`; when it is
//!   `None` (the default) no event is even constructed, which is what makes
//!   telemetry zero-cost when disabled.
//! * [`FlightRecorder`] — a bounded ring buffer the fleet drains component
//!   logs into in deterministic order, with JSONL and CSV sinks.  The JSON
//!   is hand-rolled (the workspace deliberately vendors no JSON serializer)
//!   with a matching substring-exact validator, following the
//!   `BENCH_fleet.json` precedent.
//! * [`MetricsRegistry`] — named counters/gauges/histograms keyed by static
//!   metric ids, iterated in sorted order so the export is deterministic.
//! * [`PhaseBreakdown`] — named per-phase wall-time accumulation, the
//!   generalization of the fleet's `ControlPlaneProfile`.  Wall time is
//!   telemetry, not a result: it is exported in its own section of the
//!   metrics document and never appears in a trace file.
//!
//! # Example
//!
//! ```
//! use heracles_sim::SimTime;
//! use heracles_telemetry::{TelemetryConfig, Telemetry, TraceEvent};
//!
//! let mut tel = Telemetry::new(TelemetryConfig::enabled()).expect("enabled");
//! tel.recorder.record(
//!     TraceEvent::new(SimTime::from_secs(15), "core", "be_state")
//!         .str("from", "disabled")
//!         .str("to", "enabled")
//!         .f64("slack", 0.42),
//! );
//! tel.metrics.inc("core.be_state_transitions");
//! let doc = tel.trace_jsonl(&[("seed", "7".into())]);
//! heracles_telemetry::validate_trace_jsonl(&doc).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod health;
mod metrics;
mod recorder;
mod sketch;
mod span;
mod trace;
mod validate;

pub use config::TelemetryConfig;
pub use health::{
    AlertEngine, AlertKind, BurnRatePolicy, CellSketches, HealthPlane, LeafSketches, TOP_K_LEAVES,
};
pub use metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKET_BOUNDS};
pub use recorder::{FlightRecorder, Telemetry};
pub use sketch::{QuantileSketch, MIN_TRACKED, RELATIVE_ERROR};
pub use span::PhaseBreakdown;
pub use trace::{json_escape, TraceEvent, TraceLog, TraceValue};
pub use validate::{validate_metrics_json, validate_trace_jsonl, METRICS_SCHEMA, TRACE_SCHEMA};
