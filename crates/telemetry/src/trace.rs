//! Structured trace events and the per-component log that buffers them.

use heracles_sim::csv::CsvRow;
use heracles_sim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// One typed field value on a [`TraceEvent`].
///
/// Floats are rendered with a fixed six decimals everywhere so the same run
/// always serializes to the same bytes; non-finite floats (which no emitter
/// should produce) render as JSON `null` rather than corrupting the
/// document.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// An unsigned integer (ids, counts).
    U64(u64),
    /// A signed integer (deltas).
    I64(i64),
    /// A float, serialized with six decimals.
    F64(f64),
    /// A string (names, labels), JSON-escaped on output.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl TraceValue {
    /// Renders the value as a JSON literal.
    pub fn to_json(&self) -> String {
        match self {
            TraceValue::U64(v) => format!("{v}"),
            TraceValue::I64(v) => format!("{v}"),
            TraceValue::F64(v) if v.is_finite() => format!("{v:.6}"),
            TraceValue::F64(_) => "null".into(),
            TraceValue::Str(s) => format!("\"{}\"", json_escape(s)),
            TraceValue::Bool(b) => format!("{b}"),
        }
    }

    /// Renders the value bare (no quotes), for the CSV sink's `k=v` cells.
    pub fn to_bare(&self) -> String {
        match self {
            TraceValue::Str(s) => s.clone(),
            other => other.to_json(),
        }
    }
}

impl From<&str> for TraceValue {
    fn from(s: &str) -> Self {
        TraceValue::Str(s.to_string())
    }
}

/// Escapes a string for inclusion inside a JSON string literal: quote,
/// backslash and control characters only (the emitters produce ASCII).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One decision record: where and when (in *simulated* time) a subsystem
/// chose something, plus the typed fields that explain the choice.
///
/// Events deliberately cannot carry wall-clock readings: the only timestamp
/// is [`SimTime`], so a trace is a pure function of the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    time: SimTime,
    scope: &'static str,
    kind: &'static str,
    fields: Vec<(&'static str, TraceValue)>,
}

impl TraceEvent {
    /// Starts an event at `time` from subsystem `scope` with decision `kind`.
    pub fn new(time: SimTime, scope: &'static str, kind: &'static str) -> Self {
        TraceEvent { time, scope, kind, fields: Vec::new() }
    }

    /// Appends an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, TraceValue::U64(value)));
        self
    }

    /// Appends a signed-integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, TraceValue::I64(value)));
        self
    }

    /// Appends a float field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, TraceValue::F64(value)));
        self
    }

    /// Appends a string field.
    pub fn str(mut self, key: &'static str, value: &str) -> Self {
        self.fields.push((key, TraceValue::Str(value.to_string())));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, TraceValue::Bool(value)));
        self
    }

    /// Shifts the event's timestamp forward by `offset`: rebases a
    /// subsystem's local clock (a leaf controller commissioned mid-run
    /// starts at its own zero) onto the global simulation clock.
    pub fn shifted(mut self, offset: SimDuration) -> Self {
        self.time += offset;
        self
    }

    /// The simulated time of the decision.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The emitting subsystem (`"core"`, `"traffic"`, `"placement"`, ...).
    pub fn scope(&self) -> &'static str {
        self.scope
    }

    /// The decision kind within the scope.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The typed fields, in emission order.
    pub fn fields(&self) -> &[(&'static str, TraceValue)] {
        &self.fields
    }

    /// The value of the named field, if present.
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object (no trailing newline): the fixed
    /// `t`/`scope`/`kind` prefix followed by the fields in emission order.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        let _ = write!(
            out,
            "{{\"t\":{:.6},\"scope\":\"{}\",\"kind\":\"{}\"",
            self.time.as_secs_f64(),
            self.scope,
            self.kind
        );
        for (key, value) in &self.fields {
            let _ = write!(out, ",\"{}\":{}", json_escape(key), value.to_json());
        }
        out.push('}');
        out
    }

    /// Appends the event as one CSV row (`time_s,scope,kind,fields`) where
    /// `fields` is a `k=v;k=v` cell, escaped through the shared CSV rules.
    pub fn push_csv_row(&self, out: &mut String) {
        let mut cell = String::new();
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                cell.push(';');
            }
            let _ = write!(cell, "{key}={}", value.to_bare());
        }
        CsvRow::new(out)
            .f64(self.time.as_secs_f64(), 6)
            .str(self.scope)
            .str(self.kind)
            .str(&cell)
            .end();
    }
}

/// The buffer a traced component appends its decisions to.
///
/// Components store an `Option<TraceLog>` and only construct events when it
/// is `Some`, so an untraced run never allocates.  The owner of the
/// [`FlightRecorder`](crate::FlightRecorder) drains component logs in a
/// deterministic order once per step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends one event.
    pub fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Removes and returns all buffered events in emission order.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> TraceEvent {
        TraceEvent::new(SimTime::from_secs(15), "core", "be_state")
            .str("from", "disabled")
            .str("to", "enabled")
            .f64("slack", 0.4)
            .u64("server", 3)
            .bool("growth", true)
    }

    #[test]
    fn jsonl_has_fixed_prefix_and_emission_order() {
        assert_eq!(
            event().jsonl(),
            "{\"t\":15.000000,\"scope\":\"core\",\"kind\":\"be_state\",\
             \"from\":\"disabled\",\"to\":\"enabled\",\"slack\":0.400000,\
             \"server\":3,\"growth\":true}"
        );
    }

    #[test]
    fn strings_are_json_escaped() {
        let ev = TraceEvent::new(SimTime::ZERO, "test", "esc").str("s", "a\"b\\c\nd");
        assert!(ev.jsonl().contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let ev = TraceEvent::new(SimTime::ZERO, "test", "nan").f64("v", f64::NAN);
        assert!(ev.jsonl().contains("\"v\":null"));
    }

    #[test]
    fn field_lookup_and_accessors_work() {
        let ev = event();
        assert_eq!(ev.scope(), "core");
        assert_eq!(ev.kind(), "be_state");
        assert_eq!(ev.field("server"), Some(&TraceValue::U64(3)));
        assert_eq!(ev.field("missing"), None);
    }

    #[test]
    fn csv_row_escapes_the_field_cell() {
        let mut out = String::new();
        TraceEvent::new(SimTime::from_secs(1), "a", "b").str("k", "x,y").push_csv_row(&mut out);
        assert_eq!(out, "1.000000,a,b,\"k=x,y\"\n");
    }

    #[test]
    fn log_buffers_and_drains_in_order() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.emit(event());
        log.emit(TraceEvent::new(SimTime::ZERO, "x", "y"));
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind(), "be_state");
        assert!(log.is_empty());
    }
}
