//! Per-phase wall-time accounting — the generalization of the fleet's
//! `ControlPlaneProfile` to arbitrarily named phases.
//!
//! Wall-clock readings are diagnostics, never results: the workspace's
//! determinism contract keeps them out of every bit-compared type, and this
//! module keeps them out of trace files too (they only appear in the
//! `"phases"` section of the metrics document, which is exempt from the
//! byte-identity guarantee).

use std::fmt::Write as _;
use std::time::Instant;

/// Accumulated wall seconds per named phase.
///
/// Phases keep their first-charge order, so a step loop that always charges
/// `routing → dispatch → servers → bookkeeping` exports them in pipeline
/// order rather than alphabetically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBreakdown {
    phases: Vec<(&'static str, f64)>,
    steps: u64,
}

impl PhaseBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        PhaseBreakdown::default()
    }

    /// Adds `seconds` to the named phase.
    pub fn charge(&mut self, phase: &'static str, seconds: f64) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _)| *name == phase) {
            entry.1 += seconds;
        } else {
            self.phases.push((phase, seconds));
        }
    }

    /// Times `f` and charges its wall duration to the named phase.
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let result = f();
        self.charge(phase, started.elapsed().as_secs_f64());
        result
    }

    /// Marks one simulation step completed (the denominator of
    /// [`per_step_ms`](Self::per_step_ms)).
    pub fn bump_steps(&mut self) {
        self.steps += 1;
    }

    /// Steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Accumulated seconds in the named phase (0 if never charged).
    pub fn seconds(&self, phase: &str) -> f64 {
        self.phases.iter().find(|(name, _)| *name == phase).map(|(_, s)| *s).unwrap_or(0.0)
    }

    /// All phases in first-charge order.
    pub fn phases(&self) -> &[(&'static str, f64)] {
        &self.phases
    }

    /// Total seconds across all phases.
    pub fn total_s(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Mean milliseconds per step across all phases.
    pub fn per_step_ms(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_s() * 1e3 / self.steps as f64
        }
    }

    /// Renders the `"phases"` section of the metrics document.
    pub(crate) fn to_json_section(&self) -> String {
        let mut out = String::from("  \"phases\": {");
        for (i, (name, seconds)) in self.phases.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{name}_s\": {seconds:.9}");
        }
        if self.phases.is_empty() {
            let _ = writeln!(out, "\"steps\": {}}},", self.steps);
        } else {
            let _ = write!(out, ",\n    \"steps\": {}\n  }},\n", self.steps);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_in_first_charge_order() {
        let mut p = PhaseBreakdown::new();
        p.charge("routing", 0.5);
        p.charge("dispatch", 0.25);
        p.charge("routing", 0.5);
        assert_eq!(p.seconds("routing"), 1.0);
        assert_eq!(p.seconds("dispatch"), 0.25);
        assert_eq!(p.seconds("absent"), 0.0);
        assert_eq!(p.phases()[0].0, "routing");
        assert!((p.total_s() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn per_step_ms_divides_by_steps() {
        let mut p = PhaseBreakdown::new();
        assert_eq!(p.per_step_ms(), 0.0);
        p.charge("x", 0.002);
        p.bump_steps();
        p.bump_steps();
        assert!((p.per_step_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_charges_the_closure_duration() {
        let mut p = PhaseBreakdown::new();
        let v = p.time("work", || 42);
        assert_eq!(v, 42);
        assert!(p.seconds("work") >= 0.0);
        assert_eq!(p.phases().len(), 1);
    }

    #[test]
    fn json_section_lists_phases_and_steps() {
        let mut p = PhaseBreakdown::new();
        p.charge("routing", 0.5);
        p.bump_steps();
        let s = p.to_json_section();
        assert!(s.contains("\"routing_s\": 0.500000000"));
        assert!(s.contains("\"steps\": 1"));
    }
}
