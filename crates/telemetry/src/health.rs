//! The online health plane: per-cell quantile sketches and a deterministic
//! multi-window SLO burn-rate alert engine.
//!
//! The flight recorder answers "what happened" after the fact — if the
//! ring buffer still holds the evidence.  The health plane answers "is it
//! wrong *now*": bounded-memory [`QuantileSketch`]es per (service ×
//! generation) cell and per leaf, plus an [`AlertEngine`] that watches
//! normalized failure signals through a fast and a slow window and emits
//! `alert.firing` / `alert.resolved` [`TraceEvent`]s at sim time.
//!
//! Everything here is a pure fold over per-step signals the simulation
//! already computes: same seed, same signals, same alerts, byte for byte.
//! The plane never feeds back into the simulation — turning it on or off
//! leaves `FleetResult` bit-identical (pinned by the determinism tests).

use std::collections::{BTreeMap, VecDeque};

use heracles_sim::SimTime;

use crate::sketch::QuantileSketch;
use crate::trace::TraceEvent;

/// The typed condition an alert watches for.
///
/// Each kind consumes one normalized signal in `[0, 1]` per step — the
/// fraction of the fleet exhibiting the failure — and burns against its
/// own [`BurnRatePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertKind {
    /// Latency-critical windows violating their SLO faster than the error
    /// budget allows (signal: violating / in-service leaves).
    SloBurn,
    /// The traffic plane shedding load from a sustained fraction of leaves
    /// (signal: shed-verdict leaves / in-service leaves).
    DivertStorm,
    /// The autoscaler alternating buy and drain decisions instead of
    /// settling (signal: 1 on an oscillation step, else 0).
    RebuyThrash,
    /// The event core waking nearly every leaf every step — the sim has
    /// lost its sparsity win (signal: woken / stepped leaves).
    WakeStorm,
    /// Best-effort jobs pinned in the queue beyond the wait horizon
    /// (signal: censored / pending jobs).
    QueueCensorship,
}

impl AlertKind {
    /// Every kind, in emission (and index) order.
    pub const ALL: [AlertKind; 5] = [
        AlertKind::SloBurn,
        AlertKind::DivertStorm,
        AlertKind::RebuyThrash,
        AlertKind::WakeStorm,
        AlertKind::QueueCensorship,
    ];

    /// Stable dense index, usable as an array offset.
    pub fn index(self) -> usize {
        match self {
            AlertKind::SloBurn => 0,
            AlertKind::DivertStorm => 1,
            AlertKind::RebuyThrash => 2,
            AlertKind::WakeStorm => 3,
            AlertKind::QueueCensorship => 4,
        }
    }

    /// Stable machine-readable name, used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::SloBurn => "slo-burn",
            AlertKind::DivertStorm => "divert-storm",
            AlertKind::RebuyThrash => "rebuy-thrash",
            AlertKind::WakeStorm => "wake-storm",
            AlertKind::QueueCensorship => "queue-censorship",
        }
    }

    /// One-line cause description stamped onto the alert events.
    pub fn cause(self) -> &'static str {
        match self {
            AlertKind::SloBurn => "lc windows violating slo faster than the error budget allows",
            AlertKind::DivertStorm => {
                "traffic plane shedding load from a sustained fraction of leaves"
            }
            AlertKind::RebuyThrash => "autoscaler alternating buy and drain decisions",
            AlertKind::WakeStorm => "event core waking nearly every leaf every step",
            AlertKind::QueueCensorship => {
                "best-effort jobs pinned in the queue beyond the wait horizon"
            }
        }
    }

    /// Parses [`AlertKind::name`] back into the kind.
    pub fn from_name(name: &str) -> Option<AlertKind> {
        AlertKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// The multi-window burn-rate thresholds for one [`AlertKind`].
///
/// The engine keeps the last `slow_window` signal samples.  An alert
/// *fires* when the mean over the most recent `fast_window` samples
/// reaches `fire_fast` **and** the mean over the whole retained window
/// reaches `fire_slow` — the classic fast+slow conjunction that rejects
/// one-step blips (fast alone) and ancient history (slow alone).  It
/// *resolves* only when the fast mean falls to `resolve_fast`, leaving a
/// hysteresis band `(resolve_fast, fire_fast)` in which the alert holds
/// its current state instead of flapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRatePolicy {
    /// Samples in the fast (reactive) window.
    pub fast_window: usize,
    /// Samples retained overall — the slow (confirming) window.
    pub slow_window: usize,
    /// Fast-window mean at or above which the alert may fire.
    pub fire_fast: f64,
    /// Slow-window mean that must concur for the alert to fire.
    pub fire_slow: f64,
    /// Fast-window mean at or below which a firing alert resolves.
    pub resolve_fast: f64,
}

impl BurnRatePolicy {
    /// The tuned policy for each alert kind.
    pub fn for_kind(kind: AlertKind) -> BurnRatePolicy {
        match kind {
            AlertKind::SloBurn => BurnRatePolicy {
                fast_window: 8,
                slow_window: 32,
                fire_fast: 0.25,
                fire_slow: 0.10,
                resolve_fast: 0.05,
            },
            AlertKind::DivertStorm => BurnRatePolicy {
                fast_window: 8,
                slow_window: 32,
                fire_fast: 0.50,
                fire_slow: 0.25,
                resolve_fast: 0.10,
            },
            AlertKind::RebuyThrash => BurnRatePolicy {
                fast_window: 16,
                slow_window: 64,
                fire_fast: 0.25,
                fire_slow: 0.10,
                resolve_fast: 0.05,
            },
            AlertKind::WakeStorm => BurnRatePolicy {
                fast_window: 8,
                slow_window: 32,
                fire_fast: 0.95,
                fire_slow: 0.80,
                resolve_fast: 0.60,
            },
            AlertKind::QueueCensorship => BurnRatePolicy {
                fast_window: 8,
                slow_window: 32,
                fire_fast: 0.50,
                fire_slow: 0.25,
                resolve_fast: 0.10,
            },
        }
    }
}

/// Per-kind rolling state inside the engine.
#[derive(Debug, Clone, Default, PartialEq)]
struct KindState {
    /// The retained signal samples, oldest first (≤ `slow_window`).
    window: VecDeque<f64>,
    /// The strongest signal observed since the last `evaluate` (steps with
    /// no observation evaluate as 0 — silence is health).
    pending: f64,
    /// Whether the alert is currently firing.
    firing: bool,
    /// Evaluation step at which it last fired (for `for_steps`).
    fired_step: u64,
}

/// The deterministic multi-window burn-rate alert engine.
///
/// Call [`AlertEngine::observe`] any number of times per step (strongest
/// signal wins), then [`AlertEngine::evaluate`] exactly once per step to
/// advance the windows and collect transition events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertEngine {
    kinds: [KindState; 5],
    /// Evaluation steps seen so far.
    steps: u64,
}

impl AlertEngine {
    /// A fresh engine with no history.
    pub fn new() -> Self {
        AlertEngine::default()
    }

    /// Records a failure signal in `[0, 1]` for this step.  Multiple
    /// observations in one step combine by maximum, which is
    /// order-independent.
    pub fn observe(&mut self, kind: AlertKind, signal: f64) {
        let st = &mut self.kinds[kind.index()];
        let signal = if signal.is_finite() { signal.clamp(0.0, 1.0) } else { 0.0 };
        st.pending = st.pending.max(signal);
    }

    /// Advances every kind's window by one step and returns the alert
    /// transition events (`alert`/`firing`, `alert`/`resolved`) stamped at
    /// sim time `now`.  Means are recomputed from the retained samples in
    /// deque order each call — no running sums, so no drift and no
    /// accumulation-order sensitivity.
    pub fn evaluate(&mut self, now: SimTime) -> Vec<TraceEvent> {
        self.steps += 1;
        let mut events = Vec::new();
        for kind in AlertKind::ALL {
            let policy = BurnRatePolicy::for_kind(kind);
            let st = &mut self.kinds[kind.index()];
            let signal = st.pending;
            st.pending = 0.0;
            st.window.push_back(signal);
            while st.window.len() > policy.slow_window {
                st.window.pop_front();
            }
            if st.window.len() < policy.fast_window {
                continue;
            }
            let fast_start = st.window.len() - policy.fast_window;
            let fast: f64 =
                st.window.iter().skip(fast_start).sum::<f64>() / policy.fast_window as f64;
            let slow: f64 = st.window.iter().sum::<f64>() / st.window.len() as f64;
            if !st.firing && fast >= policy.fire_fast && slow >= policy.fire_slow {
                st.firing = true;
                st.fired_step = self.steps;
                events.push(
                    TraceEvent::new(now, "alert", "firing")
                        .str("alert", kind.name())
                        .str("cause", kind.cause())
                        .f64("fast", fast)
                        .f64("slow", slow)
                        .f64("fire_fast", policy.fire_fast)
                        .f64("fire_slow", policy.fire_slow)
                        .u64("samples", st.window.len() as u64),
                );
            } else if st.firing && fast <= policy.resolve_fast {
                st.firing = false;
                events.push(
                    TraceEvent::new(now, "alert", "resolved")
                        .str("alert", kind.name())
                        .str("cause", kind.cause())
                        .f64("fast", fast)
                        .f64("resolve_fast", policy.resolve_fast)
                        .u64("for_steps", self.steps - st.fired_step),
                );
            }
        }
        events
    }

    /// Whether `kind` is currently firing.
    pub fn is_firing(&self, kind: AlertKind) -> bool {
        self.kinds[kind.index()].firing
    }

    /// Number of kinds currently firing.
    pub fn firing_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.firing).count()
    }
}

/// The sketch triple kept per (service × generation) cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSketches {
    /// Worst normalized window latency per leaf-step.
    pub latency: QuantileSketch,
    /// SLO slack (`1 - normalized latency`, floored at 0) per leaf-step.
    pub slack: QuantileSketch,
    /// Offered load per leaf-step.
    pub load: QuantileSketch,
}

/// The sketch pair kept per leaf.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LeafSketches {
    /// Worst normalized window latency per step this leaf served.
    pub latency: QuantileSketch,
    /// Full windows stepped per wake (event core) or per step.
    pub wakes: QuantileSketch,
}

/// Leaves reported in the `health`/`leaf` summary events.
pub const TOP_K_LEAVES: usize = 8;

/// The online health plane: sketches plus the alert engine.
///
/// Owned by `Telemetry` when health observation is enabled; the fleet step
/// loop feeds it observations and drains its events into the flight
/// recorder.  It is strictly read-only with respect to the simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthPlane {
    /// Sketches per (service index, generation index) cell.
    cells: BTreeMap<(u8, u8), CellSketches>,
    /// Sketches per leaf id.
    leaves: BTreeMap<u32, LeafSketches>,
    /// The burn-rate alert engine.
    pub engine: AlertEngine,
}

impl HealthPlane {
    /// A fresh, empty plane.
    pub fn new() -> Self {
        HealthPlane::default()
    }

    /// Records one leaf-step observation into its (service × generation)
    /// cell.  The worst window latency feeds the tail-latency sketch; the
    /// mean window latency feeds the SLO-slack sketch as
    /// `max(0, 1 - mean)` (average headroom, not tail panic); the offered
    /// load feeds the load sketch.
    pub fn observe_cell(
        &mut self,
        service: u8,
        generation: u8,
        worst_latency: f64,
        mean_latency: f64,
        load: f64,
    ) {
        let cell = self.cells.entry((service, generation)).or_default();
        cell.latency.observe(worst_latency);
        cell.slack.observe((1.0 - mean_latency).max(0.0));
        cell.load.observe(load);
    }

    /// Records one leaf-step observation for a specific leaf: worst
    /// normalized window latency and how many full windows it stepped
    /// (its wake cost under the event core).
    pub fn observe_leaf(&mut self, leaf: u32, normalized_latency: f64, full_windows: f64) {
        let sketches = self.leaves.entry(leaf).or_default();
        sketches.latency.observe(normalized_latency);
        sketches.wakes.observe(full_windows);
    }

    /// Forwards a failure signal to the alert engine.
    pub fn observe_signal(&mut self, kind: AlertKind, signal: f64) {
        self.engine.observe(kind, signal);
    }

    /// Advances the alert engine one step; returns the transition events.
    pub fn step(&mut self, now: SimTime) -> Vec<TraceEvent> {
        self.engine.evaluate(now)
    }

    /// The sketches for one cell, if it has observations.
    pub fn cell(&self, service: u8, generation: u8) -> Option<&CellSketches> {
        self.cells.get(&(service, generation))
    }

    /// Iterates all cells in (service, generation) order.
    pub fn cells(&self) -> impl Iterator<Item = (&(u8, u8), &CellSketches)> {
        self.cells.iter()
    }

    /// The sketches for one leaf, if it has observations.
    pub fn leaf(&self, leaf: u32) -> Option<&LeafSketches> {
        self.leaves.get(&leaf)
    }

    /// Iterates all leaves in id order.
    pub fn leaves(&self) -> impl Iterator<Item = (&u32, &LeafSketches)> {
        self.leaves.iter()
    }

    /// The [`TOP_K_LEAVES`] unhealthiest leaves by latency p99 (ties break
    /// toward the lower id, so the ranking is total and deterministic).
    pub fn unhealthiest_leaves(&self) -> Vec<(u32, f64)> {
        let mut ranked: Vec<(u32, f64)> =
            self.leaves.iter().map(|(&id, s)| (id, s.latency.p99())).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(TOP_K_LEAVES);
        ranked
    }

    /// Renders the end-of-run summary events: one `health`/`summary` per
    /// cell and one `health`/`leaf` per top-k unhealthy leaf, stamped at
    /// sim time `now`.
    pub fn summary_events(&self, now: SimTime) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for (&(service, generation), cell) in &self.cells {
            events.push(
                TraceEvent::new(now, "health", "summary")
                    .u64("service", u64::from(service))
                    .u64("generation", u64::from(generation))
                    .u64("count", cell.latency.count())
                    .f64("lat_p50", cell.latency.p50())
                    .f64("lat_p95", cell.latency.p95())
                    .f64("lat_p99", cell.latency.p99())
                    .f64("slack_p50", cell.slack.p50())
                    .f64("load_p50", cell.load.p50())
                    .f64("load_p95", cell.load.p95()),
            );
        }
        for (id, p99) in self.unhealthiest_leaves() {
            let sketches = &self.leaves[&id];
            events.push(
                TraceEvent::new(now, "health", "leaf")
                    .u64("leaf", u64::from(id))
                    .u64("count", sketches.latency.count())
                    .f64("lat_p50", sketches.latency.p50())
                    .f64("lat_p99", p99)
                    .f64("wakes_p95", sketches.wakes.p95()),
            );
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(engine: &mut AlertEngine, kind: AlertKind, signals: &[f64]) -> Vec<&'static str> {
        let mut transitions = Vec::new();
        for (i, &s) in signals.iter().enumerate() {
            engine.observe(kind, s);
            for e in engine.evaluate(SimTime::from_secs(i as u64)) {
                if e.field("alert").is_some() {
                    transitions.push(e.kind());
                }
            }
        }
        transitions
    }

    #[test]
    fn alert_fires_only_after_both_windows_agree() {
        let mut engine = AlertEngine::new();
        // 7 hot steps: fast window (8) not yet full — nothing may fire.
        let t = drive(&mut engine, AlertKind::SloBurn, &[1.0; 7]);
        assert!(t.is_empty(), "fired before the fast window filled: {t:?}");
        // The 8th hot step completes the window: fast = slow = 1.0 ≥ both
        // thresholds → fires exactly once.
        let t = drive(&mut engine, AlertKind::SloBurn, &[1.0]);
        assert_eq!(t, vec!["firing"]);
        assert!(engine.is_firing(AlertKind::SloBurn));
    }

    #[test]
    fn one_step_blip_does_not_fire() {
        let mut engine = AlertEngine::new();
        let mut signals = vec![0.0; 12];
        signals[6] = 1.0; // single blip: fast mean peaks at 1/8 < 0.25
        let t = drive(&mut engine, AlertKind::SloBurn, &signals);
        assert!(t.is_empty(), "a single blip fired the alert: {t:?}");
    }

    #[test]
    fn hysteresis_holds_in_the_band_then_resolves() {
        let mut engine = AlertEngine::new();
        drive(&mut engine, AlertKind::SloBurn, &[1.0; 8]);
        assert!(engine.is_firing(AlertKind::SloBurn));
        // Signal drops into the hysteresis band (fast mean stays above
        // resolve_fast = 0.05 but below fire_fast): alert must hold.
        let t = drive(&mut engine, AlertKind::SloBurn, &[0.15; 8]);
        assert!(t.is_empty(), "alert flapped inside the hysteresis band: {t:?}");
        assert!(engine.is_firing(AlertKind::SloBurn));
        // Full recovery: fast mean reaches 0 ≤ resolve_fast → resolves once.
        let t = drive(&mut engine, AlertKind::SloBurn, &[0.0; 8]);
        assert_eq!(t, vec!["resolved"]);
        assert!(!engine.is_firing(AlertKind::SloBurn));
    }

    #[test]
    fn slow_window_vetoes_a_fresh_hot_burst() {
        let mut engine = AlertEngine::new();
        // Long healthy history fills the slow window with zeros.
        drive(&mut engine, AlertKind::DivertStorm, &[0.0; 32]);
        // 8 hot steps: fast = 1.0 but slow = 8/32 = 0.25 — right at
        // fire_slow (0.25 for DivertStorm), so it fires on the 8th.
        // Use SloBurn-style check on a kind with fire_slow above that:
        // WakeStorm needs slow ≥ 0.80, which 8 hot out of 32 can't reach.
        let mut wake = AlertEngine::new();
        drive(&mut wake, AlertKind::WakeStorm, &[0.0; 32]);
        let t = drive(&mut wake, AlertKind::WakeStorm, &[1.0; 8]);
        assert!(t.is_empty(), "slow window failed to veto: {t:?}");
        assert!(!wake.is_firing(AlertKind::WakeStorm));
    }

    #[test]
    fn signals_in_one_step_combine_by_maximum() {
        let mut engine = AlertEngine::new();
        for i in 0..8 {
            engine.observe(AlertKind::QueueCensorship, 0.2);
            engine.observe(AlertKind::QueueCensorship, 0.9);
            engine.observe(AlertKind::QueueCensorship, 0.4);
            let events = engine.evaluate(SimTime::from_secs(i));
            if i == 7 {
                assert_eq!(events.len(), 1, "max-combined signal 0.9 must fire");
            }
        }
    }

    #[test]
    fn alert_kind_names_round_trip() {
        for kind in AlertKind::ALL {
            assert_eq!(AlertKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AlertKind::from_name("nonsense"), None);
    }

    #[test]
    fn top_k_ranking_is_total_and_deterministic() {
        let mut plane = HealthPlane::new();
        for leaf in 0..20u32 {
            // Two tiers of health; ties inside a tier break by id.
            let latency = if leaf % 2 == 0 { 1.5 } else { 0.5 };
            for _ in 0..10 {
                plane.observe_leaf(leaf, latency, 2.0);
            }
        }
        let ranked = plane.unhealthiest_leaves();
        assert_eq!(ranked.len(), TOP_K_LEAVES);
        let ids: Vec<u32> = ranked.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn summary_events_cover_cells_and_top_leaves() {
        let mut plane = HealthPlane::new();
        plane.observe_cell(0, 1, 0.8, 0.6, 30.0);
        plane.observe_cell(0, 1, 1.2, 0.9, 40.0);
        plane.observe_cell(2, 0, 0.3, 0.2, 5.0);
        plane.observe_leaf(7, 1.2, 2.0);
        let events = plane.summary_events(SimTime::from_secs(99));
        let summaries: Vec<_> = events.iter().filter(|e| e.kind() == "summary").collect();
        let leaves: Vec<_> = events.iter().filter(|e| e.kind() == "leaf").collect();
        assert_eq!(summaries.len(), 2);
        assert_eq!(leaves.len(), 1);
        assert!(events.iter().all(|e| e.scope() == "health" && e.time() == SimTime::from_secs(99)));
    }
}
