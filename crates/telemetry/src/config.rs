//! Telemetry configuration.

/// How much telemetry a run collects.
///
/// The default is fully disabled: components hold no trace logs, the fleet
/// holds no recorder, and the hot paths skip every telemetry branch with one
/// `Option` check.  `FleetConfig` embeds this struct, so every existing
/// construction site (`..FleetConfig::default()`) stays untraced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: when false no events, metrics or phase timings are
    /// collected anywhere.
    pub enabled: bool,
    /// Flight-recorder capacity in events; the oldest events are dropped
    /// (and counted) once the ring is full.
    pub trace_capacity: usize,
    /// Online health plane: per-cell quantile sketches and the burn-rate
    /// alert engine.  Requires `enabled` (the plane's events flow through
    /// the flight recorder).
    pub health: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: false, trace_capacity: 1 << 16, health: false }
    }
}

impl TelemetryConfig {
    /// Telemetry on with the default ring capacity.
    pub fn enabled() -> Self {
        TelemetryConfig { enabled: true, ..TelemetryConfig::default() }
    }

    /// Telemetry on with the health plane observing.
    pub fn with_health() -> Self {
        TelemetryConfig { enabled: true, health: true, ..TelemetryConfig::default() }
    }

    /// Checks the configuration is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.trace_capacity == 0 {
            return Err("telemetry.trace_capacity must be positive when enabled".into());
        }
        if self.health && !self.enabled {
            return Err("telemetry.health requires telemetry.enabled".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let cfg = TelemetryConfig::default();
        assert!(!cfg.enabled);
        cfg.validate().unwrap();
        TelemetryConfig::enabled().validate().unwrap();
    }

    #[test]
    fn zero_capacity_is_rejected_only_when_enabled() {
        let cfg =
            TelemetryConfig { enabled: true, trace_capacity: 0, ..TelemetryConfig::default() };
        assert!(cfg.validate().is_err());
        let off =
            TelemetryConfig { enabled: false, trace_capacity: 0, ..TelemetryConfig::default() };
        off.validate().unwrap();
    }

    #[test]
    fn health_requires_the_master_switch() {
        TelemetryConfig::with_health().validate().unwrap();
        let orphan = TelemetryConfig { health: true, ..TelemetryConfig::default() };
        assert!(orphan.validate().is_err());
    }
}
