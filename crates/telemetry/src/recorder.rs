//! The bounded flight recorder and the per-run telemetry bundle.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::config::TelemetryConfig;
use crate::health::HealthPlane;
use crate::metrics::MetricsRegistry;
use crate::span::PhaseBreakdown;
use crate::trace::{json_escape, TraceEvent};
use crate::validate::{METRICS_SCHEMA, TRACE_SCHEMA};

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Like an aircraft flight recorder it keeps the *most recent* history:
/// when full, the oldest event is dropped and counted, so a long run's
/// trace ends at the interesting end (the crash) rather than the take-off.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1 << 12)),
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Appends every event from `iter` in order.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = TraceEvent>) {
        for event in iter {
            self.record(event);
        }
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the trace as a JSONL document: a schema/metadata header line
    /// followed by one line per retained event.  `header` carries run
    /// metadata (seed, policy, balancer), each rendered as a string field.
    pub fn to_jsonl(&self, header: &[(&'static str, String)]) -> String {
        let mut out = String::with_capacity(96 * (self.events.len() + 1));
        let _ = write!(
            out,
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"events\":{},\"dropped\":{}",
            self.events.len(),
            self.dropped
        );
        for (key, value) in header {
            let _ = write!(out, ",\"{}\":\"{}\"", json_escape(key), json_escape(value));
        }
        out.push_str("}\n");
        for event in &self.events {
            out.push_str(&event.jsonl());
            out.push('\n');
        }
        out
    }

    /// Renders the trace as a CSV document (`time_s,scope,kind,fields`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,scope,kind,fields\n");
        for event in &self.events {
            event.push_csv_row(&mut out);
        }
        out
    }
}

/// Everything one traced run collects: the flight recorder, the metrics
/// registry and the wall-time phase breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    /// The bounded decision-event ring.
    pub recorder: FlightRecorder,
    /// Counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// Wall seconds per pipeline phase (diagnostics only — never traced).
    pub phases: PhaseBreakdown,
    /// The online health plane (sketches + alert engine), present only
    /// when [`TelemetryConfig::health`] asked for it.
    pub health: Option<HealthPlane>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(TelemetryConfig::default().trace_capacity)
    }
}

impl Telemetry {
    /// Builds the bundle for `config`, or `None` when telemetry is off.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`TelemetryConfig::validate`].
    pub fn new(config: TelemetryConfig) -> Option<Telemetry> {
        if let Err(e) = config.validate() {
            panic!("invalid telemetry configuration: {e}");
        }
        if !config.enabled {
            return None;
        }
        Some(Telemetry {
            recorder: FlightRecorder::new(config.trace_capacity),
            metrics: MetricsRegistry::new(),
            phases: PhaseBreakdown::new(),
            health: config.health.then(HealthPlane::new),
        })
    }

    /// The run's trace as a JSONL document (see [`FlightRecorder::to_jsonl`]).
    pub fn trace_jsonl(&self, header: &[(&'static str, String)]) -> String {
        self.recorder.to_jsonl(header)
    }

    /// The run's metrics as a JSON document: sorted counters/gauges/
    /// histograms, the wall-time phase breakdown, and the recorder's
    /// retention stats.
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": \"{METRICS_SCHEMA}\",");
        out.push_str(&self.metrics.to_json_sections());
        out.push_str(&self.phases.to_json_section());
        let _ = writeln!(out, "  \"trace_events\": {},", self.recorder.len());
        let _ = writeln!(out, "  \"trace_dropped\": {}", self.recorder.dropped());
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_metrics_json, validate_trace_jsonl};
    use heracles_sim::SimTime;

    fn event(secs: u64) -> TraceEvent {
        TraceEvent::new(SimTime::from_secs(secs), "test", "tick").u64("n", secs)
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut rec = FlightRecorder::new(3);
        rec.extend((0..5).map(event));
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let first = rec.iter().next().unwrap();
        assert_eq!(first.time(), SimTime::from_secs(2));
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
    }

    #[test]
    fn disabled_config_builds_no_bundle() {
        assert!(Telemetry::new(TelemetryConfig::default()).is_none());
        assert!(Telemetry::new(TelemetryConfig::enabled()).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid telemetry configuration")]
    fn invalid_config_is_rejected() {
        Telemetry::new(TelemetryConfig {
            enabled: true,
            trace_capacity: 0,
            ..TelemetryConfig::default()
        });
    }

    #[test]
    fn jsonl_and_metrics_documents_validate() {
        let mut tel = Telemetry::new(TelemetryConfig::enabled()).unwrap();
        tel.recorder.extend((0..4).map(event));
        tel.metrics.inc("test.ticks");
        tel.metrics.observe("test.n", 2.0);
        tel.phases.charge("routing", 0.001);
        tel.phases.bump_steps();
        let trace = tel.trace_jsonl(&[("seed", "7".into())]);
        validate_trace_jsonl(&trace).unwrap();
        assert!(trace.starts_with(&format!("{{\"schema\":\"{TRACE_SCHEMA}\"")));
        assert!(trace.contains("\"seed\":\"7\""));
        assert_eq!(trace.lines().count(), 5);
        let metrics = tel.metrics_json();
        validate_metrics_json(&metrics).unwrap();
        assert!(metrics.contains("\"test.ticks\": 1"));
        assert!(metrics.contains("\"routing_s\":"));
    }

    #[test]
    fn csv_sink_renders_one_row_per_event() {
        let mut rec = FlightRecorder::new(8);
        rec.extend((0..2).map(event));
        let csv = rec.to_csv();
        assert!(csv.starts_with("time_s,scope,kind,fields\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("test,tick,n=1"));
    }
}
