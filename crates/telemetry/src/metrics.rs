//! The metrics registry: counters, gauges and histograms keyed by static
//! metric ids.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::json_escape;

/// Histogram bucket upper bounds: a 1–2–5 sequence spanning nine decades
/// (1e-4 … 5e4), wide enough for normalized latencies, loads, queue waits in
/// seconds and core·second quantities alike.  Observations above the last
/// bound land in the overflow bucket.
pub const HISTOGRAM_BUCKET_BOUNDS: [f64; 27] = [
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0, 2.0, 5.0, 1e1,
    2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4,
];

/// A fixed-bucket histogram with streaming min/max/sum.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// One count per [`HISTOGRAM_BUCKET_BOUNDS`] entry plus the overflow
    /// bucket at the end.
    pub buckets: [u64; HISTOGRAM_BUCKET_BOUNDS.len() + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HISTOGRAM_BUCKET_BOUNDS.len() + 1],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let idx = HISTOGRAM_BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(HISTOGRAM_BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The estimated `q`-quantile (`q` clamped to `[0, 1]`; 0 when empty).
    ///
    /// Locates the bucket holding rank `ceil(q * count)` (the nearest-rank
    /// definition) and interpolates linearly inside it, so the error is
    /// bounded by the width of the containing bucket: with the 1–2–5
    /// bounds that is at most 60% of the exact value for in-range
    /// observations, and exact at the extremes (the first and last ranks
    /// answer `min` and `max`).  Overflow-bucket ranks interpolate between
    /// the last bound and `max`; estimates are clamped to `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                // The bucket's value range, tightened by the observed
                // extremes so sparse tails don't widen the estimate.
                let lo = if idx == 0 {
                    self.min.min(HISTOGRAM_BUCKET_BOUNDS[0])
                } else {
                    HISTOGRAM_BUCKET_BOUNDS[idx - 1]
                };
                let hi = if idx < HISTOGRAM_BUCKET_BOUNDS.len() {
                    HISTOGRAM_BUCKET_BOUNDS[idx]
                } else {
                    self.max.max(*HISTOGRAM_BUCKET_BOUNDS.last().unwrap())
                };
                let within = (rank - cumulative) as f64 / n as f64;
                return (lo + (hi - lo) * within).clamp(self.min, self.max);
            }
            cumulative += n;
        }
        self.max
    }
}

/// Named counters, gauges and histograms.
///
/// Ids are `&'static str` (e.g. `"fleet.jobs_placed"`) so emitters cannot
/// fabricate names at runtime, and storage is a `BTreeMap` so exports
/// iterate in sorted order — a traced run's metrics document is as
/// deterministic as its trace (timing lives in
/// [`PhaseBreakdown`](crate::PhaseBreakdown), not here).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    /// Display units of gauges registered through
    /// [`set_gauge_with_unit`](Self::set_gauge_with_unit) — e.g. power
    /// gauges carry `"W"` so reports render `"290.0 W"` instead of a bare
    /// float.
    gauge_units: BTreeMap<&'static str, &'static str>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: &'static str) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, id: &'static str, n: u64) {
        *self.counters.entry(id).or_insert(0) += n;
    }

    /// Sets a gauge to its latest value.
    pub fn set_gauge(&mut self, id: &'static str, value: f64) {
        self.gauges.insert(id, value);
    }

    /// Sets a gauge and registers its display unit (e.g. `"W"` for power
    /// gauges), so exports and reports can render the value with its unit
    /// instead of a bare float.
    pub fn set_gauge_with_unit(&mut self, id: &'static str, value: f64, unit: &'static str) {
        self.gauges.insert(id, value);
        self.gauge_units.insert(id, unit);
    }

    /// The display unit registered for a gauge, if any.
    pub fn gauge_unit(&self, id: &str) -> Option<&'static str> {
        self.gauge_units.get(id).copied()
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, id: &'static str, value: f64) {
        self.histograms.entry(id).or_default().observe(value);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, id: &str) -> u64 {
        self.counters.get(id).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: &str) -> Option<f64> {
        self.gauges.get(id).copied()
    }

    /// The named histogram, if it has observations.
    pub fn histogram(&self, id: &str) -> Option<&Histogram> {
        self.histograms.get(id)
    }

    /// Renders the three metric families as the body sections of the
    /// metrics document (used by
    /// [`Telemetry::metrics_json`](crate::Telemetry::metrics_json)).
    pub(crate) fn to_json_sections(&self) -> String {
        let mut out = String::new();
        out.push_str("  \"counters\": {");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {v}", json_escape(id));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (id, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": {v:.6}", json_escape(id));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauge_units\": {");
        for (i, (id, unit)) in self.gauge_units.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    \"{}\": \"{}\"", json_escape(id), json_escape(unit));
        }
        out.push_str(if self.gauge_units.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    \"{}\": {{\"count\": {}, \"sum\": {:.6}, \"min\": {:.6}, \
                 \"max\": {:.6}, \"mean\": {:.6}, \"buckets\": [",
                json_escape(id),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() { "},\n" } else { "\n  },\n" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.inc("a.b");
        m.add("a.b", 4);
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_the_latest_value() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_tracks_moments_and_buckets() {
        let mut h = Histogram::default();
        h.observe(0.15);
        h.observe(0.05);
        h.observe(1e9); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.05);
        assert_eq!(h.max, 1e9);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        // 0.15 <= 0.2 → the 2e-1 bucket; 0.05 <= 0.05 → the 5e-2 bucket.
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[8], 1);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_match_exact_values_within_the_bucket_width() {
        // Uniform 1..=1000: exact q-quantile is ~1000q.  Every value lies
        // in buckets whose width is at most 60% of the exact value, so the
        // interpolated estimate must be within that bound.
        let mut h = Histogram::default();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        for &v in &values {
            h.observe(v);
        }
        for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!((est - exact).abs() <= 0.6 * exact, "q={q}: estimate {est} vs exact {exact}");
        }
    }

    #[test]
    fn quantile_extremes_answer_min_and_max() {
        let mut h = Histogram::default();
        for v in [0.3, 0.7, 1.4, 2.2, 4.9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 0.3);
        assert_eq!(h.quantile(1.0), 4.9);
    }

    #[test]
    fn overflow_bucket_interpolates_toward_max() {
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(8e4); // beyond the last bound (5e4)
        let p100 = h.quantile(1.0);
        assert!(p100 > 5e4 && p100 <= 8e4, "overflow estimate {p100}");
    }

    #[test]
    fn single_bucket_cluster_is_interpolated_inside_the_bucket() {
        // All mass in the (0.5, 1.0] bucket: every quantile must land there.
        let mut h = Histogram::default();
        for i in 0..100 {
            h.observe(0.6 + 0.3 * (i as f64 / 99.0));
        }
        for q in [0.1, 0.5, 0.9] {
            let est = h.quantile(q);
            assert!((0.5..=1.0).contains(&est), "q={q} escaped the bucket: {est}");
        }
    }

    #[test]
    fn gauges_with_units_render_their_unit_in_the_export() {
        let mut m = MetricsRegistry::new();
        m.set_gauge_with_unit("fleet.peak_power_w", 290.5, "W");
        m.set_gauge("fleet.queue_depth", 3.0);
        assert_eq!(m.gauge_unit("fleet.peak_power_w"), Some("W"));
        assert_eq!(m.gauge_unit("fleet.queue_depth"), None);
        let doc = m.to_json_sections();
        assert!(doc.contains("\"gauge_units\""));
        assert!(doc.contains("\"fleet.peak_power_w\": \"W\""));
        assert!(doc.contains("\"fleet.peak_power_w\": 290.500000"));
    }

    #[test]
    fn json_sections_are_sorted_and_escaped() {
        let mut m = MetricsRegistry::new();
        m.inc("z.last");
        m.inc("a.first");
        m.set_gauge("g", 0.5);
        m.observe("h", 1.0);
        let doc = m.to_json_sections();
        let a = doc.find("a.first").unwrap();
        let z = doc.find("z.last").unwrap();
        assert!(a < z, "counters must iterate sorted");
        assert!(doc.contains("\"g\": 0.500000"));
        assert!(doc.contains("\"count\": 1"));
    }
}
