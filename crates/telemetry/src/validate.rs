//! Hand-rolled schema validators for the telemetry artifacts.
//!
//! The workspace vendors no JSON parser, and both documents are produced by
//! equally hand-rolled writers in this crate, so substring checks are exact
//! rather than heuristic — the same trade `BENCH_fleet.json` makes with
//! `validate_bench_json`.  CI runs these over the artifacts `fleet_scale
//! --trace/--metrics` emits, so a malformed document fails the build instead
//! of silently drifting.

/// Schema tag on the first line of every trace JSONL document.
pub const TRACE_SCHEMA: &str = "heracles-trace/v1";

/// Schema tag in every metrics JSON document.
pub const METRICS_SCHEMA: &str = "heracles-metrics/v1";

/// Validates a trace JSONL document: a header line carrying the schema tag
/// and retention stats, then one JSON object per line with a numeric `"t"`
/// and string `"scope"`/`"kind"` fields, in non-decreasing time order.
pub fn validate_trace_jsonl(doc: &str) -> Result<(), String> {
    let mut lines = doc.lines();
    let header = lines.next().ok_or("empty document")?;
    if !header.contains(&format!("\"schema\":\"{TRACE_SCHEMA}\"")) {
        return Err(format!("header missing schema tag {TRACE_SCHEMA:?}"));
    }
    let declared = numeric_field(header, "\"events\":")
        .ok_or("header missing numeric \"events\" field")? as usize;
    numeric_field(header, "\"dropped\":").ok_or("header missing numeric \"dropped\" field")?;
    let mut events = 0usize;
    let mut last_t = f64::NEG_INFINITY;
    for (i, line) in lines.enumerate() {
        let n = i + 2; // 1-based, after the header
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {n} is not a JSON object"));
        }
        let t = numeric_field(line, "\"t\":")
            .ok_or_else(|| format!("line {n} missing numeric \"t\""))?;
        if t < last_t {
            return Err(format!("line {n} goes backwards in sim time ({t} < {last_t})"));
        }
        last_t = t;
        for key in ["\"scope\":\"", "\"kind\":\""] {
            if !line.contains(key) {
                return Err(format!("line {n} missing {key}...\" field"));
            }
        }
        events += 1;
    }
    if events != declared {
        return Err(format!("header declares {declared} events, found {events}"));
    }
    Ok(())
}

/// Validates a metrics JSON document: the schema tag, the four sections
/// (counters, gauges, histograms, phases) and numeric retention stats.
pub fn validate_metrics_json(doc: &str) -> Result<(), String> {
    if !doc.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\"")) {
        return Err(format!("missing schema tag {METRICS_SCHEMA:?}"));
    }
    for section in ["\"counters\": {", "\"gauges\": {", "\"histograms\": {", "\"phases\": {"] {
        if !doc.contains(section) {
            return Err(format!("missing section {section}...}}"));
        }
    }
    for key in ["\"trace_events\":", "\"trace_dropped\":", "\"steps\":"] {
        numeric_field(doc, key).ok_or_else(|| format!("missing numeric {key} field"))?;
    }
    Ok(())
}

/// The numeric value following the first occurrence of `needle`, if any.
fn numeric_field(doc: &str, needle: &str) -> Option<f64> {
    let pos = doc.find(needle)?;
    let rest = &doc[pos + needle.len()..];
    let value: String = rest.trim_start().chars().take_while(|c| !",}\n".contains(*c)).collect();
    value.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_doc() -> String {
        format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"events\":2,\"dropped\":0,\"seed\":\"7\"}}\n\
             {{\"t\":1.000000,\"scope\":\"core\",\"kind\":\"be_state\"}}\n\
             {{\"t\":2.000000,\"scope\":\"fleet\",\"kind\":\"step\",\"n\":2}}\n"
        )
    }

    #[test]
    fn well_formed_trace_validates() {
        validate_trace_jsonl(&trace_doc()).unwrap();
    }

    #[test]
    fn trace_validator_rejects_malformed_documents() {
        assert!(validate_trace_jsonl("").is_err());
        assert!(validate_trace_jsonl(&trace_doc().replace("heracles-trace/v1", "v0")).is_err());
        assert!(validate_trace_jsonl(&trace_doc().replace("\"events\":2", "\"events\":9")).is_err());
        assert!(validate_trace_jsonl(&trace_doc().replace("\"t\":2.000000", "\"t\":oops")).is_err());
        assert!(validate_trace_jsonl(&trace_doc().replace("\"t\":2.000000", "\"t\":0.5")).is_err());
        assert!(validate_trace_jsonl(&trace_doc().replace("\"scope\":\"fleet\"", "\"nope\":3"))
            .is_err());
    }

    #[test]
    fn metrics_validator_requires_all_sections() {
        let doc = format!(
            "{{\n  \"schema\": \"{METRICS_SCHEMA}\",\n  \"counters\": {{}},\n  \
             \"gauges\": {{}},\n  \"histograms\": {{}},\n  \"phases\": {{\"steps\": 3}},\n  \
             \"trace_events\": 1,\n  \"trace_dropped\": 0\n}}\n"
        );
        validate_metrics_json(&doc).unwrap();
        assert!(validate_metrics_json(&doc.replace("heracles-metrics/v1", "v0")).is_err());
        assert!(validate_metrics_json(&doc.replace("\"phases\"", "\"p\"")).is_err());
        assert!(validate_metrics_json(&doc.replace("\"trace_events\": 1", "\"x\": 1")).is_err());
    }
}
