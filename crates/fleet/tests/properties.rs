//! Property tests for the fleet scheduler's invariants:
//!
//! * no placement policy ever returns a server without a free BE slot, for
//!   any generation mix, slot capacity, fleet shape and store state (and
//!   the store itself panics on oversubscription, so a full fleet run
//!   doubles as a check),
//! * no policy ever places a job on a server whose controller has BE
//!   disabled — such a job would sit at zero progress until preempted,
//! * core-weighted fleet EMU is scale-invariant: duplicating every server
//!   leaves it unchanged,
//! * identical seeds give identical fleet schedules,
//! * LC demand is conserved under any legal sequence of add/drain/retire
//!   actions, for every balancer: each step, every service's routed QPS
//!   equals its offered QPS — traffic is re-divided when the pool changes,
//!   never created or destroyed,
//! * identical seeds give identical routing decisions for every balancer.

use proptest::prelude::*;

use heracles_colo::ColoConfig;
use heracles_fleet::{
    core_weighted_mean, BalancerKind, FirstFit, FleetConfig, FleetSim, Generation, GenerationMix,
    InterferenceAware, InterferenceModel, JobStreamConfig, LeastLoaded, PlacementPolicy,
    PlacementStore, PolicyKind, RandomPlacement, ServerCapacity, ServerState, ShardingMode,
};
use heracles_hw::ServerConfig;
use heracles_sim::{SimRng, SimTime};
use heracles_workloads::{BeKind, BeWorkload, ServiceMix};

/// Builds a randomized heterogeneous store: `servers` hosts drawn from
/// `mix`, with loads, slacks and admission verdicts drawn from the seed,
/// and a seed-dependent share of the slots already occupied.
fn arbitrary_store(servers: usize, slots: usize, mix: GenerationMix, seed: u64) -> PlacementStore {
    let mut rng = SimRng::new(seed);
    let base = ServerConfig::default_haswell();
    let capacities: Vec<ServerCapacity> = mix
        .assignments(servers)
        .into_iter()
        .map(|g| ServerCapacity::from_config(&g.server_config(&base), slots, g.index()))
        .collect();
    let mut store = PlacementStore::heterogeneous(&capacities);
    let mut next_job = 0;
    for id in 0..servers {
        store.set_load(id, rng.uniform());
        store.observe(
            id,
            SimTime::from_secs(1),
            rng.uniform_range(-0.2, 1.0),
            rng.uniform(),
            rng.uniform(),
            rng.chance(0.8),
        );
        let occupied = rng.index(store.server(id).be_slots + 1);
        for _ in 0..occupied {
            store.place(next_job, id);
            next_job += 1;
        }
    }
    store
}

fn policies() -> Vec<Box<dyn PlacementPolicy>> {
    let model = InterferenceModel::from_scores([
        (BeKind::Brain, 1.5),
        (BeKind::Streetview, 50.0),
        (BeKind::StreamDram, 290.0),
        (BeKind::LlcMedium, 0.3),
    ]);
    vec![
        Box::new(RandomPlacement::default()),
        Box::new(FirstFit::default()),
        Box::new(LeastLoaded::default()),
        Box::new(InterferenceAware::new(model)),
    ]
}

fn job_for(kind_idx: usize, id: usize) -> heracles_fleet::BeJob {
    let catalogue = BeWorkload::evaluation_set();
    heracles_fleet::BeJob {
        id,
        workload: catalogue[kind_idx % catalogue.len()].clone(),
        demand_core_s: 100.0,
        remaining_core_s: 100.0,
        arrival: SimTime::ZERO,
        first_start: None,
        completion: None,
        preemptions: 0,
        migrations: 0,
        migration_overhead_core_s: 0.0,
    }
}

/// A strategy over valid generation mixes, including both homogeneous and
/// heavily skewed blends.
fn mix_strategy() -> impl Strategy<Value = GenerationMix> {
    (0.0..=1.0f64, 0.0..=1.0f64).prop_map(|(a, b)| {
        // Map the unit square onto valid (older, newer) pairs.
        let older = a;
        let newer = b * (1.0 - a);
        GenerationMix { older, newer }
    })
}

proptest! {
    /// No policy ever places onto a server without a free slot, whatever
    /// the generation mix and store state; committing the returned
    /// placement never trips the store's capacity assert.
    #[test]
    fn no_policy_exceeds_slot_capacity(
        servers in 1usize..12,
        slots in 1usize..4,
        mix in mix_strategy(),
        seed in 0u64..1_000,
        kind_idx in 0usize..6,
    ) {
        for policy in &mut policies() {
            let mut store = arbitrary_store(servers, slots, mix, seed);
            let mut rng = SimRng::new(seed ^ 0xD15);
            let total_slots: usize =
                store.servers().iter().map(|s| s.be_slots).sum();
            // Keep placing until the policy declines; every acceptance must
            // target a server with capacity.
            for step in 0..(total_slots + 1) {
                let job = job_for(kind_idx, 1_000 + step);
                match policy.place(&job, &store, &mut rng) {
                    Some(server) => {
                        prop_assert!(
                            store.server(server).has_free_slot(),
                            "{} returned full server {server}",
                            policy.name()
                        );
                        store.place(job.id, server);
                    }
                    None => break,
                }
            }
            prop_assert!(
                store.running_jobs() <= total_slots,
                "{} oversubscribed the fleet",
                policy.name()
            );
        }
    }

    /// No policy ever places a job on a server whose controller has BE
    /// disabled, for any generation mix and seed: such a placement can
    /// only burn the job's preemption grace at zero progress.
    #[test]
    fn no_policy_places_onto_a_be_disabled_server(
        servers in 1usize..12,
        slots in 1usize..4,
        mix in mix_strategy(),
        seed in 0u64..1_000,
        kind_idx in 0usize..6,
    ) {
        for policy in &mut policies() {
            let mut store = arbitrary_store(servers, slots, mix, seed);
            let mut rng = SimRng::new(seed ^ 0xBEEF);
            for step in 0..24 {
                let job = job_for(kind_idx + step, 2_000 + step);
                match policy.place(&job, &store, &mut rng) {
                    Some(server) => {
                        prop_assert!(
                            store.server(server).be_admitted,
                            "{} placed job onto BE-disabled server {server}",
                            policy.name()
                        );
                        store.place(job.id, server);
                    }
                    None => break,
                }
            }
        }
    }

    /// Core-weighted fleet EMU is scale-invariant: duplicating every
    /// server (its EMU sample and its core count) leaves the aggregate
    /// unchanged, for any fleet shape.
    #[test]
    fn core_weighted_emu_is_invariant_under_duplication(
        per_server in proptest::collection::vec((0.0..2.0f64, 1usize..128), 1..40),
        copies in 2usize..5,
    ) {
        let (emus, cores): (Vec<f64>, Vec<usize>) = per_server.into_iter().unzip();
        let single = core_weighted_mean(&emus, &cores);
        let mut emus_dup = Vec::new();
        let mut cores_dup = Vec::new();
        for _ in 0..copies {
            emus_dup.extend_from_slice(&emus);
            cores_dup.extend_from_slice(&cores);
        }
        let duplicated = core_weighted_mean(&emus_dup, &cores_dup);
        prop_assert!(
            (single - duplicated).abs() < 1e-9,
            "duplication changed core-weighted EMU: {single} vs {duplicated}"
        );
    }

    /// Identical seeds give identical fleet schedules (placements,
    /// preemptions, completions and metrics) — including on mixed
    /// generation fleets — and different seeds diverge.
    #[test]
    fn identical_seeds_give_identical_schedules(seed in 0u64..50) {
        let config = FleetConfig {
            servers: 4,
            steps: 6,
            windows_per_step: 2,
            seed,
            mix: GenerationMix::mixed_datacenter(),
            colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..FleetConfig::fast_test()
        };
        let run = |cfg: FleetConfig| {
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::Random).run()
        };
        let a = run(config);
        let b = run(config);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(&a.jobs, &b.jobs);
        prop_assert_eq!(&a.steps, &b.steps);
        prop_assert_eq!(&a.server_cores, &b.server_cores);
    }

    /// LC demand conservation under any legal sequence of scale actions,
    /// for every balancer: whatever gets added, drained or retired, each
    /// step routes every service's full offered QPS onto the surviving
    /// leaves — the balancer re-divides traffic, it never loses it.
    #[test]
    fn lc_demand_is_conserved_under_any_scale_action_sequence(
        servers in 3usize..7,
        seed in 0u64..200,
        balancer_idx in 0usize..2,
        action_seed in 0u64..1_000,
    ) {
        let config = FleetConfig {
            servers,
            steps: 8,
            windows_per_step: 2,
            seed,
            services: ServiceMix::mixed_frontend(),
            balancer: BalancerKind::all()[balancer_idx],
            mix: GenerationMix::mixed_datacenter(),
            colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 0.5, ..JobStreamConfig::default() },
            ..FleetConfig::fast_services()
        };
        let mut sim =
            FleetSim::new(config, ServerConfig::default_haswell(), PolicyKind::LeastLoaded);
        let mut actions = SimRng::new(action_seed);
        for _ in 0..config.steps {
            match actions.index(4) {
                0 => {
                    sim.add_server(Generation::all()[actions.index(3)]);
                }
                1 => {
                    let active: Vec<_> = sim
                        .store()
                        .servers()
                        .iter()
                        .filter(|s| s.is_active())
                        .map(|s| s.id)
                        .collect();
                    if !active.is_empty() {
                        sim.begin_drain(active[actions.index(active.len())]);
                    }
                }
                2 => {
                    // Retire a random *legally retirable* draining server:
                    // empty, and not its service's last in-service leaf.
                    let retirable: Vec<_> = sim
                        .store()
                        .servers()
                        .iter()
                        .filter(|s| {
                            s.state == ServerState::Draining
                                && s.resident.is_empty()
                                && sim.store().in_service_leaves(s.service) > 1
                        })
                        .map(|s| s.id)
                        .collect();
                    if !retirable.is_empty() {
                        sim.retire_server(retirable[actions.index(retirable.len())]);
                    }
                }
                _ => {}
            }
            let step = sim.step_once();
            for (offered, routed) in step.offered_qps.iter().zip(&step.routed_qps) {
                prop_assert!(
                    (offered - routed).abs() <= 1e-6 * (1.0 + offered),
                    "demand not conserved: offered {offered} routed {routed}"
                );
            }
        }
    }

    /// The sharded store is a pure indexing change: for arbitrary mixes,
    /// seeds, policies, balancers and add/drain/retire churn, a
    /// per-(generation × service)-sharded store and a single flat shard
    /// yield identical placements (the event log), identical routed loads
    /// and step metrics, and an identical job ledger.
    #[test]
    fn sharded_and_unsharded_stores_give_identical_results(
        servers in 3usize..7,
        seed in 0u64..100,
        policy_idx in 0usize..4,
        balancer_idx in 0usize..2,
        action_seed in 0u64..500,
    ) {
        let base = FleetConfig {
            servers,
            steps: 8,
            windows_per_step: 2,
            seed,
            services: ServiceMix::mixed_frontend(),
            balancer: BalancerKind::all()[balancer_idx],
            mix: GenerationMix::mixed_datacenter(),
            colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.5, ..JobStreamConfig::default() },
            ..FleetConfig::fast_services()
        };
        let run = |sharding: ShardingMode, batch_dispatch: bool| {
            let config = FleetConfig { sharding, batch_dispatch, ..base };
            let policy = policies().remove(policy_idx);
            let mut sim =
                FleetSim::with_policy(config, ServerConfig::default_haswell(), policy);
            let mut actions = SimRng::new(action_seed);
            for _ in 0..config.steps {
                match actions.index(4) {
                    0 => {
                        sim.add_server(Generation::all()[actions.index(3)]);
                    }
                    1 => {
                        let active: Vec<_> = sim
                            .store()
                            .servers()
                            .iter()
                            .filter(|s| s.is_active())
                            .map(|s| s.id)
                            .collect();
                        if !active.is_empty() {
                            sim.begin_drain(active[actions.index(active.len())]);
                        }
                    }
                    2 => {
                        let retirable: Vec<_> = sim
                            .store()
                            .servers()
                            .iter()
                            .filter(|s| {
                                s.state == ServerState::Draining
                                    && s.resident.is_empty()
                                    && sim.store().in_service_leaves(s.service) > 1
                            })
                            .map(|s| s.id)
                            .collect();
                        if !retirable.is_empty() {
                            sim.retire_server(retirable[actions.index(retirable.len())]);
                        }
                    }
                    _ => {}
                }
                sim.step_once();
            }
            sim.into_result()
        };
        let sharded = run(ShardingMode::PerPool, true);
        let flat = run(ShardingMode::Single, true);
        // Flat store AND per-job dispatch: exactly the pre-sharding
        // scheduler's control plane, end to end.
        let legacy = run(ShardingMode::Single, false);
        for other in [&flat, &legacy] {
            prop_assert_eq!(&sharded.events, &other.events);
            prop_assert_eq!(&sharded.jobs, &other.jobs);
            prop_assert_eq!(&sharded.steps, &other.steps);
            prop_assert_eq!(&sharded.server_services, &other.server_services);
        }
    }

    /// Identical seeds give identical routing decisions for every
    /// balancer (offered series, routed series and the resulting
    /// per-service loads all match exactly).
    #[test]
    fn identical_seeds_give_identical_routing(
        seed in 0u64..100,
        balancer_idx in 0usize..2,
    ) {
        let config = FleetConfig {
            servers: 4,
            steps: 6,
            windows_per_step: 2,
            seed,
            services: ServiceMix::mixed_frontend(),
            balancer: BalancerKind::all()[balancer_idx],
            colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..FleetConfig::fast_services()
        };
        let run = |cfg: FleetConfig| {
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::LeastLoaded).run()
        };
        let a = run(config);
        let b = run(config);
        for (sa, sb) in a.steps.iter().zip(&b.steps) {
            prop_assert_eq!(sa.offered_qps, sb.offered_qps);
            prop_assert_eq!(sa.routed_qps, sb.routed_qps);
            prop_assert_eq!(sa.service_load, sb.service_load);
        }
        prop_assert_eq!(&a.steps, &b.steps);
        prop_assert_eq!(&a.server_services, &b.server_services);
    }

    /// Generation assignments are deterministic, proportional and cover
    /// the fleet for any valid mix.
    #[test]
    fn generation_assignments_are_proportional(
        mix in mix_strategy(),
        servers in 1usize..200,
    ) {
        let gens = mix.assignments(servers);
        prop_assert_eq!(gens.len(), servers);
        prop_assert_eq!(&gens, &mix.assignments(servers));
        let older = gens.iter().filter(|&&g| g == Generation::Older).count() as f64;
        let newer = gens.iter().filter(|&&g| g == Generation::Newer).count() as f64;
        let n = servers as f64;
        prop_assert!((older - mix.older * n).abs() <= 1.0 + 1e-9);
        prop_assert!((newer - mix.newer * n).abs() <= 1.0 + 1e-9);
    }
}
