//! Property tests for the fleet scheduler's invariants:
//!
//! * no placement policy ever returns a server without a free BE slot, for
//!   any slot capacity, fleet shape and store state (and the store itself
//!   panics on oversubscription, so a full fleet run doubles as a check),
//! * identical seeds give identical fleet schedules.

use proptest::prelude::*;

use heracles_colo::ColoConfig;
use heracles_fleet::{
    FirstFit, FleetConfig, FleetSim, InterferenceAware, InterferenceModel, JobStreamConfig,
    LeastLoaded, PlacementPolicy, PlacementStore, PolicyKind, RandomPlacement,
};
use heracles_hw::ServerConfig;
use heracles_sim::{SimRng, SimTime};
use heracles_workloads::{BeKind, BeWorkload};

/// Builds a randomized store: `servers` hosts with `slots` capacity, loads
/// and slacks drawn from the seed, and a seed-dependent share of the slots
/// already occupied.
fn arbitrary_store(servers: usize, slots: usize, seed: u64) -> PlacementStore {
    let mut rng = SimRng::new(seed);
    let mut store = PlacementStore::new(servers, slots);
    let mut next_job = 0;
    for id in 0..servers {
        store.set_load(id, rng.uniform());
        store.observe(
            id,
            SimTime::from_secs(1),
            rng.uniform_range(-0.2, 1.0),
            rng.uniform(),
            rng.uniform(),
            rng.chance(0.8),
        );
        let occupied = rng.index(slots + 1);
        for _ in 0..occupied {
            store.place(next_job, id);
            next_job += 1;
        }
    }
    store
}

fn policies() -> Vec<Box<dyn PlacementPolicy>> {
    let model = InterferenceModel::from_scores([
        (BeKind::Brain, 1.5),
        (BeKind::Streetview, 50.0),
        (BeKind::StreamDram, 290.0),
        (BeKind::LlcMedium, 0.3),
    ]);
    vec![
        Box::new(RandomPlacement),
        Box::new(FirstFit),
        Box::new(LeastLoaded),
        Box::new(InterferenceAware::new(model)),
    ]
}

fn job_for(kind_idx: usize, id: usize) -> heracles_fleet::BeJob {
    let catalogue = BeWorkload::evaluation_set();
    heracles_fleet::BeJob {
        id,
        workload: catalogue[kind_idx % catalogue.len()].clone(),
        demand_core_s: 100.0,
        remaining_core_s: 100.0,
        arrival: SimTime::ZERO,
        first_start: None,
        completion: None,
        preemptions: 0,
    }
}

proptest! {
    /// No policy ever places onto a server without a free slot, whatever the
    /// store state; committing the returned placement never trips the
    /// store's capacity assert.
    #[test]
    fn no_policy_exceeds_slot_capacity(
        servers in 1usize..12,
        slots in 1usize..4,
        seed in 0u64..1_000,
        kind_idx in 0usize..6,
    ) {
        for policy in &mut policies() {
            let mut store = arbitrary_store(servers, slots, seed);
            let mut rng = SimRng::new(seed ^ 0xD15);
            // Keep placing until the policy declines; every acceptance must
            // target a server with capacity.
            for step in 0..(servers * slots + 1) {
                let job = job_for(kind_idx, 1_000 + step);
                match policy.place(&job, &store, &mut rng) {
                    Some(server) => {
                        prop_assert!(
                            store.server(server).has_free_slot(),
                            "{} returned full server {server}",
                            policy.name()
                        );
                        store.place(job.id, server);
                    }
                    None => break,
                }
            }
            prop_assert!(
                store.running_jobs() <= servers * slots,
                "{} oversubscribed the fleet",
                policy.name()
            );
        }
    }

    /// Identical seeds give identical fleet schedules (placements,
    /// preemptions, completions and metrics), and different seeds diverge.
    #[test]
    fn identical_seeds_give_identical_schedules(seed in 0u64..50) {
        let config = FleetConfig {
            servers: 4,
            steps: 6,
            windows_per_step: 2,
            seed,
            colo: ColoConfig { requests_per_window: 400, ..ColoConfig::fast_test() },
            jobs: JobStreamConfig { arrivals_per_step: 1.0, ..JobStreamConfig::default() },
            ..FleetConfig::fast_test()
        };
        let run = |cfg: FleetConfig| {
            FleetSim::new(cfg, ServerConfig::default_haswell(), PolicyKind::Random).run()
        };
        let a = run(config);
        let b = run(config);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(&a.jobs, &b.jobs);
        prop_assert_eq!(&a.steps, &b.steps);
    }
}
