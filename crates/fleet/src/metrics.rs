//! Fleet-level results: per-step records, the job ledger and the scheduler's
//! event log, with the aggregates the policy sweeps compare.

use heracles_cluster::TcoModel;
use heracles_sim::csv::CsvRow;
use heracles_sim::SimTime;
use heracles_workloads::{LcKind, NUM_SERVICES};
use serde::{Deserialize, Serialize};

use crate::job::{BeJob, JobId};
use crate::store::{ServerId, REFERENCE_CORES};

/// The mean of per-server `values` weighted by each server's core count.
///
/// This is how a heterogeneous fleet aggregates utilization: a 48-core box
/// at 80% EMU contributes three times the machine time of a 16-core box at
/// the same fraction, so weighting by cores (rather than counting servers)
/// keeps fleet EMU meaning "fraction of the fleet's compute doing useful
/// work".  The result is invariant under duplicating every server, and
/// reduces to the plain mean on a uniform fleet.  Returns 0.0 for empty
/// input.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn core_weighted_mean(values: &[f64], cores: &[usize]) -> f64 {
    assert_eq!(values.len(), cores.len(), "one value per server");
    let total: usize = cores.iter().sum();
    if total == 0 {
        return 0.0;
    }
    values.iter().zip(cores).map(|(v, &c)| v * c as f64).sum::<f64>() / total as f64
}

/// Seconds in one amortization year (the unit the TCO model's annual costs
/// are spread over when charging per simulated step).
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Fraction of a server's cost that does not scale with its core count (the
/// chassis, NIC, motherboard, rack share).  The rest scales linearly with
/// cores relative to the reference generation, so a 48-core Skylake box
/// costs more than a 16-core Sandy Bridge one — but less than 3× more,
/// which is what makes "which generation should scale-out buy" a real
/// marginal-throughput-per-dollar question instead of a wash.
pub const PLATFORM_COST_FLOOR: f64 = 0.5;

/// Amortized TCO of one server for one simulated step of `step_s` seconds,
/// in dollars: the annual capex (server plus infrastructure) and the energy
/// bill at the step's utilization, both scaled to the server's core count
/// (see [`PLATFORM_COST_FLOOR`]) and prorated to the step.
///
/// This is the per-step cost series an elastic fleet sums: a retired server
/// stops contributing from the step it leaves, which is exactly the saving
/// an autoscaler is buying when it drains a box.
pub fn server_step_tco_dollars(tco: &TcoModel, cores: usize, utilization: f64, step_s: f64) -> f64 {
    let ratio = cores as f64 / REFERENCE_CORES as f64;
    let scale = PLATFORM_COST_FLOOR + (1.0 - PLATFORM_COST_FLOOR) * ratio;
    let annual = (tco.annual_capex_per_server()
        + tco.annual_energy_per_server(utilization.clamp(0.0, 1.0)))
        * scale;
    annual * step_s / SECONDS_PER_YEAR
}

/// Cumulative wall-clock cost of the scheduler's control plane over a run:
/// the traffic-routing and dispatch phases of every step, plus (for an
/// elastic run) the autoscaler's signal assembly.  This is the per-step
/// cost the fleet-size benchmark tracks — the server plane parallelizes
/// across cores, so at warehouse scale the control plane is what bounds a
/// step.
///
/// Timings deliberately live outside [`FleetStep`] and [`FleetResult`]:
/// those are compared bit-for-bit by the determinism and shard-equivalence
/// tests, and wall-clock noise must never be able to break them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ControlPlaneProfile {
    /// Seconds spent routing each service's offered QPS onto its leaves
    /// (including committing the per-leaf loads to the store).
    pub routing_s: f64,
    /// Seconds spent planning and committing BE placements (the policy's
    /// round plan, the per-job placement loop, and syncing each runner's
    /// BE attachment to the committed placements).
    pub dispatch_s: f64,
    /// Seconds spent assembling autoscale signals.  Zero for a plain fleet
    /// run; the elastic controller charges it through the fleet's
    /// [`FleetSim::charge_signals_s`](crate::FleetSim::charge_signals_s),
    /// so one profile owns every part exactly once.
    pub signals_s: f64,
    /// Steps profiled so far.
    pub steps: usize,
    /// Every second charged through the `charge_*` methods, accumulated
    /// independently of the per-part fields.  Writing a part field directly
    /// (the overwrite-merge bug this guards against) desyncs it from the
    /// part sum, which the exactly-once unit test catches.
    recorded_total_s: f64,
}

impl ControlPlaneProfile {
    /// Charges routing seconds (attributed exactly once per step).
    pub fn charge_routing(&mut self, seconds: f64) {
        self.routing_s += seconds;
        self.recorded_total_s += seconds;
    }

    /// Charges dispatch seconds (attributed exactly once per step).
    pub fn charge_dispatch(&mut self, seconds: f64) {
        self.dispatch_s += seconds;
        self.recorded_total_s += seconds;
    }

    /// Charges autoscale signal-assembly seconds.
    pub fn charge_signals(&mut self, seconds: f64) {
        self.signals_s += seconds;
        self.recorded_total_s += seconds;
    }

    /// Seconds charged through the `charge_*` methods.  Equal (up to float
    /// summation order) to [`control_plane_s`](Self::control_plane_s) as
    /// long as every part was charged exactly once.
    pub fn recorded_total_s(&self) -> f64 {
        self.recorded_total_s
    }

    /// Total control-plane seconds (routing + dispatch + signals).
    pub fn control_plane_s(&self) -> f64 {
        self.routing_s + self.dispatch_s + self.signals_s
    }

    /// Mean control-plane milliseconds per step (0.0 before any step ran).
    pub fn per_step_ms(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.control_plane_s() * 1e3 / self.steps as f64
    }
}

/// Cumulative wall-clock cost of the server plane over a run — the parallel
/// leaf-stepping phase of every step — together with how much of that work
/// the event-driven core actually performed versus skipped.
///
/// Like [`ControlPlaneProfile`], these timings and counters deliberately
/// live outside [`FleetStep`] and [`FleetResult`]: those are compared
/// bit-for-bit between the `Stepped` and `EventDriven` cores, and neither
/// wall-clock noise nor the (intentionally core-dependent) wake counts may
/// break that comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerPlaneProfile {
    /// Seconds spent in the parallel leaf-stepping phase.
    pub servers_s: f64,
    /// Steps profiled so far.
    pub steps: usize,
    /// Leaf-steps where the leaf ran at least one full simulation window
    /// (the leaf was effectively awake this step).
    pub woken_leaf_steps: u64,
    /// Leaf-steps fully satisfied by the steady-state fast path.
    pub quiescent_leaf_steps: u64,
    /// Measurement windows that ran the full simulation path.
    pub full_windows: u64,
    /// Measurement windows satisfied by the steady-state fast path.
    pub fast_windows: u64,
}

impl ServerPlaneProfile {
    /// Charges one step's leaf-stepping seconds and per-leaf path counts.
    pub fn charge_step(
        &mut self,
        seconds: f64,
        woken_leaves: u64,
        quiescent_leaves: u64,
        full_windows: u64,
        fast_windows: u64,
    ) {
        self.servers_s += seconds;
        self.steps += 1;
        self.woken_leaf_steps += woken_leaves;
        self.quiescent_leaf_steps += quiescent_leaves;
        self.full_windows += full_windows;
        self.fast_windows += fast_windows;
    }

    /// Mean server-plane milliseconds per step (0.0 before any step ran).
    pub fn per_step_ms(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.servers_s * 1e3 / self.steps as f64
    }

    /// Mean number of woken leaves per step (0.0 before any step ran).
    pub fn woken_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.woken_leaf_steps as f64 / self.steps as f64
    }
}

/// One step of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetStep {
    /// Simulated time at the end of the step.
    pub time: SimTime,
    /// Core-weighted mean LC load across the in-service fleet during the
    /// step.
    pub mean_load: f64,
    /// Core-weighted mean Effective Machine Utilization across in-service
    /// servers (last window): the fraction of the fleet's *compute*, not of
    /// its server count, doing useful work.
    pub fleet_emu: f64,
    /// Worst SLO-normalized tail latency across all servers and windows.
    pub worst_normalized_latency: f64,
    /// Fraction of in-service servers that violated their SLO in some
    /// window this step.
    pub violating_server_fraction: f64,
    /// Number of in-service servers that violated their SLO in some window
    /// this step (the absolute count behind the fraction — what an
    /// autoscaler comparison sums into violation server-steps).
    pub violating_servers: usize,
    /// Servers in service (active or draining) during the step — the
    /// time-varying fleet size an autoscaler modulates.
    pub in_service_servers: usize,
    /// Total cores in service during the step.
    pub in_service_cores: usize,
    /// In-service servers per hardware generation (older, Haswell, newer).
    pub in_service_by_generation: [usize; 3],
    /// In-service leaves per LC service, indexed by [`LcKind::index`]
    /// (websearch, ml_cluster, memkeyval).
    pub in_service_by_service: [usize; NUM_SERVICES],
    /// QPS each service's catalog offered this step, indexed by
    /// [`LcKind::index`] — the demand side of the conservation audit.
    pub offered_qps: [f64; NUM_SERVICES],
    /// QPS the traffic plane actually routed onto each service's leaves
    /// this step.  Equal to `offered_qps` (to floating-point tolerance)
    /// whenever the service has an in-service leaf: demand is conserved,
    /// it never silently evaporates with a retired server.
    pub routed_qps: [f64; NUM_SERVICES],
    /// Core-weighted mean routed load fraction per service's leaf pool.
    /// Can exceed 1.0 on a pool scale-in has shrunk below its demand.
    pub service_load: [f64; NUM_SERVICES],
    /// In-service leaves of each service that violated their SLO in some
    /// window this step — which service's latency paid for a scheduling or
    /// scale decision.
    pub violating_by_service: [usize; NUM_SERVICES],
    /// Jobs live-migrated between servers during this step's scheduling
    /// round (scale-in drains).
    pub migrations: usize,
    /// Amortized TCO of the step across in-service servers, in dollars
    /// (capex prorated per step plus energy at each server's utilization).
    pub tco_dollars: f64,
    /// Package energy the in-service fleet drew during the step, in joules
    /// of represented time (per-window watts integrated over every leaf's
    /// measurement windows, scaled by the run's time compression).  Always
    /// populated — the column is a pure function of the simulation records,
    /// so the metering knob cannot perturb it.
    pub energy_joules: f64,
    /// The step's metered energy priced through the time-of-day schedule
    /// and grossed up by PUE, in dollars.  Kept separate from
    /// [`tco_dollars`](Self::tco_dollars) (whose energy term uses the TCO
    /// model's flat annual rate) so the two accountings never double-count.
    pub energy_dollars: f64,
    /// Conservative peak fleet draw during the step, in watts: the sum over
    /// leaves of each leaf's maximum per-window package power.  An upper
    /// bound on the true instantaneous fleet draw, so a power-capped run
    /// proves budget compliance by keeping even this bound under budget.
    pub peak_power_w: f64,
    /// Jobs waiting in the queue at the end of the step.
    pub queued_jobs: usize,
    /// Jobs resident on servers at the end of the step.
    pub running_jobs: usize,
    /// Jobs completed so far (cumulative).
    pub completed_jobs: usize,
    /// BE progress served during the step, in core·seconds.
    pub be_progress_core_s: f64,
}

/// What happened to a job at a scheduling decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetEventKind {
    /// The job was placed on a server.
    Placed,
    /// The job was preempted (its server's controller kept BE disabled) and
    /// requeued.
    Preempted,
    /// The job was live-migrated onto this server (the event's `server` is
    /// the destination), keeping its remaining demand and paying the
    /// migration cost in core·seconds.
    Migrated,
    /// The job served its whole demand.
    Completed,
}

/// One entry of the scheduler's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Step index (0-based) the event happened in.
    pub step: usize,
    /// The job involved.
    pub job: JobId,
    /// The server involved.
    pub server: ServerId,
    /// What happened.
    pub kind: FleetEventKind,
}

/// The result of one fleet run under one placement policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetResult {
    /// The placement policy that produced this result.
    pub policy: String,
    /// Physical core count of each server, indexed by server id (the
    /// capacity weights behind the fleet-level EMU and TCO numbers).
    /// Includes servers purchased mid-run and servers retired before the
    /// end — ids are dense and stable for the whole run.
    pub server_cores: Vec<usize>,
    /// Hardware generation index of each server, indexed by server id (the
    /// per-server generation record autoscale traces plot against).
    pub server_generations: Vec<usize>,
    /// LC service index ([`LcKind::index`]) of each server, indexed by
    /// server id — the service axis of the (generation × service) cell the
    /// placement store tracked for each leaf.
    pub server_services: Vec<usize>,
    /// Per-step records.
    pub steps: Vec<FleetStep>,
    /// Every job the arrival stream produced (completed or not).
    pub jobs: Vec<BeJob>,
    /// The full placement/preemption/completion log, in order.
    pub events: Vec<FleetEvent>,
}

/// Queueing-delay accounting that does not hide jobs still queued at the
/// end of the run.
///
/// Averaging only jobs that started is survivorship bias: an overloaded
/// configuration strands its worst-waiting jobs in the queue and then
/// reports a *flattering* mean.  The censored count and accrued wait make
/// the stranded tail visible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingDelaySummary {
    /// Jobs that started before the run ended.
    pub started: usize,
    /// Mean queueing delay of the started jobs, in seconds.
    pub mean_started_s: f64,
    /// Median queueing delay of the started jobs, in seconds (nearest
    /// rank).  A heavy-tailed wait distribution leaves the mean well above
    /// the typical job's experience; triggers tuned on the mean alone
    /// over-react to a few stragglers.
    pub p50_started_s: f64,
    /// 99th-percentile queueing delay of the started jobs, in seconds
    /// (nearest rank) — the tail an autoscaling trigger actually defends;
    /// the censoring-flattered mean hides exactly these jobs.
    pub p99_started_s: f64,
    /// Jobs still waiting (never started) when the run ended.
    pub censored: usize,
    /// Total wait the censored jobs had accrued by the end of the run, in
    /// seconds — a lower bound on their eventual delay.
    pub censored_accrued_wait_s: f64,
}

/// Nearest-rank percentile of an unsorted sample (0.0 for empty input).
fn nearest_rank(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

impl FleetResult {
    /// Mean fleet EMU over the run (0.0 for an empty run).
    pub fn mean_fleet_emu(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.fleet_emu).sum::<f64>() / self.steps.len() as f64
    }

    /// Minimum fleet EMU over the run (0.0 for an empty run).
    pub fn min_fleet_emu(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.fleet_emu).fold(f64::INFINITY, f64::min)
    }

    /// Mean LC load over the run — the utilization the fleet would have had
    /// with no colocation at all (0.0 for an empty run).
    pub fn mean_lc_load(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.mean_load).sum::<f64>() / self.steps.len() as f64
    }

    /// Fraction of server-steps that violated the SLO (0.0 for an empty run).
    pub fn slo_violation_fraction(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.violating_server_fraction).sum::<f64>()
            / self.steps.len() as f64
    }

    /// Number of jobs that ran to completion.
    pub fn jobs_completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.completion.is_some()).count()
    }

    /// Total BE demand served over the run, in core·seconds (includes the
    /// partial progress of jobs still running at the end).
    pub fn be_core_s_served(&self) -> f64 {
        self.steps.iter().map(|s| s.be_progress_core_s).sum()
    }

    /// Mean queueing delay of jobs that *started*, in seconds (0.0 if none
    /// started).  This is a survivorship-biased number on overloaded
    /// configurations — jobs still queued at the end of the run are not in
    /// it; use [`queueing_delay`](Self::queueing_delay) for the full
    /// accounting including the censored tail.
    pub fn mean_queueing_delay_s(&self) -> f64 {
        self.queueing_delay().mean_started_s
    }

    /// Full queueing-delay accounting: the mean over started jobs plus the
    /// count and accrued wait of jobs still queued (censored) when the run
    /// ended.
    pub fn queueing_delay(&self) -> QueueingDelaySummary {
        let end = self.steps.last().map(|s| s.time).unwrap_or(SimTime::ZERO);
        let mut delays = Vec::new();
        let mut censored = 0usize;
        let mut censored_total = 0.0;
        for job in &self.jobs {
            match job.queueing_delay_s() {
                Some(delay) => delays.push(delay),
                None => {
                    censored += 1;
                    censored_total += end.saturating_since(job.arrival).as_secs_f64();
                }
            }
        }
        let started = delays.len();
        let mean = if started > 0 { delays.iter().sum::<f64>() / started as f64 } else { 0.0 };
        QueueingDelaySummary {
            started,
            mean_started_s: mean,
            p50_started_s: nearest_rank(&mut delays, 0.50),
            p99_started_s: nearest_rank(&mut delays, 0.99),
            censored,
            censored_accrued_wait_s: censored_total,
        }
    }

    /// Total core capacity of the fleet.
    pub fn total_cores(&self) -> usize {
        self.server_cores.iter().sum()
    }

    /// Total preemptions across all jobs.
    pub fn preemptions(&self) -> usize {
        self.jobs.iter().map(|j| j.preemptions).sum()
    }

    /// Total live migrations across all jobs (scale-in drains).
    pub fn migrations(&self) -> usize {
        self.jobs.iter().map(|j| j.migrations).sum()
    }

    /// Total migration overhead paid across all jobs, in core·seconds.
    pub fn migration_overhead_core_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.migration_overhead_core_s).sum()
    }

    /// Total amortized TCO of the run across in-service server-steps, in
    /// dollars — the cost side of the autoscaled-vs-static comparison.
    pub fn total_tco_dollars(&self) -> f64 {
        self.steps.iter().map(|s| s.tco_dollars).sum()
    }

    /// Amortized TCO per BE core·second served, in dollars (infinite if the
    /// run served no BE work at all — a fleet that costs money and does
    /// nothing has unbounded cost per unit of work, not zero).
    pub fn tco_per_be_core_s(&self) -> f64 {
        let served = self.be_core_s_served();
        if served > 0.0 {
            self.total_tco_dollars() / served
        } else {
            f64::INFINITY
        }
    }

    /// Total package energy drawn over the run, in joules of represented
    /// time — the quantity the energy plane's conservation audit compares
    /// against the meter's fleet ledger.
    pub fn total_energy_joules(&self) -> f64 {
        self.steps.iter().map(|s| s.energy_joules).sum()
    }

    /// Total energy bill over the run at the configured time-of-day
    /// schedule and PUE, in dollars.
    pub fn total_energy_dollars(&self) -> f64 {
        self.steps.iter().map(|s| s.energy_dollars).sum()
    }

    /// The worst per-step peak fleet draw over the run, in watts — what a
    /// power-capped run compares against its budget (0.0 for an empty
    /// run).
    pub fn max_peak_power_w(&self) -> f64 {
        self.steps.iter().map(|s| s.peak_power_w).fold(0.0, f64::max)
    }

    /// Joules per BE core·second served (infinite if no BE work ran) — the
    /// energy-efficiency figure the energy-aware autoscale comparison
    /// minimizes, mirroring [`tco_per_be_core_s`](Self::tco_per_be_core_s).
    pub fn joules_per_be_core_s(&self) -> f64 {
        let served = self.be_core_s_served();
        if served > 0.0 {
            self.total_energy_joules() / served
        } else {
            f64::INFINITY
        }
    }

    /// Mean number of in-service servers over the run (0.0 for an empty
    /// run) — the time-varying fleet size an autoscaler is judged on.
    pub fn mean_in_service_servers(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.in_service_servers as f64).sum::<f64>()
            / self.steps.len() as f64
    }

    /// Total SLO-violation server-steps over the run: each step contributes
    /// the number of in-service servers that violated in some window.  The
    /// absolute count (not the fraction) is what compares elastic fleets of
    /// different sizes fairly.
    pub fn violation_server_steps(&self) -> usize {
        self.steps.iter().map(|s| s.violating_servers).sum()
    }

    /// SLO violation server-steps per LC service, indexed by
    /// [`LcKind::index`] — which service's latency paid over the run.
    pub fn violation_server_steps_by_service(&self) -> [usize; NUM_SERVICES] {
        let mut totals = [0usize; NUM_SERVICES];
        for step in &self.steps {
            for (total, v) in totals.iter_mut().zip(&step.violating_by_service) {
                *total += v;
            }
        }
        totals
    }

    /// The worst routed-vs-offered imbalance (relative to the offered
    /// volume) across every service and step — the run-level conservation
    /// audit, zero up to floating point on a healthy run.
    pub fn max_routing_imbalance(&self) -> f64 {
        self.steps
            .iter()
            .flat_map(|s| {
                s.offered_qps.iter().zip(&s.routed_qps).map(|(o, r)| (o - r).abs() / (1.0 + o))
            })
            .fold(0.0, f64::max)
    }

    /// Mean routed load fraction of one service's leaf pool over the run
    /// (0.0 if the service never served).
    pub fn mean_service_load(&self, service: LcKind) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.service_load[service.index()]).sum::<f64>()
            / self.steps.len() as f64
    }

    /// Relative throughput/TCO improvement of this run over the same fleet
    /// without colocation, using the paper's TCO calculator: the no-colo
    /// fleet is utilized at the mean LC load, this run at the mean fleet
    /// EMU.
    pub fn tco_improvement(&self, tco: &TcoModel) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        tco.throughput_per_tco_improvement(self.mean_lc_load(), self.mean_fleet_emu())
    }

    /// Renders the per-step records as a CSV document for plotting.  The
    /// fleet-size and per-generation columns make autoscale traces (how
    /// many servers of which generation were in service when) plottable
    /// without post-processing, the TCO column is the amortized cost
    /// series the autoscaled-vs-static comparison integrates, and the
    /// per-service offered/routed/load/violation columns make LC capacity
    /// conservation auditable from the export alone.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "time_s,mean_load,fleet_emu,worst_normalized_latency,violating_server_fraction,\
             violating_servers,in_service_servers,in_service_cores,servers_sandy_bridge,\
             servers_haswell,servers_skylake,migrations,tco_dollars,\
             energy_joules,energy_dollars,peak_power_w,\
             queued_jobs,running_jobs,completed_jobs,be_progress_core_s",
        );
        for kind in LcKind::all() {
            let name = kind.name();
            out.push_str(&format!(
                ",leaves_{name},offered_qps_{name},routed_qps_{name},load_{name},\
                 violating_{name}"
            ));
        }
        out.push('\n');
        for s in &self.steps {
            CsvRow::new(&mut out)
                .f64(s.time.as_secs_f64(), 6)
                .f64(s.mean_load, 4)
                .f64(s.fleet_emu, 4)
                .f64(s.worst_normalized_latency, 4)
                .f64(s.violating_server_fraction, 4)
                .int(s.violating_servers as u64)
                .int(s.in_service_servers as u64)
                .int(s.in_service_cores as u64)
                .int(s.in_service_by_generation[0] as u64)
                .int(s.in_service_by_generation[1] as u64)
                .int(s.in_service_by_generation[2] as u64)
                .int(s.migrations as u64)
                .f64(s.tco_dollars, 6)
                .f64(s.energy_joules, 3)
                .f64(s.energy_dollars, 8)
                .f64(s.peak_power_w, 3)
                .int(s.queued_jobs as u64)
                .int(s.running_jobs as u64)
                .int(s.completed_jobs as u64)
                .f64(s.be_progress_core_s, 3);
            for kind in LcKind::all() {
                let i = kind.index();
                CsvRow::resume(&mut out)
                    .int(s.in_service_by_service[i] as u64)
                    .f64(s.offered_qps[i], 1)
                    .f64(s.routed_qps[i], 1)
                    .f64(s.service_load[i], 4)
                    .int(s.violating_by_service[i] as u64);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the job ledger as a CSV document, one row per job the stream
    /// produced — *including* jobs still queued when the run ended
    /// (`censored = 1`, empty start/completion columns, and their accrued
    /// wait in `queue_wait_s`), so the export carries the same censored-tail
    /// information as [`queueing_delay`](Self::queueing_delay).
    pub fn jobs_to_csv(&self) -> String {
        let end = self.steps.last().map(|s| s.time).unwrap_or(SimTime::ZERO);
        let mut out = String::from(
            "job,kind,demand_core_s,arrival_s,first_start_s,completion_s,queue_wait_s,\
             preemptions,migrations,migration_overhead_core_s,censored\n",
        );
        for job in &self.jobs {
            let censored = job.first_start.is_none();
            let wait = job
                .queueing_delay_s()
                .unwrap_or_else(|| end.saturating_since(job.arrival).as_secs_f64());
            CsvRow::new(&mut out)
                .int(job.id as u64)
                .str(job.workload.name())
                .f64(job.demand_core_s, 3)
                .f64(job.arrival.as_secs_f64(), 3)
                .opt_f64(job.first_start.map(|t| t.as_secs_f64()), 3)
                .opt_f64(job.completion.map(|t| t.as_secs_f64()), 3)
                .f64(wait, 3)
                .int(job.preemptions as u64)
                .int(job.migrations as u64)
                .f64(job.migration_overhead_core_s, 3)
                .bool01(censored)
                .end();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heracles_workloads::BeWorkload;

    fn step(emu: f64, load: f64, violating: f64, progress: f64) -> FleetStep {
        FleetStep {
            time: SimTime::from_secs(1),
            mean_load: load,
            fleet_emu: emu,
            worst_normalized_latency: 0.8,
            violating_server_fraction: violating,
            violating_servers: (violating * 4.0).round() as usize,
            in_service_servers: 4,
            in_service_cores: 144,
            in_service_by_generation: [0, 4, 0],
            in_service_by_service: [4, 0, 0],
            offered_qps: [load * 4.0 * 2_900.0, 0.0, 0.0],
            routed_qps: [load * 4.0 * 2_900.0, 0.0, 0.0],
            service_load: [load, 0.0, 0.0],
            violating_by_service: [(violating * 4.0).round() as usize, 0, 0],
            migrations: 0,
            tco_dollars: 0.5,
            energy_joules: 1000.0,
            energy_dollars: 0.001,
            peak_power_w: 500.0,
            queued_jobs: 0,
            running_jobs: 1,
            completed_jobs: 0,
            be_progress_core_s: progress,
        }
    }

    fn job(id: JobId) -> BeJob {
        BeJob {
            id,
            workload: BeWorkload::brain(),
            demand_core_s: 100.0,
            remaining_core_s: 100.0,
            arrival: SimTime::ZERO,
            first_start: None,
            completion: None,
            preemptions: 0,
            migrations: 0,
            migration_overhead_core_s: 0.0,
        }
    }

    fn empty() -> FleetResult {
        FleetResult {
            policy: "test".into(),
            server_cores: Vec::new(),
            server_generations: Vec::new(),
            server_services: Vec::new(),
            steps: Vec::new(),
            jobs: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn empty_result_aggregates_are_zero_not_nan() {
        let r = empty();
        assert_eq!(r.mean_fleet_emu(), 0.0);
        assert_eq!(r.min_fleet_emu(), 0.0);
        assert_eq!(r.mean_lc_load(), 0.0);
        assert_eq!(r.slo_violation_fraction(), 0.0);
        assert_eq!(r.mean_queueing_delay_s(), 0.0);
        assert_eq!(r.tco_improvement(&TcoModel::paper_case_study()), 0.0);
        assert!(r.mean_fleet_emu().is_finite() && r.min_fleet_emu().is_finite());
        assert_eq!(r.total_tco_dollars(), 0.0);
        assert_eq!(r.mean_in_service_servers(), 0.0);
        assert_eq!(r.violation_server_steps(), 0);
        // A fleet that served nothing has unbounded cost per unit of work.
        assert!(r.tco_per_be_core_s().is_infinite());
        assert_eq!(r.total_energy_joules(), 0.0);
        assert_eq!(r.total_energy_dollars(), 0.0);
        assert_eq!(r.max_peak_power_w(), 0.0);
        assert!(r.joules_per_be_core_s().is_infinite());
    }

    #[test]
    fn aggregates_combine_steps_and_jobs() {
        let mut r = empty();
        r.steps = vec![step(0.8, 0.5, 0.0, 30.0), step(0.6, 0.4, 0.5, 10.0)];
        let mut started = job(0);
        started.first_start = Some(SimTime::from_secs(3));
        started.completion = Some(SimTime::from_secs(9));
        started.preemptions = 2;
        r.jobs = vec![started, job(1)];

        assert!((r.mean_fleet_emu() - 0.7).abs() < 1e-12);
        assert!((r.min_fleet_emu() - 0.6).abs() < 1e-12);
        assert!((r.mean_lc_load() - 0.45).abs() < 1e-12);
        assert!((r.slo_violation_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(r.jobs_completed(), 1);
        assert!((r.be_core_s_served() - 40.0).abs() < 1e-12);
        assert_eq!(r.mean_queueing_delay_s(), 3.0);
        assert_eq!(r.preemptions(), 2);
        // Raising utilization 0.45 → 0.7 must improve throughput/TCO.
        assert!(r.tco_improvement(&TcoModel::paper_case_study()) > 0.0);
        // The TCO series sums per step; per-core·s divides by served work.
        assert!((r.total_tco_dollars() - 1.0).abs() < 1e-12);
        assert!((r.tco_per_be_core_s() - 1.0 / 40.0).abs() < 1e-12);
        assert_eq!(r.mean_in_service_servers(), 4.0);
        assert_eq!(r.violation_server_steps(), 2);
        // The energy series sums like the TCO series; efficiency divides
        // by the same served work.
        assert!((r.total_energy_joules() - 2000.0).abs() < 1e-9);
        assert!((r.total_energy_dollars() - 0.002).abs() < 1e-12);
        assert!((r.max_peak_power_w() - 500.0).abs() < 1e-12);
        assert!((r.joules_per_be_core_s() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn step_tco_scales_with_cores_utilization_and_time() {
        let tco = TcoModel::paper_case_study();
        let reference = server_step_tco_dollars(&tco, 36, 0.5, 3600.0);
        assert!(reference > 0.0);
        // One reference server for one hour at 50% utilization: the annual
        // bill prorated to an hour.
        let annual = tco.annual_capex_per_server() + tco.annual_energy_per_server(0.5);
        assert!((reference - annual * 3600.0 / SECONDS_PER_YEAR).abs() < 1e-9);
        // Double the time, double the cost.
        let two_hours = server_step_tco_dollars(&tco, 36, 0.5, 7200.0);
        assert!((two_hours - 2.0 * reference).abs() < 1e-9);
        // A 48-core box costs more than the reference, a 16-core one less —
        // but sublinearly in cores, thanks to the platform floor.
        let big = server_step_tco_dollars(&tco, 48, 0.5, 3600.0);
        let small = server_step_tco_dollars(&tco, 16, 0.5, 3600.0);
        assert!(big > reference && reference > small);
        assert!(big / small < 48.0 / 16.0, "cost scaled superlinearly");
        // Higher utilization costs energy, not capex.
        assert!(server_step_tco_dollars(&tco, 36, 0.9, 3600.0) > reference);
    }

    #[test]
    fn wait_percentiles_expose_the_tail_the_mean_flattens() {
        let mut r = empty();
        r.steps = vec![FleetStep { time: SimTime::from_secs(500), ..step(0.8, 0.5, 0.0, 0.0) }];
        // 49 jobs wait 1 s, one straggler waits 101 s: the mean (3 s) says
        // little; p50 pins the typical wait and p99 the straggler.
        r.jobs = (0..50)
            .map(|id| {
                let mut j = job(id);
                j.arrival = SimTime::from_secs(10);
                j.first_start = Some(SimTime::from_secs(if id == 49 { 111 } else { 11 }));
                j
            })
            .collect();
        let summary = r.queueing_delay();
        assert_eq!(summary.started, 50);
        assert!((summary.mean_started_s - 3.0).abs() < 1e-12);
        assert!((summary.p50_started_s - 1.0).abs() < 1e-12);
        assert!((summary.p99_started_s - 101.0).abs() < 1e-12);
    }

    #[test]
    fn migration_totals_come_from_the_job_ledger() {
        let mut r = empty();
        let mut moved = job(0);
        moved.migrations = 2;
        moved.migration_overhead_core_s = 30.0;
        r.jobs = vec![moved, job(1)];
        assert_eq!(r.migrations(), 2);
        assert!((r.migration_overhead_core_s() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_step() {
        let mut r = empty();
        r.steps = vec![step(0.8, 0.5, 0.0, 30.0)];
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        let columns = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), columns);
    }

    #[test]
    fn core_weighted_mean_weights_by_capacity() {
        // A 48-core box at 0.9 and a 16-core box at 0.3:
        // (48*0.9 + 16*0.3) / 64 = 0.75, not the plain mean 0.6.
        let weighted = core_weighted_mean(&[0.9, 0.3], &[48, 16]);
        assert!((weighted - 0.75).abs() < 1e-12);
        // Uniform fleets reduce to the plain mean.
        let plain = core_weighted_mean(&[0.9, 0.3], &[36, 36]);
        assert!((plain - 0.6).abs() < 1e-12);
        // Empty input is 0, not NaN.
        assert_eq!(core_weighted_mean(&[], &[]), 0.0);
    }

    #[test]
    fn queueing_delay_reports_the_censored_tail() {
        let mut r = empty();
        r.steps = vec![FleetStep { time: SimTime::from_secs(100), ..step(0.8, 0.5, 0.0, 0.0) }];
        let mut started = job(0);
        started.arrival = SimTime::from_secs(10);
        started.first_start = Some(SimTime::from_secs(16));
        // Job 1 arrived at t=40 and never started: 60 s of accrued wait the
        // old mean silently dropped.
        let mut stranded = job(1);
        stranded.arrival = SimTime::from_secs(40);
        r.jobs = vec![started, stranded];

        let summary = r.queueing_delay();
        assert_eq!(summary.started, 1);
        assert!((summary.mean_started_s - 6.0).abs() < 1e-12);
        // With one started job, every percentile is that job's wait.
        assert!((summary.p50_started_s - 6.0).abs() < 1e-12);
        assert!((summary.p99_started_s - 6.0).abs() < 1e-12);
        assert_eq!(summary.censored, 1);
        assert!((summary.censored_accrued_wait_s - 60.0).abs() < 1e-12);
        // The convenience mean still reports only started jobs.
        assert!((r.mean_queueing_delay_s() - 6.0).abs() < 1e-12);

        // The jobs CSV carries the censored job with its accrued wait.
        let csv = r.jobs_to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let header_cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), header_cols, "{line}");
        }
        assert!(lines[1].ends_with(",0"), "started job marked censored: {}", lines[1]);
        assert!(lines[2].ends_with(",1"), "stranded job not marked censored: {}", lines[2]);
        assert!(lines[2].contains("60.000"), "accrued wait missing: {}", lines[2]);
    }

    /// The charge methods are the only write path that keeps the recorded
    /// total in sync with the per-part fields: each second of control-plane
    /// work must land in exactly one part, exactly once.
    #[test]
    fn control_plane_profile_parts_sum_to_the_recorded_total() {
        let mut profile = ControlPlaneProfile::default();
        assert_eq!(profile.recorded_total_s(), 0.0);
        assert_eq!(profile.control_plane_s(), 0.0);

        profile.charge_routing(0.25);
        profile.charge_dispatch(1.5);
        profile.charge_signals(0.125);
        profile.charge_routing(0.75);
        profile.steps += 2;

        assert_eq!(profile.routing_s, 1.0);
        assert_eq!(profile.dispatch_s, 1.5);
        assert_eq!(profile.signals_s, 0.125);
        let total = profile.control_plane_s();
        let recorded = profile.recorded_total_s();
        assert!(
            (total - recorded).abs() <= 1e-9 * total.max(1.0),
            "parts ({total}) drifted from the recorded total ({recorded}): \
             some control-plane time was double-charged or dropped"
        );
        assert!((profile.per_step_ms() - total * 1e3 / 2.0).abs() < 1e-9);
    }
}
