//! Fleet scheduler: cluster-wide BE job placement over per-server Heracles
//! controllers.
//!
//! The paper's cluster experiment (§5.3) hard-wires one BE task per leaf;
//! this crate asks the fleet-level question Heracles enables: given a stream
//! of best-effort jobs and a diurnally loaded LC fleet, where should the
//! work go, and how much machine utilization does the fleet recover?
//!
//! The subsystem follows the placement-store-plus-scheduler shape of cluster
//! managers:
//!
//! * [`job`] — the BE job model and the seeded arrival [`JobQueue`]: Poisson
//!   arrivals, bounded-Pareto core·second demands, workloads drawn from the
//!   paper's production or evaluation set,
//! * [`generation`] — hardware [`Generation`]s and the fleet's
//!   [`GenerationMix`]: real datacenters mix server generations, so
//!   placement has to reason about per-server capacity,
//! * [`traffic`] — the [`TrafficPlane`]: each LC service's aggregate
//!   diurnal demand (from a `ServiceCatalog`) is routed onto the
//!   in-service leaves every step by a pluggable [`LoadBalancer`]
//!   (capacity-weighted or slack-aware), conserving demand exactly — a
//!   retired leaf's share lands on the survivors as added load instead of
//!   silently evaporating,
//! * [`store`] — the [`PlacementStore`]: per-server capacity (cores, DRAM
//!   bandwidth, BE slots derived from core count, the (generation ×
//!   service) cell and its peak QPS) and BE slot occupancy plus the live
//!   signals the per-server Heracles controllers expose (LC load, latency
//!   slack, admission verdict, recent EMU),
//! * [`policy`] — pluggable [`PlacementPolicy`] implementations: Random,
//!   FirstFit, LeastLoaded and InterferenceAware (which consults the §3.2
//!   interference characterization, measured per (hardware generation, LC
//!   service) cell, to keep hostile antagonists away from near-knee LC
//!   services — iperf-like jobs off memkeyval leaves — and DRAM-hungry
//!   jobs on high-bandwidth boxes),
//! * [`fleet`] — the [`FleetSim`] discrete-time simulator: dispatch,
//!   parallel per-server stepping, job completion and preemption/requeue
//!   when a leaf's controller disables BE,
//! * [`metrics`] — [`FleetResult`]: BE throughput, queueing delay (with
//!   censored-job accounting), core-weighted fleet EMU, SLO violation rate
//!   and throughput/TCO via the paper's TCO model.
//!
//! # Example
//!
//! ```
//! use heracles_fleet::{FleetConfig, FleetSim, PolicyKind};
//! use heracles_hw::ServerConfig;
//!
//! let config = FleetConfig {
//!     servers: 4,
//!     steps: 6,
//!     ..FleetConfig::fast_test()
//! };
//! let result = FleetSim::new(config, ServerConfig::default_haswell(), PolicyKind::FirstFit).run();
//! assert_eq!(result.steps.len(), 6);
//! assert!(result.mean_fleet_emu() >= result.mean_lc_load());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fleet;
pub mod generation;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod store;
pub mod traffic;

pub use fleet::{single_server_baseline_violations, FleetConfig, FleetSim, SimCore};
pub use generation::{Generation, GenerationMix};
pub use heracles_energy::{
    hour_of_day, joules_to_dollars, CapPlan, EnergyConfig, EnergyLedger, EnergyMeter,
    EnergyPriceSchedule, PowerCapCoordinator,
};
pub use heracles_telemetry::{Telemetry, TelemetryConfig};
pub use job::{BeJob, JobId, JobMix, JobQueue, JobStreamConfig};
pub use metrics::{
    core_weighted_mean, server_step_tco_dollars, ControlPlaneProfile, FleetEvent, FleetEventKind,
    FleetResult, FleetStep, QueueingDelaySummary, ServerPlaneProfile, PLATFORM_COST_FLOOR,
    SECONDS_PER_YEAR,
};
pub use policy::{
    marginal_headroom_cores, FirstFit, InterferenceAware, InterferenceModel, LeastLoaded,
    PlacementPolicy, PolicyKind, RandomPlacement,
};
pub use store::{
    PlacementStore, PoolShard, ServerCapacity, ServerEntry, ServerId, ServerState, ShardingMode,
};
pub use traffic::{
    BalancerKind, CapacityWeighted, LeafView, LoadBalancer, RoutingStep, SlackAware, TrafficPlane,
};
