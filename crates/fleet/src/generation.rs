//! Server generations and the fleet's generation mix.
//!
//! The paper's TCO argument is about datacenters as they exist: servers are
//! amortized over years, so at any moment the fleet mixes an older
//! generation being phased out, the current mainstream parts and a newer
//! generation being phased in.  A [`GenerationMix`] describes that blend as
//! two fractions (older / newer, the rest running the baseline Haswell), and
//! deterministically assigns a [`Generation`] to every server id so that the
//! generations interleave evenly across the fleet's diurnal phase offsets —
//! identical seeds and mixes always produce the identical fleet.

use heracles_hw::ServerConfig;
use serde::{Deserialize, Serialize};

/// A hardware generation a fleet server can belong to.
///
/// The discriminant doubles as the generation index used by the placement
/// store and the per-generation interference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// Sandy-Bridge-class: fewer cores, lower DRAM bandwidth.
    Older = 0,
    /// The paper's Haswell baseline.
    Haswell = 1,
    /// Skylake-class: more cores, more DRAM bandwidth.
    Newer = 2,
}

impl Generation {
    /// All generations, in generation-index order.
    pub fn all() -> [Generation; 3] {
        [Generation::Older, Generation::Haswell, Generation::Newer]
    }

    /// The generation's index into per-generation tables (0 = older,
    /// 1 = Haswell, 2 = newer).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The generation's display name.
    pub fn name(self) -> &'static str {
        match self {
            Generation::Older => "sandy-bridge",
            Generation::Haswell => "haswell",
            Generation::Newer => "skylake",
        }
    }

    /// The generation's hardware configuration.  The Haswell slot returns
    /// the caller-supplied baseline (which is how tests run a whole fleet on
    /// `small_test` boxes); the other generations use the built-in presets.
    pub fn server_config(self, baseline: &ServerConfig) -> ServerConfig {
        match self {
            Generation::Older => ServerConfig::older_sandy_bridge(),
            Generation::Haswell => baseline.clone(),
            Generation::Newer => ServerConfig::newer_skylake(),
        }
    }
}

/// The fleet's blend of server generations.
///
/// # Example
///
/// ```
/// use heracles_fleet::GenerationMix;
/// let mix = GenerationMix::mixed_datacenter();
/// let gens = mix.assignments(8);
/// assert_eq!(gens.len(), 8);
/// // A quarter older, a quarter newer, the rest Haswell.
/// assert_eq!("0.25:0.25".parse::<GenerationMix>().unwrap(), mix);
/// assert_eq!("homogeneous".parse::<GenerationMix>().unwrap(), GenerationMix::homogeneous());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationMix {
    /// Fraction of the fleet on the older generation.
    pub older: f64,
    /// Fraction of the fleet on the newer generation.  The remainder runs
    /// the baseline Haswell configuration.
    pub newer: f64,
}

impl GenerationMix {
    /// Every server runs the baseline generation (the pre-heterogeneity
    /// fleet).
    pub fn homogeneous() -> Self {
        GenerationMix { older: 0.0, newer: 0.0 }
    }

    /// A typical mid-refresh datacenter: a quarter of the fleet is the older
    /// generation being phased out, a quarter the newer one being phased in.
    pub fn mixed_datacenter() -> Self {
        GenerationMix { older: 0.25, newer: 0.25 }
    }

    /// True if the mix contains only the baseline generation.
    pub fn is_homogeneous(&self) -> bool {
        self.older <= 0.0 && self.newer <= 0.0
    }

    /// Validates that both fractions are finite, non-negative and sum to at
    /// most 1.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        if !self.older.is_finite() || !self.newer.is_finite() {
            return Err("generation fractions must be finite".into());
        }
        if self.older < 0.0 || self.newer < 0.0 {
            return Err(format!(
                "generation fractions must be non-negative (got {}:{})",
                self.older, self.newer
            ));
        }
        if self.older + self.newer > 1.0 + 1e-9 {
            return Err(format!(
                "generation fractions must sum to at most 1 (got {}:{})",
                self.older, self.newer
            ));
        }
        Ok(())
    }

    /// Assigns a generation to each of `fleet` server ids.
    ///
    /// Uses proportional error diffusion: at every id the generation whose
    /// running count lags its target fraction the most is picked, so each
    /// generation's servers spread evenly across the id range — and, because
    /// the fleet's diurnal phase offsets are a function of the id, across
    /// the whole load cycle.  The assignment is a pure function of the mix
    /// and the fleet size.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not [`validate`](Self::validate).
    pub fn assignments(&self, fleet: usize) -> Vec<Generation> {
        self.validate().unwrap_or_else(|e| panic!("invalid generation mix: {e}"));
        let haswell = (1.0 - self.older - self.newer).max(0.0);
        let targets = [self.older, haswell, self.newer];
        let mut credit = [0.0f64; 3];
        let mut gens = Vec::with_capacity(fleet);
        for _ in 0..fleet {
            let mut pick = 0;
            for (g, target) in targets.iter().enumerate() {
                credit[g] += target;
                if credit[g] > credit[pick] + 1e-12 {
                    pick = g;
                }
            }
            credit[pick] -= 1.0;
            gens.push(Generation::all()[pick]);
        }
        gens
    }

    /// How many servers of a `fleet` run each generation, in generation-index
    /// order (older, Haswell, newer).
    pub fn counts(&self, fleet: usize) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for g in self.assignments(fleet) {
            counts[g.index()] += 1;
        }
        counts
    }
}

impl Default for GenerationMix {
    fn default() -> Self {
        Self::homogeneous()
    }
}

impl std::str::FromStr for GenerationMix {
    type Err = String;

    /// Parses `"homogeneous"`, `"mixed"`, or explicit `"OLDER:NEWER"`
    /// fractions (e.g. `"0.4:0.3"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "homogeneous" => return Ok(Self::homogeneous()),
            "mixed" => return Ok(Self::mixed_datacenter()),
            _ => {}
        }
        let (older, newer) = s
            .split_once(':')
            .ok_or_else(|| format!("unknown mix {s:?} (expected homogeneous, mixed or O:N)"))?;
        let parse = |frac: &str| {
            frac.parse::<f64>().map_err(|e| format!("invalid generation fraction {frac:?}: {e}"))
        };
        let mix = GenerationMix { older: parse(older)?, newer: parse(newer)? };
        mix.validate()?;
        Ok(mix)
    }
}

impl std::fmt::Display for GenerationMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_homogeneous() {
            write!(f, "homogeneous")
        } else {
            write!(f, "{:.2}:{:.2}", self.older, self.newer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_mix_is_all_haswell() {
        let gens = GenerationMix::homogeneous().assignments(10);
        assert!(gens.iter().all(|&g| g == Generation::Haswell));
        assert_eq!(GenerationMix::homogeneous().counts(10), [0, 10, 0]);
    }

    #[test]
    fn mixed_counts_track_fractions_and_interleave() {
        let mix = GenerationMix::mixed_datacenter();
        let [older, haswell, newer] = mix.counts(8);
        assert_eq!(older, 2);
        assert_eq!(haswell, 4);
        assert_eq!(newer, 2);
        // The non-baseline generations do not cluster at one end of the id
        // range (which would pin them to one diurnal phase).
        let gens = mix.assignments(8);
        let first_half_older = gens[..4].iter().filter(|&&g| g == Generation::Older).count();
        assert_eq!(first_half_older, 1, "{gens:?}");
    }

    #[test]
    fn assignments_are_deterministic_and_proportional() {
        let mix = GenerationMix { older: 0.4, newer: 0.3 };
        assert_eq!(mix.assignments(50), mix.assignments(50));
        let [older, haswell, newer] = mix.counts(50);
        assert_eq!(older + haswell + newer, 50);
        assert!((older as i64 - 20).abs() <= 1, "older {older}");
        assert!((newer as i64 - 15).abs() <= 1, "newer {newer}");
    }

    #[test]
    fn parsing_round_trips() {
        assert_eq!("homogeneous".parse::<GenerationMix>().unwrap(), GenerationMix::homogeneous());
        assert_eq!("mixed".parse::<GenerationMix>().unwrap(), GenerationMix::mixed_datacenter());
        let explicit: GenerationMix = "0.4:0.3".parse().unwrap();
        assert_eq!(explicit, GenerationMix { older: 0.4, newer: 0.3 });
        assert!("0.9:0.9".parse::<GenerationMix>().is_err());
        assert!("-0.1:0.1".parse::<GenerationMix>().is_err());
        assert!("nonsense".parse::<GenerationMix>().is_err());
        assert_eq!(GenerationMix::homogeneous().to_string(), "homogeneous");
        assert_eq!(GenerationMix::mixed_datacenter().to_string(), "0.25:0.25");
    }

    #[test]
    fn generation_configs_come_from_the_presets() {
        let base = ServerConfig::small_test();
        assert_eq!(Generation::Haswell.server_config(&base), base);
        assert_eq!(Generation::Older.server_config(&base), ServerConfig::older_sandy_bridge());
        assert_eq!(Generation::Newer.server_config(&base), ServerConfig::newer_skylake());
        for (i, g) in Generation::all().into_iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }
}
